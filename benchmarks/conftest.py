"""Shared configuration for the benchmark harness.

Every bench regenerates one table or figure of the paper.  Network sizes are
kept moderate by default so the whole harness completes in minutes; set
``REPRO_BENCH_FULL=1`` to sweep the paper's full ranges (16–5000 peers), which
takes substantially longer.
"""

from __future__ import annotations

import os

import pytest


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture(scope="session")
def domain_sizes():
    """Domain sizes swept by the Figure 4–6 benches."""
    if full_scale():
        return [16, 100, 500, 1000, 2000, 5000]
    return [16, 100, 500]


@pytest.fixture(scope="session")
def network_sizes():
    """Network sizes swept by the Figure 7 bench."""
    if full_scale():
        return [16, 100, 500, 1000, 2000, 3500, 5000]
    return [16, 100, 500, 1000]


@pytest.fixture(scope="session")
def simulated_hours():
    return 12.0 if full_scale() else 6.0


def attach_table(benchmark, table) -> None:
    """Store the regenerated table in the benchmark report and print it."""
    benchmark.extra_info["table"] = table.to_json()
    print()
    print(table.to_text())


def mean_seconds(benchmark):
    """Mean runtime of a benchmark, or None under ``--benchmark-disable``."""
    stats = getattr(benchmark, "stats", None)
    if not stats:
        return None
    return stats.stats.mean
