"""Table 3 — simulation parameters and scenario construction.

Regenerates the parameter table and benchmarks how long it takes to stand up a
complete planned-content simulation scenario (overlay generation + domain
construction) at the default size.
"""

import pytest

from benchmarks.conftest import attach_table
from repro.experiments.tables import run_table3
from repro.workloads.scenarios import SimulationScenario


@pytest.mark.benchmark(group="tables")
def test_table3_parameters(benchmark):
    table = benchmark(run_table3)
    attach_table(benchmark, table)
    assert {"number_of_peers", "freshness_threshold_alpha"} <= set(
        table.column("parameter")
    )


@pytest.mark.benchmark(group="tables")
def test_scenario_construction(benchmark):
    def build():
        scenario = SimulationScenario(peer_count=500, alpha=0.3, seed=0)
        system = scenario.build_system()
        return system

    system = benchmark.pedantic(build, iterations=1, rounds=3)
    assert len(system.domains) >= 1
    assert system.overlay.size == 500
