"""Ablation benches for the design choices called out in DESIGN.md.

Each bench contrasts two variants of a protocol design decision over the same
simulated workload:

* routing set: precision-first (``P_Q ∩ P_fresh``) vs. recall-first
  (``P_Q ∪ P_old``) vs. plain ``P_Q`` (Section 6.1.2's trade-off),
* reconciliation accounting: counting every ring hop vs. counting the
  circulating message once,
* reconciliation threshold α: staleness/cost trade-off,
* partner discovery: selective (highest-degree) walk vs. blind random walk.
"""

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.core.domain import Domain
from repro.core.content import PlannedContentModel
from repro.core.maintenance import MaintenanceEngine
from repro.core.routing import QueryRouter, RoutingPolicy
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.workloads.scenarios import SimulationScenario
from repro.experiments.runner import run_maintenance_simulation


def _domain_with_staleness(partner_count=200, stale_fraction=0.2, seed=3):
    domain = Domain.create("sp")
    peer_ids = [f"p{i}" for i in range(partner_count)]
    rng = random.Random(seed)
    for index, peer_id in enumerate(peer_ids):
        domain.add_partner(peer_id, distance=float(index))
    for peer_id in rng.sample(peer_ids, int(stale_fraction * partner_count)):
        domain.cooperation.mark_stale(peer_id)
    content = PlannedContentModel(peer_ids, matching_fraction=0.1, seed=seed)
    return domain, content


@pytest.mark.benchmark(group="ablation-routing")
@pytest.mark.parametrize("policy", list(RoutingPolicy), ids=lambda p: p.value)
def test_ablation_routing_policy(benchmark, policy):
    """Precision/recall trade-off of the three routing sets (Section 6.1.2)."""
    domain, content = _domain_with_staleness()

    def run():
        router = QueryRouter()
        outcomes = [
            router.route_in_domain(query_id, domain, content, policy=policy)
            for query_id in range(50)
        ]
        return outcomes

    outcomes = benchmark.pedantic(run, iterations=1, rounds=1)
    false_positive = sum(len(o.false_positives) for o in outcomes)
    false_negative = sum(len(o.false_negatives) for o in outcomes)
    messages = sum(o.messages for o in outcomes)
    benchmark.extra_info.update(
        {
            "false_positives": false_positive,
            "false_negatives": false_negative,
            "messages": messages,
        }
    )
    if policy is RoutingPolicy.PRECISION:
        assert false_positive == 0
    if policy is RoutingPolicy.RECALL:
        assert false_negative == 0


@pytest.mark.benchmark(group="ablation-reconciliation")
@pytest.mark.parametrize("count_ring_hops", [True, False], ids=["ring-hops", "single-message"])
def test_ablation_reconciliation_accounting(benchmark, count_ring_hops):
    """Update traffic under the two reconciliation-message accountings."""
    scenario = SimulationScenario(
        peer_count=200,
        alpha=0.3,
        duration_seconds=6 * 3600.0,
        seed=1,
        extra_config={"count_reconciliation_ring_hops": count_ring_hops},
    )

    run = benchmark.pedantic(
        lambda: run_maintenance_simulation(scenario), iterations=1, rounds=1
    )
    benchmark.extra_info.update(
        {
            "update_messages": run.update_messages,
            "reconciliations": run.reconciliations,
            "messages_per_node": run.messages_per_node,
        }
    )
    assert run.reconciliations >= 1
    if not count_ring_hops:
        # One message per round: reconciliation traffic equals the round count.
        assert run.reconciliation_messages == run.reconciliations


@pytest.mark.benchmark(group="ablation-alpha")
@pytest.mark.parametrize("alpha", [0.1, 0.3, 0.8])
def test_ablation_threshold_alpha(benchmark, alpha):
    """The α trade-off: staleness vs. reconciliation traffic."""
    scenario = SimulationScenario(
        peer_count=200, alpha=alpha, duration_seconds=6 * 3600.0, seed=2
    )
    run = benchmark.pedantic(
        lambda: run_maintenance_simulation(scenario), iterations=1, rounds=1
    )
    benchmark.extra_info.update(
        {
            "stale_fraction": run.mean_worst_stale_fraction,
            "reconciliations": run.reconciliations,
        }
    )
    assert 0.0 <= run.mean_worst_stale_fraction <= 1.0


@pytest.mark.benchmark(group="ablation-freshness")
@pytest.mark.parametrize("mode", ["one_bit", "two_bit"])
def test_ablation_freshness_encoding(benchmark, mode):
    """1-bit vs. 2-bit freshness: how departures are recorded and reconciled.

    With the 2-bit encoding a departed partner is marked UNAVAILABLE (its
    descriptions may still serve approximate answers); with the 1-bit encoding
    it is indistinguishable from a stale partner.  Either way the entry counts
    toward the α threshold, so the reconciliation traffic is similar; the
    difference is the information available to the query processor.
    """
    from repro.core.freshness import Freshness, FreshnessMode
    from repro.core.maintenance import MaintenanceEngine

    freshness_mode = FreshnessMode(mode)
    config = ProtocolConfig(freshness_threshold=0.3, freshness_mode=freshness_mode)

    def run():
        engine = MaintenanceEngine(config)
        domain = Domain.create("sp", mode=freshness_mode)
        for index in range(200):
            domain.add_partner(f"p{index}", distance=1.0)
        departures = 0
        reconciliations = 0
        for index in range(200):
            due = engine.push_departure(domain, f"p{index}")
            departures += 1
            if due:
                engine.reconcile(domain)
                reconciliations += 1
        return domain, departures, reconciliations, engine

    domain, departures, reconciliations, engine = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    benchmark.extra_info.update(
        {"departures": departures, "reconciliations": reconciliations}
    )
    assert reconciliations >= 1
    if freshness_mode is FreshnessMode.TWO_BIT:
        # Departures that have not yet been reconciled away are visible as
        # UNAVAILABLE, not merely STALE.
        assert all(
            entry.freshness in (Freshness.FRESH, Freshness.UNAVAILABLE)
            for entry in domain.cooperation
        )
    else:
        assert not domain.cooperation.unavailable_partners()


@pytest.mark.benchmark(group="ablation-walk")
@pytest.mark.parametrize("selective", [True, False], ids=["selective", "random"])
def test_ablation_partner_discovery_walk(benchmark, selective):
    """Selective (highest-degree) walk vs. blind random walk to find a superpeer."""
    overlay = Overlay.generate(TopologyConfig(peer_count=500, seed=5))
    superpeers = set(overlay.elect_superpeers(fraction=1 / 16))
    origins = [p for p in overlay.peer_ids if p not in superpeers][:100]
    rng = random.Random(5)

    def random_walk(origin):
        current = origin
        for hop in range(1, 65):
            neighbours = overlay.neighbors(current)
            if not neighbours:
                return None, hop
            current = rng.choice(neighbours)
            if current in superpeers:
                return current, hop
        return None, 64

    def run():
        hops = []
        for origin in origins:
            if selective:
                found, walked = overlay.selective_walk(
                    origin, lambda p: p in superpeers, rng=rng
                )
            else:
                found, walked = random_walk(origin)
            if found is not None:
                hops.append(walked)
        return hops

    hops = benchmark.pedantic(run, iterations=1, rounds=1)
    assert hops, "every origin should eventually find a summary peer"
    average = sum(hops) / len(hops)
    benchmark.extra_info.update({"average_hops": average, "walks": len(hops)})
    if selective:
        # The selective walk exploits hubs: a handful of hops suffices.
        assert average <= 8.0
