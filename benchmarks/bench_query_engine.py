"""Query-engine benchmarks: repeated-query throughput and selection caching.

``test_repeated_query_throughput_speedup`` is the acceptance benchmark (and
CI guard) of the query-engine PR: at the 2000-peer Table-3 scale, a repeated
planned-query workload driven through the indexed/memoized/batched path must
run **≥ 5×** faster than the uncached reference (``query_engine_enabled =
False``: a full online-peer scan per domain per query, per-query visit-order
derivation), while producing byte-identical routing results.

``test_selection_cache_speedup`` tracks the real-content side: repeated
selections against an unchanged hierarchy through the inverted index +
selection memo vs the pure tree walk.

``test_obs_overhead_guard`` is the observability CI guard: the same batched
workload with metrics+tracing installed must stay within
``MAX_OBS_OVERHEAD`` of the uninstrumented run, and produce equal answers.
"""

import time

import pytest

from benchmarks.conftest import full_scale
from repro.core.routing import QueryRequest, RoutingPolicy
from repro.workloads.registry import default_registry

#: Network scale of the throughput guard: the paper's 2000-peer Table-3 point.
THROUGHPUT_PEERS = 5000 if full_scale() else 2000
#: Queries per measured leg; large enough that per-query costs dominate.
THROUGHPUT_QUERIES = 60


def _table3_session():
    scenario = default_registry().scenario(
        "table3-default", peer_count=THROUGHPUT_PEERS, duration_seconds=3600.0
    )
    # No churn/modification dynamics: this bench isolates the query path.
    return scenario.builder().build()


def _requests(session, count):
    originators = session.partner_ids()
    required = max(1, round(0.1 * session.overlay.size))
    return [
        QueryRequest(
            originator=originators[(7 * index) % len(originators)],
            query_id=session.next_query_id(),
            policy=RoutingPolicy.ALL,
            required_results=required,
        )
        for index in range(count)
    ]


@pytest.mark.benchmark(group="query-engine-throughput")
def test_repeated_query_throughput_speedup(benchmark):
    """CI guard: batched+indexed querying ≥5× the uncached reference."""
    session = _table3_session()
    system = session.system

    # Both legs pose the *same* query ids (the planned matches are drawn once
    # per id and cached), so their routing results must be byte-identical.
    # Draw every plan up front: neither measured leg pays the one-time RNG
    # draws, keeping the comparison steady-state vs steady-state.
    requests = _requests(session, THROUGHPUT_QUERIES)
    content = session.content
    for request in requests:
        content.matching_peers(request.query_id)

    def reference_leg():
        return [
            system.pose_query(
                request.originator,
                query_id=request.query_id,
                policy=request.policy,
                required_results=request.required_results,
            )
            for request in requests
        ]

    # Reference leg: legacy per-query derivation (full online scan per domain,
    # pure per-query visit-order computation), posed sequentially.  Best of
    # two runs, compared against the best fast round below: minima are robust
    # to scheduling hiccups on shared CI runners.
    system.query_engine_enabled = False
    reference_seconds = float("inf")
    for _run in range(2):
        t0 = time.perf_counter()
        reference_results = reference_leg()
        reference_seconds = min(reference_seconds, time.perf_counter() - t0)

    # Fast leg: the engine path, posed as one batch.
    system.query_engine_enabled = True

    def fast_leg():
        return system.pose_queries(requests)

    fast_results = benchmark.pedantic(fast_leg, rounds=3, iterations=1)
    assert fast_results == reference_results

    fast_seconds = benchmark.stats.stats.min if benchmark.stats else None
    benchmark.extra_info["peers"] = session.overlay.size
    benchmark.extra_info["queries_per_leg"] = THROUGHPUT_QUERIES
    benchmark.extra_info["reference_seconds"] = reference_seconds
    if fast_seconds:
        speedup = reference_seconds / fast_seconds
        benchmark.extra_info["fast_seconds"] = fast_seconds
        benchmark.extra_info["speedup"] = speedup
        print(
            f"\nrepeated-query workload: reference {reference_seconds:.3f}s vs "
            f"engine {fast_seconds:.3f}s — {speedup:.1f}x at "
            f"{session.overlay.size} peers ({THROUGHPUT_QUERIES} queries/leg)"
        )
        assert speedup >= 5.0, (
            f"query engine speedup {speedup:.2f}x is below the 5x bar at "
            f"{session.overlay.size} peers"
        )


#: Enabled-observability ceiling on the repeated-query workload: the
#: instrumented run may cost at most 10% over the uninstrumented one (plus
#: measurement slack absorbed by best-of-N minima on both legs).
MAX_OBS_OVERHEAD = 1.10
OVERHEAD_ROUNDS = 5


@pytest.mark.benchmark(group="query-engine-obs")
def test_obs_overhead_guard(benchmark):
    """CI guard: metrics+tracing cost ≤10% on the batched query path."""
    from repro.obs import Observability

    session = _table3_session()
    system = session.system
    requests = _requests(session, THROUGHPUT_QUERIES)
    content = session.content
    for request in requests:
        content.matching_peers(request.query_id)

    def leg():
        return system.pose_queries(requests)

    # Warm every per-query cache once so both legs measure steady state.
    plain_results = leg()

    obs = Observability.with_ring()
    session.install_observability(obs)
    instrumented_results = leg()
    session.install_observability(None)
    assert instrumented_results == plain_results, (
        "observability changed the answers"
    )
    assert obs.metrics.value("repro_queries_total") > 0, (
        "instrumented leg recorded no query metrics"
    )

    # Interleave the legs so machine drift (thermal, cache, GC pressure)
    # hits both equally; minima per leg, ratio of the minima.
    plain_seconds = instrumented_seconds = float("inf")
    for _round in range(OVERHEAD_ROUNDS):
        t0 = time.perf_counter()
        leg()
        plain_seconds = min(plain_seconds, time.perf_counter() - t0)

        session.install_observability(obs)
        try:
            t0 = time.perf_counter()
            leg()
            instrumented_seconds = min(
                instrumented_seconds, time.perf_counter() - t0
            )
        finally:
            session.install_observability(None)

    benchmark.pedantic(leg, rounds=1, iterations=1)
    overhead = instrumented_seconds / plain_seconds
    benchmark.extra_info["plain_seconds"] = plain_seconds
    benchmark.extra_info["instrumented_seconds"] = instrumented_seconds
    benchmark.extra_info["obs_overhead"] = overhead
    print(
        f"\nobs overhead: plain {plain_seconds:.4f}s vs instrumented "
        f"{instrumented_seconds:.4f}s — {overhead:.3f}x at "
        f"{session.overlay.size} peers ({THROUGHPUT_QUERIES} queries/leg)"
    )
    assert overhead <= MAX_OBS_OVERHEAD, (
        f"observability overhead {overhead:.3f}x exceeds the "
        f"{MAX_OBS_OVERHEAD}x guard"
    )


@pytest.mark.benchmark(group="query-engine-selection")
def test_selection_cache_speedup(benchmark):
    """Indexed+memoized selection vs the pure tree walk on repeated queries."""
    import random

    from repro.fuzzy.vocabularies import uniform_numeric_background_knowledge
    from repro.querying.proposition import Clause, Proposition
    from repro.querying.selection import select_summaries
    from repro.saintetiq.hierarchy import SummaryHierarchy

    labels_per_attribute = 8
    attributes = {"a": (0.0, 100.0), "b": (0.0, 100.0), "c": (0.0, 100.0)}
    background = uniform_numeric_background_knowledge(
        attributes, labels_per_attribute=labels_per_attribute
    )
    hierarchy = SummaryHierarchy(background, attributes=list(attributes))
    rng = random.Random(7)
    hierarchy.add_records(
        {name: rng.uniform(0, 100) for name in attributes}
        for _ in range(6000 if full_scale() else 2500)
    )
    labels = sorted(
        {d.label for d in hierarchy.signature() if d.attribute == "a"}
    )
    propositions = [
        Proposition(
            [
                Clause(attribute, rng.sample(labels, rng.randint(1, 4)))
                for attribute in rng.sample(sorted(attributes), rng.randint(1, 3))
            ]
        )
        for _ in range(12)
    ]
    repeats = 50

    t0 = time.perf_counter()
    for _round in range(repeats):
        for proposition in propositions:
            select_summaries(hierarchy, proposition)
    pure_seconds = time.perf_counter() - t0

    def cached_rounds():
        for _round in range(repeats):
            for proposition in propositions:
                hierarchy.select(proposition)

    benchmark.pedantic(cached_rounds, rounds=3, iterations=1)

    # Equivalence spot check on every query class.
    for proposition in propositions:
        pure = select_summaries(hierarchy, proposition)
        fast = hierarchy.select(proposition)
        assert pure.visited_nodes == fast.visited_nodes
        assert [s.node_id for s in pure.summaries] == [
            s.node_id for s in fast.summaries
        ]

    cached_seconds = benchmark.stats.stats.mean if benchmark.stats else None
    benchmark.extra_info["nodes"] = hierarchy.node_count()
    benchmark.extra_info["pure_seconds"] = pure_seconds
    if cached_seconds:
        benchmark.extra_info["selection_speedup"] = pure_seconds / cached_seconds
        print(
            f"\nselection: pure {pure_seconds:.3f}s vs cached "
            f"{cached_seconds:.4f}s — {pure_seconds / cached_seconds:.0f}x over "
            f"{hierarchy.node_count()} nodes, {len(propositions)} query classes "
            f"x {repeats} repeats"
        )
