"""Figure 4 — fraction of stale answers vs. domain size, for several α.

Paper shape: the stale-answer fraction grows with α, stays bounded (≈11 % at
α = 0.3 for a 500-peer domain) and is roughly flat in the domain size.
"""

import pytest

from benchmarks.conftest import attach_table
from repro.experiments.fig4_stale_answers import run_figure4


@pytest.mark.benchmark(group="figure4")
def test_figure4_stale_answers(benchmark, domain_sizes, simulated_hours):
    def run():
        return run_figure4(
            domain_sizes=domain_sizes,
            alphas=[0.1, 0.3, 0.8],
            duration_seconds=simulated_hours * 3600.0,
            seed=0,
        )

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    attach_table(benchmark, table)

    # Shape 1: staleness grows with alpha for every domain size.
    for size in domain_sizes:
        low = next(r for r in table.rows if r["domain_size"] == size and r["alpha"] == 0.1)
        mid = next(r for r in table.rows if r["domain_size"] == size and r["alpha"] == 0.3)
        high = next(r for r in table.rows if r["domain_size"] == size and r["alpha"] == 0.8)
        assert low["stale_fraction"] <= mid["stale_fraction"] <= high["stale_fraction"]

    # Shape 2: at alpha = 0.3 the fraction stays bounded (paper: ~11 %).
    for row in table.filter(alpha=0.3):
        assert row["stale_fraction"] <= 0.30
