"""Construction scaling: cells/second of the summarization service by grid size.

The paper's central complexity claim (Section 3.2.3) is that incorporating a
cell costs time proportional to tree depth and node arity, so construction is
linear in the number of populated grid cells.  This bench sweeps increasingly
fine background-knowledge grids, feeds a synthetic random cell stream to the
builder, and records cells/second plus structural figures in
``extra_info`` — the series the ``BENCH_*.json`` perf trajectory tracks.

``test_cached_vs_reference_speedup`` additionally pits the incremental
aggregate cache against the recompute-from-scratch reference scorer
(``SummaryBuilder(reference_scoring=True)``, the pre-cache implementation) on
the largest default grid, and ``test_shared_vs_copied_merge_speedup`` pits the
cell-aliasing structural merge against the legacy deep-copy merge
(``SummaryBuilder(copy_on_merge=True)``) on a merge-heavy binary-arity build.
"""

import json
import random
import time

import pytest

from benchmarks.conftest import full_scale, mean_seconds
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, make_cell_key
from repro.saintetiq.clustering import ClusteringParameters, SummaryBuilder

#: (attributes, labels per attribute, cells in the stream) — grid size grows
#: as ``labels ** attributes``; the stream revisits keys so same-key merging
#: is exercised as well.
DEFAULT_SWEEP = [(2, 4, 500), (3, 6, 1500), (4, 8, 3000)]
FULL_SWEEP = DEFAULT_SWEEP + [(4, 10, 8000), (5, 8, 12000)]


def _sweep():
    return FULL_SWEEP if full_scale() else DEFAULT_SWEEP


def _cell_stream(n_attrs, n_labels, n_cells, seed=0):
    rng = random.Random(seed)
    cells = []
    for _ in range(n_cells):
        key = make_cell_key(
            Descriptor(f"a{index}", f"l{rng.randrange(n_labels)}")
            for index in range(n_attrs)
        )
        cells.append(Cell(key=key, tuple_count=rng.uniform(0.05, 4.0)))
    return cells


@pytest.mark.benchmark(group="construction-scaling")
@pytest.mark.parametrize("n_attrs,n_labels,n_cells", _sweep())
def test_construction_scaling(benchmark, n_attrs, n_labels, n_cells):
    """Incorporation throughput at one grid granularity."""
    cells = _cell_stream(n_attrs, n_labels, n_cells)

    def build():
        builder = SummaryBuilder()
        builder.incorporate_all(cells)
        return builder

    builder = benchmark.pedantic(build, iterations=1, rounds=3)
    root = builder.root
    elapsed = mean_seconds(benchmark)
    benchmark.extra_info["scaling"] = json.dumps(
        {
            "grid_size": n_labels**n_attrs,
            "cells_incorporated": n_cells,
            "distinct_keys": len(root.cells),
            "cells_per_second": n_cells / elapsed if elapsed else None,
            "depth": root.depth(),
            "nodes": sum(1 for _ in root.iter_subtree()),
        }
    )


@pytest.mark.benchmark(group="construction-scaling")
def test_construction_is_near_linear(benchmark):
    """Per-cell cost must not blow up as the stream grows on one grid.

    Incorporates successive same-size chunks of one stream and compares the
    last chunk's per-cell time against the first chunk's: near-linear overall
    construction means the ratio stays bounded by a small constant (the tree
    deepens logarithmically), nowhere near the ratio a quadratic rescan
    (proportional to resident cell count) would produce.
    """
    n_attrs, n_labels, n_cells = _sweep()[-1]
    chunk = n_cells // 5
    cells = _cell_stream(n_attrs, n_labels, chunk * 5)

    def run():
        builder = SummaryBuilder()
        timings = []
        for start in range(0, len(cells), chunk):
            t0 = time.perf_counter()
            builder.incorporate_all(cells[start : start + chunk])
            timings.append(time.perf_counter() - t0)
        return timings

    timings = benchmark.pedantic(run, iterations=1, rounds=1)
    ratio = timings[-1] / timings[0]
    benchmark.extra_info["chunk_timings"] = json.dumps(
        {"chunk_cells": chunk, "timings": timings, "last_over_first": ratio}
    )
    assert ratio < 8.0, f"per-cell cost grew {ratio:.1f}x across the stream"


@pytest.mark.benchmark(group="construction-scaling")
def test_cached_vs_reference_speedup(benchmark):
    """Incremental cache vs recompute-from-scratch on the largest default grid."""
    n_attrs, n_labels, n_cells = DEFAULT_SWEEP[-1]
    cells = _cell_stream(n_attrs, n_labels, n_cells)

    def build_cached():
        builder = SummaryBuilder()
        builder.incorporate_all(cells)
        return builder

    t0 = time.perf_counter()
    reference = SummaryBuilder(reference_scoring=True)
    reference.incorporate_all(cells)
    reference_elapsed = time.perf_counter() - t0

    builder = benchmark.pedantic(build_cached, iterations=1, rounds=3)
    cached_elapsed = mean_seconds(benchmark)
    if cached_elapsed is None:  # --benchmark-disable: time one run directly
        t0 = time.perf_counter()
        builder = build_cached()
        cached_elapsed = time.perf_counter() - t0
    speedup = reference_elapsed / cached_elapsed if cached_elapsed > 0 else None
    benchmark.extra_info["speedup"] = json.dumps(
        {
            "cells": n_cells,
            "grid_size": n_labels**n_attrs,
            "reference_seconds": reference_elapsed,
            "cached_seconds": cached_elapsed,
            "speedup": speedup,
        }
    )
    # The cached and reference builders must also agree on the result.
    assert len(builder.root.cells) == len(reference.root.cells)
    assert speedup is not None and speedup >= 5.0


@pytest.mark.benchmark(group="construction-scaling")
def test_shared_vs_copied_merge_speedup(benchmark):
    """Cell-aliasing merges vs legacy deep-copy merges on a merge-heavy build.

    ``max_children=2`` makes the arity enforcement merge on essentially every
    overflow, so the cost of ``_merge_children``'s child-union pass dominates:
    the legacy path deep-copied O(covered cells) grades/statistics/peer sets
    per merge, the aliasing path inserts references and copies only on write.
    """
    n_attrs, n_labels, n_cells = DEFAULT_SWEEP[-1]
    cells = _cell_stream(n_attrs, n_labels, n_cells)
    parameters = ClusteringParameters(max_children=2)

    def build_shared():
        builder = SummaryBuilder(parameters)
        builder.incorporate_all(cells)
        return builder

    t0 = time.perf_counter()
    copying = SummaryBuilder(parameters, copy_on_merge=True)
    copying.incorporate_all(cells)
    copying_elapsed = time.perf_counter() - t0

    builder = benchmark.pedantic(build_shared, iterations=1, rounds=3)
    shared_elapsed = mean_seconds(benchmark)
    if shared_elapsed is None:  # --benchmark-disable: time one run directly
        t0 = time.perf_counter()
        builder = build_shared()
        shared_elapsed = time.perf_counter() - t0
    speedup = copying_elapsed / shared_elapsed if shared_elapsed > 0 else None
    benchmark.extra_info["merge_sharing"] = json.dumps(
        {
            "cells": n_cells,
            "grid_size": n_labels**n_attrs,
            "copying_seconds": copying_elapsed,
            "shared_seconds": shared_elapsed,
            "speedup": speedup,
        }
    )
    # Both merge strategies must build the same summary.
    assert len(builder.root.cells) == len(copying.root.cells)
    assert builder.root.tuple_count == pytest.approx(copying.root.tuple_count)
    assert speedup is not None and speedup >= 1.8