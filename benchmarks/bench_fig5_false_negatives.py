"""Figure 5 — false negatives vs. domain size under precision-first routing.

Paper shape: the false-negative fraction stays small (≈3 % below 2000 peers)
and the real staleness estimate is several times (≈4.5×) below the worst case.
"""

import pytest

from benchmarks.conftest import attach_table
from repro.experiments.fig5_false_negatives import run_figure5


@pytest.mark.benchmark(group="figure5")
def test_figure5_false_negatives(benchmark, domain_sizes, simulated_hours):
    def run():
        return run_figure5(
            domain_sizes=domain_sizes,
            alpha=0.3,
            duration_seconds=simulated_hours * 3600.0,
            seed=0,
        )

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    attach_table(benchmark, table)

    for row in table.rows:
        # Shape 1: false negatives stay small.
        assert row["false_negative_fraction"] <= 0.12
        # Shape 2: the real estimate is well below the worst-case estimate.
        assert row["false_negative_fraction"] <= row["worst_stale_fraction"]
        assert row["reduction_factor"] >= 1.5
