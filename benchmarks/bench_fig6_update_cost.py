"""Figure 6 — update messages vs. domain size for α ∈ {0.3, 0.8}.

Paper shape: total update traffic grows with the domain size while the
per-node traffic stays roughly flat; tightening α from 0.8 to 0.3 costs only a
small factor more (the paper reports ≈1.2×; the exact factor depends on how
the circulating reconciliation message is counted — see EXPERIMENTS.md).
"""

import pytest

from benchmarks.conftest import attach_table
from repro.experiments.fig6_update_cost import cost_increase_factor, run_figure6


@pytest.mark.benchmark(group="figure6")
def test_figure6_update_cost(benchmark, domain_sizes, simulated_hours):
    def run():
        return run_figure6(
            domain_sizes=domain_sizes,
            alphas=(0.3, 0.8),
            duration_seconds=simulated_hours * 3600.0,
            seed=0,
        )

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    attach_table(benchmark, table)

    # Shape 1: total messages grow with the domain size (for each alpha).
    for alpha in (0.3, 0.8):
        rows = sorted(table.filter(alpha=alpha), key=lambda r: r["domain_size"])
        totals = [row["total_messages"] for row in rows]
        assert totals == sorted(totals)

    # Shape 2: per-node traffic is roughly flat in the domain size.
    for alpha in (0.3, 0.8):
        per_node = [row["messages_per_node"] for row in table.filter(alpha=alpha)]
        assert max(per_node) <= 3.0 * max(min(per_node), 1e-9)

    # Shape 3: a tighter threshold costs more, but within an order of magnitude.
    factor = cost_increase_factor(table, 0.3, 0.8)
    print(f"\nper-node cost increase factor (alpha 0.3 vs 0.8): {factor:.2f}")
    assert 1.0 <= factor <= 10.0
