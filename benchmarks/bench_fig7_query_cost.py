"""Figure 7 — query cost vs. number of peers: SQ vs. flooding vs. central index.

Paper shape: centralized index < summary querying (SQ) < pure flooding, with
SQ cutting the message count by roughly 3.5× with respect to flooding at 2000
peers and the advantage holding (or growing) with network size.
"""

import pytest

from benchmarks.conftest import attach_table, full_scale
from repro.experiments.fig7_query_cost import run_figure7


@pytest.mark.benchmark(group="figure7")
def test_figure7_query_cost(benchmark, network_sizes):
    queries = 20 if not full_scale() else 50

    def run():
        return run_figure7(
            network_sizes=network_sizes,
            queries_per_size=queries,
            hit_rate=0.1,
            flooding_ttl=3,
            seed=0,
        )

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    attach_table(benchmark, table)

    for row in table.rows:
        # Shape 1: ordering centralized <= SQ <= flooding.  (At the very
        # smallest network size the two left-hand algorithms cost a handful of
        # messages each and can swap by a fraction of a message, so the strict
        # ordering is only asserted from 100 peers up.)
        if row["peers"] >= 100:
            assert row["centralized_messages"] <= row["sq_messages"]
        assert row["sq_messages"] <= row["flooding_messages"]

    # Shape 2: for networks of a few hundred peers and up, the flooding/SQ
    # ratio is in the ballpark the paper reports (≈3.5× at 2000 peers).
    large_rows = [row for row in table.rows if row["peers"] >= 500]
    for row in large_rows:
        assert 2.0 <= row["flooding_over_sq"] <= 8.0

    # Shape 3: SQ cost grows roughly linearly with the network size (the
    # centralized model is its lower bound).
    rows = sorted(table.rows, key=lambda r: r["peers"])
    sq = [row["sq_messages"] for row in rows]
    assert sq == sorted(sq)
