"""Serve-load benchmark: queries/sec and latency vs concurrent clients.

The acceptance bench of the serve subsystem: an in-process ``repro serve``
daemon answers ``query_batch`` requests over HTTP from 1/4/16/64 concurrent
clients against the 2000-peer Table-3 checkpoint (5000 with
``REPRO_BENCH_FULL=1``).  Reported per level: queries/sec and p50/p99 request
latency.  ``test_serve_throughput_guard`` is the CI guard: throughput at 16
concurrent clients must stay above ``MIN_GUARD_QPS``.

Answers are verified against a local ``restore_session`` of the same
checkpoint before any timing is trusted: a fast server that answers wrong is
a failure, not a result.

The latency profile also prints the daemon's session-lock wait-vs-hold
histograms (from the server's default observability): hold time is the work
per request, wait time is the queue in front of the shared session.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from benchmarks.conftest import attach_table, full_scale
from repro.experiments.reporting import ExperimentTable
from repro.serve import ServeClient, start_server
from repro.store.checkpoint import open_readonly_session, restore_session, save_session
from repro.workloads.registry import default_registry

#: Network scale: the paper's 2000-peer Table-3 point (5000 full-scale).
LOAD_PEERS = 5000 if full_scale() else 2000
#: Concurrency levels swept by the latency profile.
CLIENT_LEVELS = [1, 4, 16, 64]
#: Requests per level, split across the clients of that level.
TOTAL_REQUESTS = 64
#: Queries per request: small batches model interactive traffic.
QUERIES_PER_REQUEST = 2
#: CI guard floor for queries/sec at 16 concurrent clients.  Local runs
#: measure an order of magnitude above this; the slack absorbs shared CI
#: runners, not regressions.
MIN_GUARD_QPS = 25.0


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    scenario = default_registry().scenario(
        "table3-default", peer_count=LOAD_PEERS, duration_seconds=3600.0
    )
    session = scenario.builder().build()
    path = tmp_path_factory.mktemp("serve-bench") / "load.sqlite"
    save_session(session, str(path))

    readonly = open_readonly_session(str(path))
    server = start_server(readonly, close_session_on_stop=True)
    required = max(1, round(0.1 * readonly.overlay.size))

    # Correctness gate: the served batch must equal a local restore's batch.
    over_http = ServeClient(server.url).query_batch(
        count=QUERIES_PER_REQUEST, required_results=required
    )
    local = restore_session(str(path)).query_batch(
        count=QUERIES_PER_REQUEST, required_results=required
    )
    assert over_http == local, "served answers diverge from a local restore"

    yield server, required
    if not readonly.closed:
        server.stop()


def _run_level(url: str, clients: int, required: int) -> dict:
    """Drive one concurrency level; returns qps and latency percentiles."""
    per_client = max(1, TOTAL_REQUESTS // clients)

    def worker():
        client = ServeClient(url)
        latencies = []
        for _ in range(per_client):
            started = time.perf_counter()
            answers = client.query_batch(
                count=QUERIES_PER_REQUEST, required_results=required
            )
            latencies.append(time.perf_counter() - started)
            assert len(answers) == QUERIES_PER_REQUEST
        return latencies

    with ThreadPoolExecutor(max_workers=clients) as pool:
        wall_start = time.perf_counter()
        futures = [pool.submit(worker) for _ in range(clients)]
        latencies = [latency for future in futures for latency in future.result()]
        wall = time.perf_counter() - wall_start

    latencies.sort()
    requests = clients * per_client
    return {
        "clients": clients,
        "requests": requests,
        "qps": requests * QUERIES_PER_REQUEST / wall,
        "p50_ms": 1000 * latencies[len(latencies) // 2],
        "p99_ms": 1000 * latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))],
    }


def _print_lock_profile(server) -> None:
    """Print the session-lock wait-vs-hold histogram the daemon recorded.

    Under concurrency the spread between the two distributions *is* the
    queueing story: hold time is the work, wait time is the line in front
    of it.  The histograms come from the server's default observability.
    """
    obs = server.observability
    if obs is None:
        return
    wait = obs.metrics.histogram("repro_session_lock_wait_seconds")
    hold = obs.metrics.histogram("repro_session_lock_hold_seconds")
    if wait is None or hold is None:
        return
    print("\nsession lock wait vs hold (seconds):")
    for name, histogram in (("wait", wait), ("hold", hold)):
        mean = histogram.total_sum / histogram.total_count if histogram.total_count else 0.0
        print(
            f"  {name}: n={histogram.total_count} mean={mean * 1000:.2f}ms "
            f"sum={histogram.total_sum:.3f}s"
        )
        cumulative = histogram.cumulative()
        for bound, count in zip(histogram.buckets, cumulative):
            if count:
                share = count / histogram.total_count
                print(f"    <= {bound:g}s: {count} ({share:.0%})")
                if share >= 1.0:
                    break


@pytest.mark.benchmark(group="serve-load")
def test_serve_load_latency_profile(served, benchmark):
    """Queries/sec and p50/p99 latency at 1/4/16/64 concurrent clients."""
    server, required = served
    rows = []

    def sweep():
        rows.clear()
        for clients in CLIENT_LEVELS:
            rows.append(_run_level(server.url, clients, required))
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    _print_lock_profile(server)

    table = ExperimentTable(
        name=f"Serve load at {LOAD_PEERS} peers",
        columns=["clients", "requests", "qps", "p50_ms", "p99_ms"],
        expectation="one shared read-only session; latency grows with "
        "queueing, throughput stays flat (requests serialize on the session)",
        parameters={
            "peers": LOAD_PEERS,
            "queries_per_request": QUERIES_PER_REQUEST,
        },
    )
    for row in rows:
        table.add_row(**{k: round(v, 2) if isinstance(v, float) else v for k, v in row.items()})
    attach_table(benchmark, table)
    for row in rows:
        assert row["qps"] > 0
        assert row["p50_ms"] <= row["p99_ms"]


@pytest.mark.benchmark(group="serve-load")
def test_serve_throughput_guard(served, benchmark):
    """CI guard: ≥ ``MIN_GUARD_QPS`` queries/sec at 16 concurrent clients."""
    server, required = served
    result = benchmark.pedantic(
        lambda: _run_level(server.url, 16, required), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    print(
        f"\nserve throughput at 16 clients: {result['qps']:.1f} q/s "
        f"(p50 {result['p50_ms']:.1f} ms, p99 {result['p99_ms']:.1f} ms, "
        f"{LOAD_PEERS} peers)"
    )
    assert result["qps"] >= MIN_GUARD_QPS, (
        f"serve throughput {result['qps']:.1f} q/s at 16 clients is below "
        f"the {MIN_GUARD_QPS} q/s guard"
    )
