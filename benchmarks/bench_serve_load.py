"""Serve-load benchmark: queries/sec and latency vs concurrent clients.

The acceptance bench of the serve subsystem: an in-process ``repro serve``
daemon answers ``query_batch`` requests over HTTP from 1/4/16/64 concurrent
clients against the 2000-peer Table-3 checkpoint (5000 with
``REPRO_BENCH_FULL=1``).  Reported per level: queries/sec and p50/p99 request
latency.  ``test_serve_throughput_guard`` is the CI guard: throughput at 16
concurrent clients must stay above ``MIN_GUARD_QPS``.

Answers are verified against a local ``restore_session`` of the same
checkpoint before any timing is trusted: a fast server that answers wrong is
a failure, not a result.

The latency profile also prints the daemon's session-lock wait-vs-hold
histograms (from the server's default observability): hold time is the work
per request, wait time is the queue in front of the shared session.
"""

import os
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from benchmarks.conftest import attach_table, full_scale
from repro.experiments.reporting import ExperimentTable
from repro.serve import ServeClient, start_server
from repro.serve.server import SessionPool
from repro.serve.supervisor import Supervisor
from repro.store.checkpoint import (
    open_readonly_session,
    open_readonly_session_pool,
    restore_session,
    save_session,
)
from repro.workloads.registry import default_registry

#: Network scale: the paper's 2000-peer Table-3 point (5000 full-scale).
LOAD_PEERS = 5000 if full_scale() else 2000
#: Concurrency levels swept by the latency profile.
CLIENT_LEVELS = [1, 4, 16, 64]
#: Requests per level, split across the clients of that level.
TOTAL_REQUESTS = 64
#: Queries per request: small batches model interactive traffic.
QUERIES_PER_REQUEST = 2
#: CI guard floor for queries/sec at 16 concurrent clients.  Local runs
#: measure an order of magnitude above this; the slack absorbs shared CI
#: runners, not regressions.
MIN_GUARD_QPS = 25.0
#: Pool size for the pooled-daemon comparison (``repro serve --pool N``).
POOL_SIZE = 4
#: Floor for pooled/single throughput at 16 clients.  The pool removes the
#: single-session lock plateau, but the per-request work is pure Python, so
#: on one CPython process the GIL — not the lock — can become the next
#: ceiling; the guard therefore only demands the pool costs nothing.
MIN_POOL_RATIO = 0.75
#: Worker processes for the supervised fleet (``repro serve --workers N``).
WORKER_COUNT = 4
#: Floor for supervised/single throughput at 16 clients.  Worker *processes*
#: sidestep the GIL, so on a multi-core machine the fleet must beat the
#: single daemon outright; on fewer cores than workers the processes time-
#: slice one CPU and the guard only demands the supervision layer (proxy
#: hop, admission control, health checks) keeps most of the throughput.
MIN_WORKERS_RATIO = 1.5 if (os.cpu_count() or 1) >= WORKER_COUNT else 0.5


@pytest.fixture(scope="module")
def checkpoint_path(tmp_path_factory):
    scenario = default_registry().scenario(
        "table3-default", peer_count=LOAD_PEERS, duration_seconds=3600.0
    )
    session = scenario.builder().build()
    path = tmp_path_factory.mktemp("serve-bench") / "load.sqlite"
    save_session(session, str(path))
    return path


@pytest.fixture(scope="module")
def served(checkpoint_path):
    path = checkpoint_path
    readonly = open_readonly_session(str(path))
    server = start_server(readonly, close_session_on_stop=True)
    required = max(1, round(0.1 * readonly.overlay.size))

    # Correctness gate: the served batch must equal a local restore's batch.
    over_http = ServeClient(server.url).query_batch(
        count=QUERIES_PER_REQUEST, required_results=required
    )
    local = restore_session(str(path)).query_batch(
        count=QUERIES_PER_REQUEST, required_results=required
    )
    assert over_http == local, "served answers diverge from a local restore"

    yield server, required
    if not readonly.closed:
        server.stop()


@pytest.fixture(scope="module")
def served_pool(checkpoint_path):
    """A pooled daemon (``repro serve --pool N``) over the same checkpoint."""
    path = checkpoint_path
    pool = SessionPool(open_readonly_session_pool(str(path), POOL_SIZE))
    server = start_server(pool, close_session_on_stop=True)
    required = max(1, round(0.1 * pool.primary.overlay.size))

    # Correctness gate: every pool member must answer like a local restore.
    local = restore_session(str(path)).query_batch(
        count=QUERIES_PER_REQUEST, required_results=required
    )
    client = ServeClient(server.url)
    for _member in range(POOL_SIZE):
        over_http = client.query_batch(
            count=QUERIES_PER_REQUEST, required_results=required
        )
        assert over_http == local, "pooled answers diverge from a local restore"

    yield server, required
    if not pool.primary.closed:
        server.stop()


@pytest.fixture(scope="module")
def served_workers(checkpoint_path):
    """A supervised worker fleet (``repro serve --workers N``), same checkpoint.

    The response cache is disabled: the guard measures multi-process
    parallelism, and with a cache every repeated benchmark request would be
    answered from memory without touching a worker.
    """
    path = checkpoint_path
    supervisor = Supervisor(
        str(path),
        workers=WORKER_COUNT,
        max_inflight=128,
        deadline_ms=120_000,
        cache_size=0,
        startup_timeout=600.0,
    ).start()
    required = None

    # Correctness gate: the fleet must answer like a local restore.
    local_session = restore_session(str(path))
    required = max(1, round(0.1 * local_session.overlay.size))
    local = local_session.query_batch(
        count=QUERIES_PER_REQUEST, required_results=required
    )
    client = ServeClient(supervisor.url)
    for _worker in range(WORKER_COUNT):
        over_http = client.query_batch(
            count=QUERIES_PER_REQUEST, required_results=required
        )
        assert over_http == local, "fleet answers diverge from a local restore"

    yield supervisor, required
    supervisor.stop()


def _run_level(url: str, clients: int, required: int) -> dict:
    """Drive one concurrency level; returns qps and latency percentiles."""
    per_client = max(1, TOTAL_REQUESTS // clients)

    def worker():
        client = ServeClient(url)
        latencies = []
        for _ in range(per_client):
            started = time.perf_counter()
            answers = client.query_batch(
                count=QUERIES_PER_REQUEST, required_results=required
            )
            latencies.append(time.perf_counter() - started)
            assert len(answers) == QUERIES_PER_REQUEST
        return latencies

    with ThreadPoolExecutor(max_workers=clients) as pool:
        wall_start = time.perf_counter()
        futures = [pool.submit(worker) for _ in range(clients)]
        latencies = [latency for future in futures for latency in future.result()]
        wall = time.perf_counter() - wall_start

    latencies.sort()
    requests = clients * per_client
    return {
        "clients": clients,
        "requests": requests,
        "qps": requests * QUERIES_PER_REQUEST / wall,
        "p50_ms": 1000 * latencies[len(latencies) // 2],
        "p99_ms": 1000 * latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))],
    }


def _print_lock_profile(server) -> None:
    """Print the session-lock wait-vs-hold histogram the daemon recorded.

    Under concurrency the spread between the two distributions *is* the
    queueing story: hold time is the work, wait time is the line in front
    of it.  The histograms come from the server's default observability.
    """
    obs = server.observability
    if obs is None:
        return
    wait = obs.metrics.histogram("repro_session_lock_wait_seconds")
    hold = obs.metrics.histogram("repro_session_lock_hold_seconds")
    if wait is None or hold is None:
        return
    print("\nsession lock wait vs hold (seconds):")
    for name, histogram in (("wait", wait), ("hold", hold)):
        mean = histogram.total_sum / histogram.total_count if histogram.total_count else 0.0
        print(
            f"  {name}: n={histogram.total_count} mean={mean * 1000:.2f}ms "
            f"sum={histogram.total_sum:.3f}s"
        )
        cumulative = histogram.cumulative()
        for bound, count in zip(histogram.buckets, cumulative):
            if count:
                share = count / histogram.total_count
                print(f"    <= {bound:g}s: {count} ({share:.0%})")
                if share >= 1.0:
                    break


@pytest.mark.benchmark(group="serve-load")
def test_serve_load_latency_profile(served, benchmark):
    """Queries/sec and p50/p99 latency at 1/4/16/64 concurrent clients."""
    server, required = served
    rows = []

    def sweep():
        rows.clear()
        for clients in CLIENT_LEVELS:
            rows.append(_run_level(server.url, clients, required))
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    _print_lock_profile(server)

    table = ExperimentTable(
        name=f"Serve load at {LOAD_PEERS} peers",
        columns=["clients", "requests", "qps", "p50_ms", "p99_ms"],
        expectation="one shared read-only session; latency grows with "
        "queueing, throughput stays flat (requests serialize on the session)",
        parameters={
            "peers": LOAD_PEERS,
            "queries_per_request": QUERIES_PER_REQUEST,
        },
    )
    for row in rows:
        table.add_row(**{k: round(v, 2) if isinstance(v, float) else v for k, v in row.items()})
    attach_table(benchmark, table)
    for row in rows:
        assert row["qps"] > 0
        assert row["p50_ms"] <= row["p99_ms"]


@pytest.mark.benchmark(group="serve-load")
def test_serve_throughput_guard(served, benchmark):
    """CI guard: ≥ ``MIN_GUARD_QPS`` queries/sec at 16 concurrent clients."""
    server, required = served
    result = benchmark.pedantic(
        lambda: _run_level(server.url, 16, required), rounds=1, iterations=1
    )
    benchmark.extra_info.update(result)
    print(
        f"\nserve throughput at 16 clients: {result['qps']:.1f} q/s "
        f"(p50 {result['p50_ms']:.1f} ms, p99 {result['p99_ms']:.1f} ms, "
        f"{LOAD_PEERS} peers)"
    )
    assert result["qps"] >= MIN_GUARD_QPS, (
        f"serve throughput {result['qps']:.1f} q/s at 16 clients is below "
        f"the {MIN_GUARD_QPS} q/s guard"
    )


@pytest.mark.benchmark(group="serve-load")
def test_serve_pool_vs_single_session(served, served_pool, benchmark):
    """Pooled daemon vs the single-session plateau at 16 concurrent clients.

    The single daemon serializes requests on one session lock; the pool
    round-robins over ``POOL_SIZE`` byte-identical restores, so requests only
    queue on the (much shorter) per-member critical sections.  The printed
    lock profile of both daemons shows where the waiting went.
    """
    single_server, required = served
    pool_server, _pool_required = served_pool

    def race():
        single = _run_level(single_server.url, 16, required)
        pooled = _run_level(pool_server.url, 16, required)
        return {"single": single, "pooled": pooled}

    result = benchmark.pedantic(race, rounds=1, iterations=1)
    single_qps = result["single"]["qps"]
    pooled_qps = result["pooled"]["qps"]
    ratio = pooled_qps / single_qps
    dispatched = pool_server.pool.dispatch_counts()
    benchmark.extra_info.update(
        {
            "single_qps": single_qps,
            "pooled_qps": pooled_qps,
            "ratio": ratio,
            "pool_dispatch": dispatched,
        }
    )
    print(
        f"\nserve pool ({POOL_SIZE} members) vs single at 16 clients: "
        f"{pooled_qps:.1f} vs {single_qps:.1f} q/s ({ratio:.2f}x), "
        f"dispatch {dispatched}"
    )
    _print_lock_profile(pool_server)

    # The round-robin must actually spread the load across members...
    assert sum(1 for count in dispatched if count > 0) > 1
    # ...and pooling must never cost throughput (GIL-bound runs hover near
    # 1x; lock-bound runs exceed it).
    assert ratio >= MIN_POOL_RATIO, (
        f"pooled throughput {pooled_qps:.1f} q/s fell to {ratio:.2f}x of the "
        f"single-session daemon ({single_qps:.1f} q/s)"
    )


@pytest.mark.benchmark(group="serve-load")
def test_serve_workers_vs_single_process(served, served_workers, benchmark):
    """Supervised worker fleet vs the single-process daemon at 16 clients.

    In-process pooling hovers near 1x because every pool member shares one
    GIL; worker *processes* execute protocol work truly in parallel.  On a
    machine with >= ``WORKER_COUNT`` cores (the CI runners) the fleet is
    guarded at ``1.5x`` the single daemon; on smaller machines the processes
    time-slice one CPU and the guard only polices supervision overhead.
    """
    single_server, required = served
    supervisor, _workers_required = served_workers

    def race():
        single = _run_level(single_server.url, 16, required)
        fleet = _run_level(supervisor.url, 16, required)
        return {"single": single, "fleet": fleet}

    result = benchmark.pedantic(race, rounds=1, iterations=1)
    single_qps = result["single"]["qps"]
    fleet_qps = result["fleet"]["qps"]
    ratio = fleet_qps / single_qps
    health = ServeClient(supervisor.url).health()
    benchmark.extra_info.update(
        {
            "single_qps": single_qps,
            "fleet_qps": fleet_qps,
            "ratio": ratio,
            "workers": WORKER_COUNT,
            "cpus": os.cpu_count(),
            "shed_total": health["shed_total"],
            "restarts_total": health["restarts_total"],
        }
    )
    print(
        f"\nserve fleet ({WORKER_COUNT} workers, {os.cpu_count()} cpus) vs "
        f"single process at 16 clients: {fleet_qps:.1f} vs {single_qps:.1f} "
        f"q/s ({ratio:.2f}x), p99 {result['fleet']['p99_ms']:.1f} vs "
        f"{result['single']['p99_ms']:.1f} ms"
    )

    # The run must have been clean: no worker died, nothing was shed —
    # otherwise the throughput number measures recovery, not serving.
    assert health["restarts_total"] == 0
    assert health["shed_total"] == 0
    assert health["workers_live"] == WORKER_COUNT
    assert ratio >= MIN_WORKERS_RATIO, (
        f"fleet throughput {fleet_qps:.1f} q/s is {ratio:.2f}x the single "
        f"daemon ({single_qps:.1f} q/s); the floor on this machine "
        f"({os.cpu_count()} cpus) is {MIN_WORKERS_RATIO}x"
    )
