"""Store subsystem benchmarks: warm-start wins and snapshot dedup.

``test_warm_start_skips_construction`` is the acceptance benchmark of the
persistence PR: a repeated ``run-scenario``-style invocation with a warm
cache directory restores the built session instead of reconstructing it
(topology generation + domain construction + churn scheduling), and produces
exactly the same session.  ``test_checkpoint_roundtrip_throughput`` tracks
the raw save/restore cost, and ``test_snapshot_dedup`` shows content
addressing collapsing identical hierarchies across peers and checkpoints.
"""

import time

import pytest

from benchmarks.conftest import full_scale
from repro.core.session import SystemBuilder
from repro.database.generator import PatientGenerator
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.store import SnapshotStore, SqliteBackend
from repro.store.cache import SessionCache
from repro.workloads.registry import default_registry

#: Scenario scale for the warm-start bench: large enough that construction
#: visibly dominates, small enough for the default harness budget.
WARM_START_PEERS = 5000 if full_scale() else 2000


def _scenario():
    return default_registry().scenario(
        "table3-default", peer_count=WARM_START_PEERS, duration_seconds=3600.0
    )


def _build(scenario):
    return scenario.apply_dynamics(scenario.builder()).build()


@pytest.mark.benchmark(group="store-warm-start")
def test_warm_start_skips_construction(benchmark, tmp_path):
    """Warm restore vs cold construction of a Table-3 session."""
    scenario = _scenario()
    cache = SessionCache(tmp_path / "cache.sqlite")
    parameters = {"bench": "warm-start", "peers": scenario.peer_count}

    t0 = time.perf_counter()
    cold_session, warm = cache.get_or_build(parameters, lambda: _build(scenario))
    cold_seconds = time.perf_counter() - t0
    assert not warm

    def restore():
        session, hit = cache.get_or_build(parameters, lambda: _build(scenario))
        assert hit
        return session

    warm_session = benchmark(restore)

    # Byte-identical warm start: same topology, same pending schedule.
    assert warm_session.overlay.peer_ids == cold_session.overlay.peer_ids
    assert (
        warm_session.system.simulator.pending_events
        == cold_session.system.simulator.pending_events
    )
    build_only = time.perf_counter()
    _build(scenario)
    build_seconds = time.perf_counter() - build_only

    benchmark.extra_info["peers"] = scenario.peer_count
    benchmark.extra_info["cold_seconds_with_save"] = cold_seconds
    benchmark.extra_info["construction_seconds"] = build_seconds
    stats = getattr(benchmark, "stats", None)
    if stats:
        warm_seconds = stats.stats.mean
        benchmark.extra_info["warm_over_construction_speedup"] = (
            build_seconds / warm_seconds if warm_seconds else None
        )
        print(
            f"\nwarm restore {warm_seconds:.3f}s vs construction "
            f"{build_seconds:.3f}s ({build_seconds / warm_seconds:.2f}x) "
            f"at {scenario.peer_count} peers"
        )


@pytest.mark.benchmark(group="store-roundtrip")
def test_checkpoint_roundtrip_throughput(benchmark, tmp_path):
    """Save + restore cost of a mid-simulation churn-heavy session."""
    scenario = default_registry().scenario(
        "churn-heavy", peer_count=500 if not full_scale() else 2000
    )
    session = _build(scenario)
    session.run_until(0.5 * session.horizon)
    store = SqliteBackend(tmp_path / "roundtrip.sqlite")

    def roundtrip():
        session.checkpoint(store, name="bench")
        return SystemBuilder.from_checkpoint(store, name="bench")

    restored = benchmark(roundtrip)
    assert restored.now == session.now
    benchmark.extra_info["peers"] = scenario.peer_count
    benchmark.extra_info["pending_events"] = session.system.simulator.pending_events
    store.close()


@pytest.mark.benchmark(group="store-delta")
def test_delta_checkpoint_smaller_than_full(benchmark, tmp_path):
    """Bench guard: a delta checkpoint is materially smaller at 2000 peers.

    The guard asserts the size win — a delta must stay well under half the
    full document; in practice it is ~4× smaller, since the 2000-peer overlay
    adjacency dominates a full checkpoint and never changes between nearby
    simulation times — and records both save times (the structural diff costs
    more CPU than one wholesale encode, which is the price of writing 4×
    fewer bytes to storage).
    """
    from repro.store import CHECKPOINT_KIND

    scenario = default_registry().scenario(
        "table3-default", peer_count=2000, duration_seconds=3600.0
    )
    session = _build(scenario)
    session.run_until(0.5 * session.horizon)
    store = SqliteBackend(tmp_path / "delta.sqlite")
    session.checkpoint(store, name="base")

    session.run_until(0.75 * session.horizon)
    t0 = time.perf_counter()
    session.checkpoint(store, name="full")
    full_seconds = time.perf_counter() - t0

    benchmark(lambda: session.checkpoint(store, name="delta", base="base"))

    full_bytes = store.size_bytes(CHECKPOINT_KIND, "full")
    delta_bytes = store.size_bytes(CHECKPOINT_KIND, "delta")
    assert delta_bytes < 0.5 * full_bytes, (
        f"delta checkpoint ({delta_bytes}B) is not materially smaller than "
        f"the full checkpoint ({full_bytes}B) at {scenario.peer_count} peers"
    )
    # And the delta restores to the exact same session as the full document.
    restored = SystemBuilder.from_checkpoint(store, name="delta")
    assert restored.now == session.now

    benchmark.extra_info["peers"] = scenario.peer_count
    benchmark.extra_info["full_bytes"] = full_bytes
    benchmark.extra_info["delta_bytes"] = delta_bytes
    benchmark.extra_info["size_ratio"] = delta_bytes / full_bytes
    benchmark.extra_info["full_save_seconds"] = full_seconds
    stats = getattr(benchmark, "stats", None)
    if stats:
        delta_seconds = stats.stats.mean
        benchmark.extra_info["delta_save_seconds"] = delta_seconds
        print(
            f"\ndelta {delta_bytes}B vs full {full_bytes}B "
            f"({delta_bytes / full_bytes:.1%}); save {delta_seconds:.3f}s vs "
            f"{full_seconds:.3f}s at {scenario.peer_count} peers"
        )
    store.close()


@pytest.mark.benchmark(group="store-dedup")
def test_snapshot_dedup(benchmark, tmp_path):
    """Identical per-peer hierarchies collapse to one stored snapshot."""
    background = medical_background_knowledge()
    records = [r.as_dict() for r in PatientGenerator(seed=2).relation(40)]
    peer_count = 64

    def build_one(owner):
        hierarchy = SummaryHierarchy(
            background, attributes=["age", "bmi"], owner=owner
        )
        hierarchy.add_records(records)
        return hierarchy

    # Same data at every peer but distinct owners: distinct addresses.  The
    # same data under the *same* owner (re-published snapshots): one address.
    store = SnapshotStore(SqliteBackend(tmp_path / "dedup.sqlite"))
    hierarchy = build_one("shared-owner")

    def snapshot_everybody():
        for _peer in range(peer_count):
            store.put_hierarchy(hierarchy)
        return len(store)

    stored = benchmark(snapshot_everybody)
    assert stored == 1  # 64 publications, one stored object
    benchmark.extra_info["publications"] = peer_count
    benchmark.extra_info["stored_snapshots"] = stored
    benchmark.extra_info["stored_bytes"] = store.size_bytes()
    store.backend.close()
