"""Engine micro-benchmarks: summarization throughput and hierarchy merging.

These support the scalability discussion of Section 3.2.3 (linear-time
incorporation, bounded memory) and Section 6.1.1 (merge cost depends on leaf
counts, not tuple counts).  Construction scaling over grid size lives in
:mod:`benchmarks.bench_construction_scaling`.
"""

import json

import pytest

from benchmarks.conftest import mean_seconds
from repro.database.generator import PatientGenerator
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.merging import merge_hierarchies

BACKGROUND = medical_background_knowledge(include_categorical=False)


def _records(count, seed=0):
    return PatientGenerator(seed=seed, background=BACKGROUND).records(count)


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("record_count", [100, 500])
def test_summarization_throughput(benchmark, record_count):
    """Incremental incorporation of ``record_count`` records."""
    records = _records(record_count)

    def build():
        hierarchy = SummaryHierarchy(BACKGROUND, attributes=["age", "bmi"], owner="p")
        hierarchy.add_records(records)
        return hierarchy

    hierarchy = benchmark(build)
    assert hierarchy.records_processed == record_count
    assert hierarchy.leaf_count() <= hierarchy.mapping.grid_size()
    mean = mean_seconds(benchmark)
    benchmark.extra_info["throughput"] = json.dumps(
        {
            "records": record_count,
            "records_per_second": record_count / mean if mean else None,
            "leaves": hierarchy.leaf_count(),
            "depth": hierarchy.depth(),
        }
    )


@pytest.mark.benchmark(group="engine")
def test_incremental_incorporation_is_cheap_once_stable(benchmark):
    """Once every descriptor combination exists, adding a record is cheap."""
    hierarchy = SummaryHierarchy(BACKGROUND, attributes=["age", "bmi"], owner="p")
    hierarchy.add_records(_records(500))
    extra = _records(50, seed=99)

    def add_more():
        for record in extra:
            hierarchy.add_record(record)

    benchmark.pedantic(add_more, iterations=1, rounds=3)
    assert hierarchy.leaf_count() <= hierarchy.mapping.grid_size()


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("peer_count", [4, 16])
def test_hierarchy_merge_cost(benchmark, peer_count):
    """Merging cost grows with leaf counts, not with the number of raw tuples."""
    hierarchies = []
    for index in range(peer_count):
        hierarchy = SummaryHierarchy(
            BACKGROUND, attributes=["age", "bmi"], owner=f"p{index}"
        )
        hierarchy.add_records(_records(50, seed=index))
        hierarchies.append(hierarchy)

    merged = benchmark(lambda: merge_hierarchies(hierarchies, owner="sp"))
    assert merged.peer_extent() == {f"p{i}" for i in range(peer_count)}
    assert merged.leaf_count() <= merged.mapping.grid_size()
