"""Runtime backend benchmark: concurrent fan-out vs serial simulator.

The acceptance bench of the :mod:`repro.runtime` layer, on a
maintenance-heavy multi-domain workload (one modification per peer every ten
minutes — 18× the Table-3 default) where every churn/modification event
carries an I/O-shaped cost (~2 ms: a push RPC, a snapshot write).  The
:class:`~repro.runtime.simulator.SimulatorBackend` pays those waits one
``time.sleep`` at a time; the
:class:`~repro.runtime.concurrent.ConcurrentBackend` overlaps them per drain
window across actor mailboxes, so the same run finishes in a fraction of the
wall clock while producing byte-identical answers and message counters.

``test_runtime_speedup_guard`` is the CI guard: the concurrent backend must
be at least ``MIN_SPEEDUP``× faster than the simulator backend *and* its
answers/counters must equal the simulator's — a fast backend that answers
differently is a failure, not a result.
"""

import time

import pytest

from benchmarks.conftest import attach_table, full_scale
from repro.experiments.reporting import ExperimentTable
from repro.runtime import ConcurrentBackend, SimulatorBackend
from repro.workloads.registry import default_registry

#: Network scale of the maintenance-heavy workload.
RUNTIME_PEERS = 128 if full_scale() else 64
#: Simulated horizon (seconds).
HORIZON = 7200.0
#: One modification per peer per 10 minutes: maintenance-heavy.
MODIFICATION_RATE = 1.0 / 600.0
#: Wall-clock cost modelled per maintenance-shaped event (seconds).
IO_COST_SECONDS = 0.002
#: CI guard floor for the concurrent/simulator wall-clock ratio.  Local runs
#: measure ~7×; the slack absorbs shared CI runners, not regressions.
MIN_SPEEDUP = 2.0

#: Labels that carry the modelled I/O cost (the events scenario runs
#: schedule: content modifications and churn arrivals/departures).
IO_LABELS = frozenset({"modification", "departure", "rejoin"})


def _io_model(label):
    return IO_COST_SECONDS if label in IO_LABELS else 0.0


def _build(runtime):
    scenario = default_registry().scenario(
        "table3-default", peer_count=RUNTIME_PEERS, duration_seconds=HORIZON
    )
    builder = scenario.builder().runtime(runtime)
    return scenario.apply_dynamics(
        builder, modification_rate_per_peer=MODIFICATION_RATE
    ).build()


def _run(runtime):
    """Run the workload on ``runtime``; returns (wall seconds, fingerprint)."""
    session = _build(runtime)
    started = time.perf_counter()
    session.run_until()
    wall = time.perf_counter() - started
    fingerprint = {
        "answers": session.query_batch(count=4, required_results=3),
        "counter": session.system.counter.state_payload(),
        "now": session.now,
    }
    return wall, fingerprint


@pytest.mark.benchmark(group="runtime")
def test_runtime_backend_profile(benchmark):
    """Wall clock of the three executions: CPU-only, serial I/O, overlapped."""
    rows = []

    def sweep():
        rows.clear()
        for label, runtime in (
            ("simulator (no io)", SimulatorBackend()),
            ("simulator + io", SimulatorBackend(io_model=_io_model)),
            (
                "concurrent + io",
                ConcurrentBackend(
                    io_model=_io_model, quantum_seconds=120.0, max_concurrency=16
                ),
            ),
        ):
            wall, fingerprint = _run(runtime)
            rows.append({"backend": label, "wall_s": wall, "fp": fingerprint})
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    # All three executions are the same virtual run.
    assert rows[0]["fp"] == rows[1]["fp"] == rows[2]["fp"]

    table = ExperimentTable(
        name=f"Runtime backends at {RUNTIME_PEERS} peers, {HORIZON:.0f}s horizon",
        columns=["backend", "wall_s"],
        expectation="identical answers/counters; the concurrent backend "
        "overlaps the I/O waits the serial simulator pays one at a time",
        parameters={
            "peers": RUNTIME_PEERS,
            "modification_rate_per_peer": MODIFICATION_RATE,
            "io_cost_ms": IO_COST_SECONDS * 1000,
        },
    )
    for row in rows:
        table.add_row(backend=row["backend"], wall_s=round(row["wall_s"], 3))
    attach_table(benchmark, table)


@pytest.mark.benchmark(group="runtime")
def test_runtime_speedup_guard(benchmark):
    """CI guard: concurrent ≥ ``MIN_SPEEDUP``× simulator, equivalence-gated."""

    def race():
        serial_wall, serial_fp = _run(SimulatorBackend(io_model=_io_model))
        backend = ConcurrentBackend(
            io_model=_io_model, quantum_seconds=120.0, max_concurrency=16
        )
        overlap_wall, overlap_fp = _run(backend)
        return {
            "serial_s": serial_wall,
            "concurrent_s": overlap_wall,
            "speedup": serial_wall / overlap_wall,
            "fanout_rounds": backend.fanout_rounds,
            "overlapped_events": backend.overlapped_events,
            "equal": serial_fp == overlap_fp,
        }

    result = benchmark.pedantic(race, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {k: v for k, v in result.items() if k != "equal"}
    )
    print(
        f"\nruntime speedup: {result['speedup']:.2f}x "
        f"(serial {result['serial_s']:.2f}s, concurrent {result['concurrent_s']:.2f}s, "
        f"{result['overlapped_events']} overlapped events in "
        f"{result['fanout_rounds']} rounds, {RUNTIME_PEERS} peers)"
    )
    # Equivalence gates the timing: a fast-but-wrong backend must fail here.
    assert result["equal"], "concurrent answers diverged from the simulator"
    assert result["overlapped_events"] > 0, "the fan-out path never ran"
    assert result["speedup"] >= MIN_SPEEDUP, (
        f"concurrent backend speedup {result['speedup']:.2f}x is below the "
        f"{MIN_SPEEDUP}x guard"
    )
