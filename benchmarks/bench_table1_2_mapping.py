"""Tables 1 & 2 — the running example: raw tuples mapped to grid cells.

Regenerates the paper's Table 2 from its Table 1 and checks the exact cell
structure (three cells with tuple counts 2 / 0.7 / 0.3).

``test_batched_mapping_speedup`` additionally pits the memoized batch path of
``MappingService.map_records`` (per-attribute fuzzification memo + shared
cell-key expansion) against the plain per-record loop it replaced, on a
generated patient relation.
"""

import time

import pytest

from benchmarks.conftest import attach_table, full_scale, mean_seconds
from repro.database.generator import PatientGenerator
from repro.experiments.tables import run_table1_table2
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.saintetiq.mapping import MappingService, map_records_reference


@pytest.mark.benchmark(group="tables")
def test_table1_table2_mapping(benchmark):
    table = benchmark(run_table1_table2)
    attach_table(benchmark, table)

    counts = sorted(table.column("tuple_count"), reverse=True)
    assert counts == pytest.approx([2.0, 0.7, 0.3])
    labels = {(row["age_label"], row["bmi_label"]) for row in table.rows}
    assert labels == {
        ("young", "underweight"),
        ("young", "normal"),
        ("adult", "normal"),
    }


#: Relation size for the batch-mapping bench.
MAPPING_RECORDS = 60000 if full_scale() else 15000


@pytest.mark.benchmark(group="mapping-batch")
def test_batched_mapping_speedup(benchmark):
    """Batched ``map_records`` vs the per-record loop on a patient relation."""
    background = medical_background_knowledge()
    service = MappingService(background)
    records = [
        r.as_dict() for r in PatientGenerator(seed=7).relation(MAPPING_RECORDS)
    ]

    batched = benchmark(service.map_records, records, "peer-a")

    t0 = time.perf_counter()
    reference = map_records_reference(service, records, "peer-a")
    reference_seconds = time.perf_counter() - t0

    assert set(batched) == set(reference)
    for key, cell in batched.items():
        assert cell.tuple_count == pytest.approx(reference[key].tuple_count)
        assert cell.grades == reference[key].grades

    benchmark.extra_info["records"] = MAPPING_RECORDS
    benchmark.extra_info["cells"] = len(batched)
    benchmark.extra_info["per_record_seconds"] = reference_seconds
    batched_seconds = mean_seconds(benchmark)
    if batched_seconds:
        speedup = reference_seconds / batched_seconds
        benchmark.extra_info["batched_speedup"] = speedup
        print(
            f"\nbatched {batched_seconds:.3f}s vs per-record "
            f"{reference_seconds:.3f}s ({speedup:.2f}x) over "
            f"{MAPPING_RECORDS} records"
        )
