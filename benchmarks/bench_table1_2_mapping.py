"""Tables 1 & 2 — the running example: raw tuples mapped to grid cells.

Regenerates the paper's Table 2 from its Table 1 and checks the exact cell
structure (three cells with tuple counts 2 / 0.7 / 0.3).
"""

import pytest

from benchmarks.conftest import attach_table
from repro.experiments.tables import run_table1_table2


@pytest.mark.benchmark(group="tables")
def test_table1_table2_mapping(benchmark):
    table = benchmark(run_table1_table2)
    attach_table(benchmark, table)

    counts = sorted(table.column("tuple_count"), reverse=True)
    assert counts == pytest.approx([2.0, 0.7, 0.3])
    labels = {(row["age_label"], row["bmi_label"]) for row in table.rows}
    assert labels == {
        ("young", "underweight"),
        ("young", "normal"),
        ("adult", "normal"),
    }
