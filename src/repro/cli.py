"""Command-line interface for the experiment harness.

``python -m repro <command>`` regenerates the paper's tables and figures from
the terminal without going through pytest:

* ``tables``  — Tables 1/2 (running example) and Table 3 (parameters),
* ``fig4``    — stale answers vs. domain size,
* ``fig5``    — false negatives vs. domain size,
* ``fig6``    — update messages vs. domain size,
* ``fig7``    — query cost vs. number of peers,
* ``all``     — everything above.

Every command accepts ``--sizes`` / ``--alphas`` / ``--hours`` / ``--seed``
overrides and ``--json`` to emit machine-readable output.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.fig4_stale_answers import run_figure4
from repro.experiments.fig5_false_negatives import run_figure5
from repro.experiments.fig6_update_cost import run_figure6
from repro.experiments.fig7_query_cost import run_figure7
from repro.experiments.reporting import ExperimentTable
from repro.experiments.tables import run_table1_table2, run_table3

DEFAULT_SIZES = [16, 100, 500]
DEFAULT_ALPHAS = [0.1, 0.3, 0.8]


def _parse_sizes(raw: Optional[str], fallback: List[int]) -> List[int]:
    if not raw:
        return list(fallback)
    try:
        return [int(token) for token in raw.split(",") if token.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid size list {raw!r}") from exc


def _parse_alphas(raw: Optional[str], fallback: List[float]) -> List[float]:
    if not raw:
        return list(fallback)
    try:
        return [float(token) for token in raw.split(",") if token.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid alpha list {raw!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'Summary Management in P2P Systems' (EDBT 2008).",
    )
    parser.add_argument(
        "command",
        choices=["tables", "fig4", "fig5", "fig6", "fig7", "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--sizes",
        help="comma-separated domain/network sizes (default: 16,100,500)",
    )
    parser.add_argument(
        "--alphas",
        help="comma-separated freshness thresholds for fig4 (default: 0.1,0.3,0.8)",
    )
    parser.add_argument(
        "--hours",
        type=float,
        default=6.0,
        help="simulated hours for the maintenance figures (default: 6)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=20,
        help="queries per network size for fig7 (default: 20)",
    )
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text tables"
    )
    return parser


def _emit(tables: Sequence[ExperimentTable], as_json: bool) -> None:
    for table in tables:
        if as_json:
            print(table.to_json())
        else:
            print(table.to_text())
            print()


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    sizes = _parse_sizes(args.sizes, DEFAULT_SIZES)
    alphas = _parse_alphas(args.alphas, DEFAULT_ALPHAS)
    duration = args.hours * 3600.0

    commands: Dict[str, Callable[[], List[ExperimentTable]]] = {
        "tables": lambda: [run_table1_table2(), run_table3()],
        "fig4": lambda: [
            run_figure4(
                domain_sizes=sizes,
                alphas=alphas,
                duration_seconds=duration,
                seed=args.seed,
            )
        ],
        "fig5": lambda: [
            run_figure5(domain_sizes=sizes, duration_seconds=duration, seed=args.seed)
        ],
        "fig6": lambda: [
            run_figure6(domain_sizes=sizes, duration_seconds=duration, seed=args.seed)
        ],
        "fig7": lambda: [
            run_figure7(
                network_sizes=sizes, queries_per_size=args.queries, seed=args.seed
            )
        ],
    }

    if args.command == "all":
        tables: List[ExperimentTable] = []
        for name in ("tables", "fig4", "fig5", "fig6", "fig7"):
            tables.extend(commands[name]())
    else:
        tables = commands[args.command]()

    _emit(tables, args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
