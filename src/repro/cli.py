"""Command-line interface for the experiment harness.

``python -m repro <command>`` regenerates the paper's tables and figures from
the terminal without going through pytest:

* ``tables``         — Tables 1/2 (running example) and Table 3 (parameters),
* ``fig4``           — stale answers vs. domain size,
* ``fig5``           — false negatives vs. domain size,
* ``fig6``           — update messages vs. domain size,
* ``fig7``           — query cost vs. number of peers,
* ``all``            — everything above,
* ``list-scenarios`` — the named scenarios of the registry,
* ``run-scenario``   — build a named scenario through ``SystemBuilder``,
  simulate its churn horizon and pose a query batch
  (``python -m repro run-scenario smoke --queries 10``).

Every command accepts ``--sizes`` / ``--alphas`` / ``--hours`` / ``--seed``
overrides and ``--json`` to emit machine-readable output; ``run-scenario``
additionally takes ``--peers`` / ``--alpha`` / ``--hit-rate`` / ``--queries``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.fig4_stale_answers import run_figure4
from repro.experiments.fig5_false_negatives import run_figure5
from repro.experiments.fig6_update_cost import run_figure6
from repro.experiments.fig7_query_cost import run_figure7
from repro.experiments.reporting import ExperimentTable
from repro.experiments.tables import run_table1_table2, run_table3
from repro.workloads.registry import default_registry

DEFAULT_SIZES = [16, 100, 500]
DEFAULT_ALPHAS = [0.1, 0.3, 0.8]


def _parse_sizes(raw: Optional[str], fallback: List[int]) -> List[int]:
    if not raw:
        return list(fallback)
    try:
        return [int(token) for token in raw.split(",") if token.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid size list {raw!r}") from exc


def _parse_alphas(raw: Optional[str], fallback: List[float]) -> List[float]:
    if not raw:
        return list(fallback)
    try:
        return [float(token) for token in raw.split(",") if token.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid alpha list {raw!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'Summary Management in P2P Systems' (EDBT 2008).",
    )
    parser.add_argument(
        "command",
        choices=[
            "tables",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "all",
            "list-scenarios",
            "run-scenario",
        ],
        help="which table/figure to regenerate, or a scenario command",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        help="scenario name for run-scenario (see list-scenarios)",
    )
    parser.add_argument(
        "--peers",
        type=int,
        help="override the scenario's network size (run-scenario)",
    )
    parser.add_argument(
        "--alpha",
        type=float,
        help="override the scenario's freshness threshold (run-scenario)",
    )
    parser.add_argument(
        "--hit-rate",
        type=float,
        help="override the scenario's query hit rate (run-scenario)",
    )
    parser.add_argument(
        "--sizes",
        help="comma-separated domain/network sizes (default: 16,100,500)",
    )
    parser.add_argument(
        "--alphas",
        help="comma-separated freshness thresholds for fig4 (default: 0.1,0.3,0.8)",
    )
    parser.add_argument(
        "--hours",
        type=float,
        help="simulated hours (figures default: 6; run-scenario defaults to "
        "the scenario's own horizon)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=20,
        help="queries per network size for fig7 (default: 20)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        help="simulation seed (figures default: 0; run-scenario defaults to "
        "the scenario's own seed)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text tables"
    )
    return parser


def _emit(tables: Sequence[ExperimentTable], as_json: bool) -> None:
    for table in tables:
        if as_json:
            print(table.to_json())
        else:
            print(table.to_text())
            print()


def _list_scenarios_table() -> ExperimentTable:
    registry = default_registry()
    table = ExperimentTable(
        name="Registered scenarios",
        columns=["name", "description"],
        expectation="build any of these with: repro run-scenario <name>",
    )
    for name in registry.names():
        table.add_row(name=name, description=registry.describe(name))
    return table


def _run_scenario_table(args: argparse.Namespace) -> ExperimentTable:
    registry = default_registry()
    # Only explicitly passed flags override the scenario's own declaration.
    overrides: Dict[str, object] = {}
    if args.hours is not None:
        overrides["duration_seconds"] = args.hours * 3600.0
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.peers is not None:
        overrides["peer_count"] = args.peers
    if args.alpha is not None:
        overrides["alpha"] = args.alpha
    if args.hit_rate is not None:
        overrides["matching_fraction"] = args.hit_rate
    scenario = registry.scenario(args.scenario, **overrides)

    session = scenario.apply_dynamics(scenario.builder()).build()
    session.run_until()
    required = max(1, round(scenario.matching_fraction * scenario.peer_count))
    answers = session.query_many(count=args.queries, required_results=required)
    maintenance = session.maintenance_report()
    traffic = session.traffic()

    queries = len(answers)
    stale_fractions = [
        answer.staleness.worst_stale_fraction
        for answer in answers
        if answer.staleness is not None and answer.staleness.relevant_count
    ]
    table = ExperimentTable(
        name=f"Scenario {args.scenario!r}",
        columns=[
            "peers",
            "domains",
            "simulated_hours",
            "queries",
            "mean_results",
            "mean_query_messages",
            "mean_worst_stale_fraction",
            "push_messages",
            "reconciliations",
            "update_messages_per_node",
            "query_messages_total",
        ],
        expectation=registry.describe(args.scenario),
        parameters={
            "alpha": scenario.alpha,
            "hit_rate": scenario.matching_fraction,
            "seed": scenario.seed,
        },
    )
    table.add_row(
        peers=session.overlay.size,
        domains=len(session.domains),
        simulated_hours=scenario.duration_seconds / 3600.0,
        queries=queries,
        mean_results=(
            sum(a.results for a in answers) / queries if queries else 0.0
        ),
        mean_query_messages=(
            sum(a.query_messages for a in answers) / queries if queries else 0.0
        ),
        mean_worst_stale_fraction=(
            sum(stale_fractions) / len(stale_fractions) if stale_fractions else 0.0
        ),
        push_messages=maintenance.push_messages,
        reconciliations=maintenance.reconciliations,
        update_messages_per_node=maintenance.messages_per_node,
        query_messages_total=traffic.query.total_messages,
    )
    return table


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command != "run-scenario" and args.scenario is not None:
        parser.error(
            f"unexpected argument {args.scenario!r}: only run-scenario takes "
            "a scenario name"
        )
    if args.command == "list-scenarios":
        _emit([_list_scenarios_table()], args.json)
        return 0
    if args.command == "run-scenario":
        if not args.scenario:
            parser.error("run-scenario requires a scenario name (see list-scenarios)")
        from repro.exceptions import ConfigurationError

        try:
            table = _run_scenario_table(args)
        except ConfigurationError as exc:
            parser.error(str(exc))
        _emit([table], args.json)
        return 0

    sizes = _parse_sizes(args.sizes, DEFAULT_SIZES)
    alphas = _parse_alphas(args.alphas, DEFAULT_ALPHAS)
    hours = args.hours if args.hours is not None else 6.0
    duration = hours * 3600.0
    args.seed = args.seed if args.seed is not None else 0

    commands: Dict[str, Callable[[], List[ExperimentTable]]] = {
        "tables": lambda: [run_table1_table2(), run_table3()],
        "fig4": lambda: [
            run_figure4(
                domain_sizes=sizes,
                alphas=alphas,
                duration_seconds=duration,
                seed=args.seed,
            )
        ],
        "fig5": lambda: [
            run_figure5(domain_sizes=sizes, duration_seconds=duration, seed=args.seed)
        ],
        "fig6": lambda: [
            run_figure6(domain_sizes=sizes, duration_seconds=duration, seed=args.seed)
        ],
        "fig7": lambda: [
            run_figure7(
                network_sizes=sizes, queries_per_size=args.queries, seed=args.seed
            )
        ],
    }

    if args.command == "all":
        tables: List[ExperimentTable] = []
        for name in ("tables", "fig4", "fig5", "fig6", "fig7"):
            tables.extend(commands[name]())
    else:
        tables = commands[args.command]()

    _emit(tables, args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
