"""Command-line interface for the experiment harness.

``python -m repro <command>`` regenerates the paper's tables and figures from
the terminal without going through pytest:

* ``tables``         — Tables 1/2 (running example) and Table 3 (parameters),
* ``fig4``           — stale answers vs. domain size,
* ``fig5``           — false negatives vs. domain size,
* ``fig6``           — update messages vs. domain size,
* ``fig7``           — query cost vs. number of peers,
* ``fault-sweep``    — answer quality and overhead vs. injected fault
  intensity (``--intensities 0,0.05,0.1,0.2``): per-link loss plus a growing
  partition window; the zero column is the fault-free baseline,
* ``all``            — everything above,
* ``list-scenarios`` — the named scenarios of the registry,
* ``run-scenario``   — build a named scenario through ``SystemBuilder``,
  simulate its churn horizon and pose a query batch
  (``python -m repro run-scenario smoke --queries 10``),
* ``save-session``   — build a named scenario and checkpoint it into a store,
  optionally mid-simulation (``--hours`` picks the checkpoint time inside the
  scenario's horizon): ``python -m repro save-session smoke --store
  runs.sqlite --hours 0.5``; with ``--base <name>`` only the changes since an
  earlier checkpoint are stored (a delta checkpoint),
* ``load-session``   — restore a checkpointed session (delta chains resolve
  transparently), run it to its horizon and pose a query batch
  (``python -m repro load-session --store runs.sqlite``),
* ``serve``          — open a checkpoint read-only and answer query/staleness
  requests over HTTP/JSON until stopped (``python -m repro serve --store
  runs.sqlite --name session --port 8123``); hierarchies load lazily, answers
  are byte-identical to a local restore of the same checkpoint,
* ``inspect-store``  — list the checkpoints (full or delta) and
  content-addressed snapshots of a store; ``--compact`` folds delta
  checkpoint chains into fresh full checkpoints; ``--gc`` reclaims snapshots
  no checkpoint, delta chain or domain head references (``--gc-dry-run``
  only reports them),
* ``metrics``        — fetch a running daemon's ``/metrics`` page
  (``python -m repro metrics --url http://127.0.0.1:8123``); Prometheus
  text, or parsed series with ``--json``,
* ``trace``          — tail a running daemon's trace ring
  (``python -m repro trace --url http://127.0.0.1:8123 --limit 50``).

Observability: ``serve`` is instrumented by default (disable with
``--no-obs``); ``run-scenario`` and ``fault-sweep`` accept ``--metrics-out
PATH`` (Prometheus text artifact) and ``--trace-out PATH`` (JSONL span
artifact) to record what a run did.

Query batches (``run-scenario``/``load-session`` ``--queries N``) run through
``NetworkSession.query_batch`` — the indexed, memoized, shared-work query
path, byte-identical to posing the queries one by one.

Every command accepts ``--sizes`` / ``--alphas`` / ``--hours`` / ``--seed``
overrides and ``--json`` to emit machine-readable output; ``run-scenario``
additionally takes ``--peers`` / ``--alpha`` / ``--hit-rate`` / ``--queries``.
The figures and ``run-scenario`` accept ``--cache-dir`` (a directory or a
``.sqlite`` path): built sessions are checkpointed there and repeated
invocations warm-start from the cache instead of reconstructing.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.session import NetworkSession

from repro.experiments.fig4_stale_answers import run_figure4
from repro.experiments.fig5_false_negatives import run_figure5
from repro.experiments.fig6_update_cost import run_figure6
from repro.experiments.fault_sweep import run_fault_sweep
from repro.experiments.fig7_query_cost import run_figure7
from repro.experiments.reporting import ExperimentTable
from repro.experiments.tables import run_table1_table2, run_table3
from repro.workloads.registry import default_registry

DEFAULT_SIZES = [16, 100, 500]
DEFAULT_ALPHAS = [0.1, 0.3, 0.8]


def _parse_sizes(raw: Optional[str], fallback: List[int]) -> List[int]:
    if not raw:
        return list(fallback)
    try:
        return [int(token) for token in raw.split(",") if token.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid size list {raw!r}") from exc


def _parse_alphas(raw: Optional[str], fallback: List[float]) -> List[float]:
    if not raw:
        return list(fallback)
    try:
        return [float(token) for token in raw.split(",") if token.strip()]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"invalid alpha list {raw!r}") from exc


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the evaluation of 'Summary Management in P2P Systems' (EDBT 2008).",
    )
    parser.add_argument(
        "command",
        choices=[
            "tables",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fault-sweep",
            "all",
            "list-scenarios",
            "run-scenario",
            "save-session",
            "load-session",
            "inspect-store",
            "serve",
            "metrics",
            "trace",
        ],
        help="which table/figure to regenerate, or a scenario/store command",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        help="scenario name for run-scenario/save-session (see list-scenarios)",
    )
    parser.add_argument(
        "--store",
        help="session store: a directory of JSON files, or a .sqlite path "
        "(save-session / load-session / inspect-store)",
    )
    parser.add_argument(
        "--name",
        default="session",
        help="checkpoint name inside the store (default: session)",
    )
    parser.add_argument(
        "--base",
        help="store a delta checkpoint against this earlier checkpoint "
        "(save-session): only the changes since BASE are persisted",
    )
    parser.add_argument(
        "--compact",
        action="store_true",
        help="fold every delta checkpoint's chain into a fresh full "
        "checkpoint (inspect-store); restores are unchanged, the chain's "
        "earlier links become GC-reclaimable",
    )
    parser.add_argument(
        "--gc",
        action="store_true",
        help="collect unreachable snapshots while inspecting the store "
        "(inspect-store); everything a checkpoint, delta chain or domain "
        "head references is kept",
    )
    parser.add_argument(
        "--gc-dry-run",
        action="store_true",
        help="like --gc but only report what a collection would reclaim",
    )
    parser.add_argument(
        "--cache-dir",
        help="warm-start cache for built sessions (figures and run-scenario): "
        "a directory or a .sqlite path",
    )
    parser.add_argument(
        "--peers",
        type=int,
        help="override the scenario's network size (run-scenario)",
    )
    parser.add_argument(
        "--alpha",
        type=float,
        help="override the scenario's freshness threshold (run-scenario)",
    )
    parser.add_argument(
        "--hit-rate",
        type=float,
        help="override the scenario's query hit rate (run-scenario)",
    )
    parser.add_argument(
        "--runtime",
        choices=["simulator", "concurrent"],
        help="execution backend for run-scenario/save-session/load-session "
        "(default: the simulator, or $REPRO_RUNTIME); both backends give "
        "identical answers per seed",
    )
    parser.add_argument(
        "--pool",
        type=int,
        default=1,
        help="serve: answer queries from a pool of POOL read-only sessions "
        "sharing one store and hierarchy cache (default: 1)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="serve: supervise WORKERS worker processes behind one front "
        "port, each with its own read-only restore (default: 1 = serve "
        "in-process; >1 enables crash-safe multi-process serving with "
        "deadlines, load shedding and restart-on-crash)",
    )
    parser.add_argument(
        "--deadline-ms",
        type=float,
        default=10_000.0,
        help="serve --workers: per-request deadline in milliseconds; a "
        "request over budget fails typed with HTTP 504 (default: 10000)",
    )
    parser.add_argument(
        "--max-inflight",
        type=int,
        default=32,
        help="serve --workers: bound on concurrently executing requests; "
        "beyond it requests are shed with HTTP 503 + Retry-After "
        "(default: 32)",
    )
    parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="serve --workers: capacity of the exact response cache keyed "
        "by (canonical request, checkpoint digest); 0 disables "
        "(default: 256)",
    )
    parser.add_argument(
        "--intensities",
        help="comma-separated fault intensities for fault-sweep "
        "(default: 0,0.05,0.1,0.2)",
    )
    parser.add_argument(
        "--sizes",
        help="comma-separated domain/network sizes (default: 16,100,500)",
    )
    parser.add_argument(
        "--alphas",
        help="comma-separated freshness thresholds for fig4 (default: 0.1,0.3,0.8)",
    )
    parser.add_argument(
        "--hours",
        type=float,
        help="simulated hours (figures default: 6; run-scenario defaults to "
        "the scenario's own horizon; for save-session this is the checkpoint "
        "time within the scenario's horizon)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=20,
        help="queries per network size for fig7 (default: 20)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        help="simulation seed (figures default: 0; run-scenario defaults to "
        "the scenario's own seed)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for serve (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8123,
        help="bind port for serve (default: 8123; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--no-obs",
        action="store_true",
        help="serve without metrics/tracing (/metrics and /trace return errors)",
    )
    parser.add_argument(
        "--url",
        help="base URL of a running daemon for the metrics/trace commands "
        "(default: http://HOST:PORT from --host/--port)",
    )
    parser.add_argument(
        "--limit",
        type=int,
        help="span count for trace: only the newest LIMIT spans are fetched",
    )
    parser.add_argument(
        "--metrics-out",
        help="write a Prometheus text-format metrics artifact after the run "
        "(run-scenario / fault-sweep)",
    )
    parser.add_argument(
        "--trace-out",
        help="record spans to a JSONL trace artifact during the run "
        "(run-scenario / fault-sweep)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of text tables"
    )
    return parser


def _emit(tables: Sequence[ExperimentTable], as_json: bool) -> None:
    for table in tables:
        if as_json:
            print(table.to_json())
        else:
            print(table.to_text())
            print()


def _list_scenarios_table() -> ExperimentTable:
    registry = default_registry()
    table = ExperimentTable(
        name="Registered scenarios",
        columns=["name", "description"],
        expectation="build any of these with: repro run-scenario <name>",
    )
    for name in registry.names():
        table.add_row(name=name, description=registry.describe(name))
    return table


def _scenario_from_args(args: argparse.Namespace, include_hours: bool = True):
    registry = default_registry()
    # Only explicitly passed flags override the scenario's own declaration.
    overrides: Dict[str, object] = {}
    if include_hours and args.hours is not None:
        overrides["duration_seconds"] = args.hours * 3600.0
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.peers is not None:
        overrides["peer_count"] = args.peers
    if args.alpha is not None:
        overrides["alpha"] = args.alpha
    if args.hit_rate is not None:
        overrides["matching_fraction"] = args.hit_rate
    if args.runtime is not None:
        overrides["runtime"] = args.runtime
    return registry.scenario(args.scenario, **overrides)


def _build_scenario_session(args: argparse.Namespace, scenario) -> "NetworkSession":
    import dataclasses

    factory = lambda: scenario.apply_dynamics(scenario.builder()).build()  # noqa: E731
    if not args.cache_dir:
        return factory()
    from repro.store.cache import SessionCache

    key = dict(dataclasses.asdict(scenario))
    key["driver"] = "cli-run-scenario"
    with SessionCache(args.cache_dir) as cache:
        session, _warm = cache.get_or_build(key, factory)
    return session


def _session_report_table(
    session: "NetworkSession",
    name: str,
    query_count: int,
    expectation: str,
    parameters: Dict[str, object],
) -> ExperimentTable:
    """Run a session to its horizon, pose queries, and tabulate the outcome."""
    session.run_until()
    required = None
    if session.planned:
        fraction = session.content.matching_fraction  # type: ignore[union-attr]
        required = max(1, round(fraction * session.overlay.size))
    answers = session.query_batch(count=query_count, required_results=required)
    maintenance = session.maintenance_report()
    traffic = session.traffic()

    queries = len(answers)
    stale_fractions = [
        answer.staleness.worst_stale_fraction
        for answer in answers
        if answer.staleness is not None and answer.staleness.relevant_count
    ]
    horizon = session.horizon if session.horizon is not None else session.now
    table = ExperimentTable(
        name=name,
        columns=[
            "peers",
            "domains",
            "simulated_hours",
            "queries",
            "mean_results",
            "mean_query_messages",
            "mean_worst_stale_fraction",
            "push_messages",
            "reconciliations",
            "update_messages_per_node",
            "query_messages_total",
        ],
        expectation=expectation,
        parameters=parameters,
    )
    table.add_row(
        peers=session.overlay.size,
        domains=len(session.domains),
        simulated_hours=horizon / 3600.0,
        queries=queries,
        mean_results=(
            sum(a.results for a in answers) / queries if queries else 0.0
        ),
        mean_query_messages=(
            sum(a.query_messages for a in answers) / queries if queries else 0.0
        ),
        mean_worst_stale_fraction=(
            sum(stale_fractions) / len(stale_fractions) if stale_fractions else 0.0
        ),
        push_messages=maintenance.push_messages,
        reconciliations=maintenance.reconciliations,
        update_messages_per_node=maintenance.messages_per_node,
        query_messages_total=traffic.query.total_messages,
    )
    return table


def _observability_from_args(args: argparse.Namespace):
    """Build the run's instrumentation, or None when no artifact was asked for."""
    if not (args.metrics_out or args.trace_out):
        return None
    from repro.obs import Observability

    if args.trace_out:
        return Observability.with_jsonl(args.trace_out)
    return Observability.with_ring()


def _write_obs_artifacts(args: argparse.Namespace, obs) -> None:
    if obs is None:
        return
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(obs.metrics.render_prometheus())
        print(f"wrote metrics artifact to {args.metrics_out}", file=sys.stderr)
    if args.trace_out:
        print(f"wrote trace artifact to {args.trace_out}", file=sys.stderr)
    obs.close()


def _run_scenario_table(args: argparse.Namespace) -> ExperimentTable:
    scenario = _scenario_from_args(args)
    session = _build_scenario_session(args, scenario)
    obs = _observability_from_args(args)
    if obs is not None:
        session.install_observability(obs)
    table = _session_report_table(
        session,
        name=f"Scenario {args.scenario!r}",
        query_count=args.queries,
        expectation=default_registry().describe(args.scenario),
        parameters={
            "alpha": scenario.alpha,
            "hit_rate": scenario.matching_fraction,
            "seed": scenario.seed,
        },
    )
    if obs is not None:
        session.system.counter.to_metrics(obs.metrics)
        _write_obs_artifacts(args, obs)
    return table


def _save_session_table(args: argparse.Namespace) -> ExperimentTable:
    from repro.store import SnapshotStore, open_store
    from repro.store.checkpoint import CHECKPOINT_KIND

    # For save-session, --hours picks the *checkpoint time* inside the
    # scenario's own horizon (a mid-simulation snapshot), it does not shorten
    # the scenario: the remaining schedule is captured and load-session
    # continues it to the original horizon.
    scenario = _scenario_from_args(args, include_hours=False)
    session = scenario.apply_dynamics(scenario.builder()).build()
    if args.hours is not None:
        at = args.hours * 3600.0
        if session.horizon is not None:
            at = min(at, session.horizon)
        session.run_until(at)
    kind = "Delta checkpoint" if args.base else "Checkpoint"
    table = ExperimentTable(
        name=f"{kind} {args.name!r}",
        columns=["store", "checkpoint", "base", "peers", "domains", "at_hours", "bytes"],
        expectation="resume with: repro load-session --store "
        f"{args.store} --name {args.name}",
        parameters={"scenario": args.scenario, "seed": scenario.seed},
    )
    with open_store(args.store) as backend:
        session.checkpoint(backend, name=args.name, base=args.base)
        table.add_row(
            store=backend.location(),
            checkpoint=args.name,
            base=args.base or "-",
            peers=session.overlay.size,
            domains=len(session.domains),
            at_hours=session.now / 3600.0,
            bytes=backend.size_bytes(CHECKPOINT_KIND, args.name)
            + SnapshotStore(backend).size_bytes(),
        )
    return table


def _load_session_table(args: argparse.Namespace) -> ExperimentTable:
    from repro.store.checkpoint import restore_session

    session = restore_session(args.store, name=args.name, runtime=args.runtime)
    return _session_report_table(
        session,
        name=f"Restored session {args.name!r}",
        query_count=args.queries,
        expectation=f"session resumed from {args.store}",
        parameters={"store": args.store, "name": args.name},
    )


def _inspect_store_table(args: argparse.Namespace) -> ExperimentTable:
    from repro.store import CHECKPOINT_KIND, collect_garbage, open_store

    table = ExperimentTable(
        name=f"Store {args.store}",
        columns=["kind", "key", "bytes", "details"],
        expectation="checkpoints restore with load-session; snapshots are "
        "content-addressed summary hierarchies (shared across checkpoints); "
        "--gc reclaims snapshots nothing references",
    )
    with open_store(args.store) as backend:
        if args.compact:
            from repro.store import compact_checkpoints

            compacted = compact_checkpoints(backend)
            table.add_row(
                kind="compact",
                key="report",
                bytes=0,
                details=(
                    f"compacted {len(compacted)} delta checkpoint(s): "
                    + (", ".join(compacted) or "-")
                ),
            )
        if args.gc or args.gc_dry_run:
            report = collect_garbage(backend, dry_run=args.gc_dry_run)
            action = "would reclaim" if report.dry_run else "reclaimed"
            table.add_row(
                kind="gc",
                key="report",
                bytes=report.reclaimed_bytes,
                details=f"{action} {report.deleted_count} of {report.scanned} "
                f"snapshots ({report.live} live)",
            )
        for kind in backend.kinds():
            for key in backend.keys(kind):
                details = ""
                if kind == CHECKPOINT_KIND:
                    document = backend.get(kind, key)
                    base = document.get("base")
                    details = f"delta of {base}" if base else "full checkpoint"
                table.add_row(
                    kind=kind,
                    key=key,
                    bytes=backend.size_bytes(kind, key),
                    details=details,
                )
    return table


def _serve(args: argparse.Namespace) -> int:
    from repro.exceptions import ConfigurationError
    from repro.serve.server import SessionPool, SummaryQueryServer
    from repro.store.checkpoint import (
        open_readonly_session,
        open_readonly_session_pool,
    )

    if args.pool < 1:
        raise ConfigurationError(f"--pool needs at least 1 session, got {args.pool}")
    if args.workers < 1:
        raise ConfigurationError(
            f"--workers needs at least 1 process, got {args.workers}"
        )
    if args.workers > 1:
        return _serve_supervised(args)
    if args.pool > 1:
        pool = SessionPool(
            open_readonly_session_pool(args.store, args.pool, name=args.name)
        )
    else:
        pool = SessionPool([open_readonly_session(args.store, name=args.name)])
    session = pool.primary
    kwargs = {}
    if args.no_obs:
        kwargs["observability"] = None
    server = SummaryQueryServer(
        (args.host, args.port),
        pool,
        checkpoint_name=args.name,
        quiet=False,
        close_session_on_stop=True,
        **kwargs,
    )
    endpoints = "" if args.no_obs else "; metrics on /metrics, spans on /trace"
    pooled = f", pool of {pool.size}" if pool.size > 1 else ""
    print(
        f"serving checkpoint {args.name!r} from {args.store} on {server.url} "
        f"({session.overlay.size} peers, {len(session.domains)} domains{pooled}; "
        f"Ctrl-C or POST /shutdown to stop{endpoints})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        pool.close()
    return 0


def _serve_supervised(args: argparse.Namespace) -> int:
    from repro.serve.supervisor import Supervisor

    supervisor = Supervisor(
        args.store,
        name=args.name,
        workers=args.workers,
        host=args.host,
        port=args.port,
        deadline_ms=args.deadline_ms,
        max_inflight=args.max_inflight,
        cache_size=args.cache_size,
        quiet=False,
    )
    supervisor.start()
    print(
        f"supervising {args.workers} workers over checkpoint {args.name!r} "
        f"from {args.store} on {supervisor.url} "
        f"(deadline {args.deadline_ms:g}ms, max {args.max_inflight} in flight, "
        f"cache {args.cache_size}; Ctrl-C or POST /shutdown to stop; "
        f"fleet metrics on /metrics, liveness on /health)"
    )
    try:
        supervisor.join()
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.stop()
    return 0


def _fault_sweep_table(args: argparse.Namespace) -> ExperimentTable:
    obs = _observability_from_args(args)
    table = run_fault_sweep(
        intensities=_parse_alphas(args.intensities, [0.0, 0.05, 0.1, 0.2]),
        seed=args.seed,
        observability=obs,
    )
    _write_obs_artifacts(args, obs)
    return table


def _daemon_url(args: argparse.Namespace) -> str:
    return args.url or f"http://{args.host}:{args.port}"


def _metrics(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.obs.registry import parse_prometheus
    from repro.serve.client import ServeClient

    text = ServeClient(_daemon_url(args)).metrics()
    if args.json:
        print(json_module.dumps(parse_prometheus(text), indent=2, sort_keys=True))
    else:
        print(text, end="")
    return 0


def _trace(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.serve.client import ServeClient

    payload = ServeClient(_daemon_url(args)).trace(limit=args.limit)
    if args.json:
        print(json_module.dumps(payload, indent=2, sort_keys=True))
    else:
        spans = payload["spans"]
        print(f"{len(spans)} span(s) in ring, {payload['emitted']} emitted total")
        for span in spans:
            parent = f" parent={span['parent_id']}" if span.get("parent_id") else ""
            print(
                f"  {span['trace_id']} {span['span_id']}{parent} "
                f"{span['name']} sim={span['start_sim']:.3f}s "
                f"wall={span['end_wall'] - span['start_wall']:.6f}s "
                f"attrs={span['attrs']}"
            )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    takes_scenario = {"run-scenario", "save-session"}
    if args.command not in takes_scenario and args.scenario is not None:
        parser.error(
            f"unexpected argument {args.scenario!r}: only run-scenario and "
            "save-session take a scenario name"
        )
    if args.command in {"save-session", "load-session", "inspect-store", "serve"} and (
        not args.store
    ):
        parser.error(f"{args.command} requires --store PATH")
    if args.command == "serve":
        from repro.exceptions import ConfigurationError, StoreError

        try:
            return _serve(args)
        except (ConfigurationError, StoreError) as exc:
            parser.error(str(exc))
    if args.command in {"metrics", "trace"}:
        from repro.exceptions import ServeError

        try:
            return {"metrics": _metrics, "trace": _trace}[args.command](args)
        except ServeError as exc:
            parser.error(str(exc))
    if args.command == "list-scenarios":
        _emit([_list_scenarios_table()], args.json)
        return 0
    if args.command in {"run-scenario", "save-session", "load-session", "inspect-store"}:
        if args.command in takes_scenario and not args.scenario:
            parser.error(
                f"{args.command} requires a scenario name (see list-scenarios)"
            )
        from repro.exceptions import ConfigurationError, StoreError

        handlers = {
            "run-scenario": _run_scenario_table,
            "save-session": _save_session_table,
            "load-session": _load_session_table,
            "inspect-store": _inspect_store_table,
        }
        try:
            table = handlers[args.command](args)
        except (ConfigurationError, StoreError) as exc:
            parser.error(str(exc))
        _emit([table], args.json)
        return 0

    sizes = _parse_sizes(args.sizes, DEFAULT_SIZES)
    alphas = _parse_alphas(args.alphas, DEFAULT_ALPHAS)
    hours = args.hours if args.hours is not None else 6.0
    duration = hours * 3600.0
    args.seed = args.seed if args.seed is not None else 0
    cache = args.cache_dir or None

    commands: Dict[str, Callable[[], List[ExperimentTable]]] = {
        "tables": lambda: [run_table1_table2(), run_table3()],
        "fig4": lambda: [
            run_figure4(
                domain_sizes=sizes,
                alphas=alphas,
                duration_seconds=duration,
                seed=args.seed,
                cache=cache,
            )
        ],
        "fig5": lambda: [
            run_figure5(
                domain_sizes=sizes,
                duration_seconds=duration,
                seed=args.seed,
                cache=cache,
            )
        ],
        "fig6": lambda: [
            run_figure6(
                domain_sizes=sizes,
                duration_seconds=duration,
                seed=args.seed,
                cache=cache,
            )
        ],
        "fig7": lambda: [
            run_figure7(
                network_sizes=sizes,
                queries_per_size=args.queries,
                seed=args.seed,
                cache=cache,
            )
        ],
        "fault-sweep": lambda: [_fault_sweep_table(args)],
    }

    if args.command == "all":
        tables: List[ExperimentTable] = []
        for name in ("tables", "fig4", "fig5", "fig6", "fig7", "fault-sweep"):
            tables.extend(commands[name]())
    else:
        tables = commands[args.command]()

    _emit(tables, args.json)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
