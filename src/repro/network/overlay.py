"""The hybrid (superpeer) overlay.

An :class:`Overlay` couples a generated topology graph with per-node state
(:class:`~repro.network.peer.PeerNode`).  It answers the structural questions
the protocols ask — neighbours, latencies, TTL-bounded broadcast reach — and
implements the *selective walk* used to discover a summary peer: a random walk
that always forwards to the highest-degree neighbour (Adamic et al. 2001, as
cited by the paper).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.exceptions import NetworkError
from repro.network.peer import PeerNode, PeerRole
from repro.network.topology import TopologyConfig, power_law_topology


class Overlay:
    """A topology graph plus the per-node protocol-visible state."""

    def __init__(self, graph: nx.Graph, rng: Optional[random.Random] = None) -> None:
        if graph.number_of_nodes() == 0:
            raise NetworkError("cannot build an overlay over an empty graph")
        self._graph = graph
        self._peers: Dict[str, PeerNode] = {
            node: PeerNode(peer_id=node) for node in graph.nodes
        }
        # Incrementally tracked set of online peer ids.  Maintained by a
        # status listener on every node (join/leave/churn/restore all funnel
        # through ``PeerNode.online``), so per-query "who is reachable"
        # questions stop scanning the whole population.  Like the latency
        # cache it is derived state: checkpoints persist the per-peer flags
        # and the set re-derives itself on restore.
        self._online_ids: Set[str] = set()
        # Bumped on every structural or online-status change; caches derived
        # from the overlay (e.g. per-peer extra-domain neighbour counts for
        # flooding-cost accounting) key their entries on it to invalidate
        # without listeners of their own.
        self._version = 0
        for peer in self._peers.values():
            peer.bind_status_listener(self._track_status)
        # The overlay's own tie-breaking RNG: selective walks invoked without
        # an explicit rng draw from this shared, advancing stream instead of a
        # fresh Random(0) per call (which replayed identical tie-breaks and
        # biased repeated walks on regular graphs).
        self._rng = rng if rng is not None else random.Random(0)
        # Latency queries to a same destination (typically a summary peer) are
        # frequent; cache single-source shortest-path distances per destination.
        self._latency_cache: Dict[str, Dict[str, float]] = {}

    # -- construction helpers ------------------------------------------------------

    @classmethod
    def generate(cls, config: TopologyConfig) -> "Overlay":
        return cls(power_law_topology(config))

    # -- accessors -----------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    @property
    def rng(self) -> random.Random:
        """The overlay's default tie-breaking RNG (checkpointed with sessions)."""
        return self._rng

    @property
    def peer_ids(self) -> List[str]:
        return list(self._peers)

    @property
    def size(self) -> int:
        return len(self._peers)

    def peer(self, peer_id: str) -> PeerNode:
        try:
            return self._peers[peer_id]
        except KeyError as exc:
            raise NetworkError(f"unknown peer {peer_id!r}") from exc

    def peers(self) -> List[PeerNode]:
        return list(self._peers.values())

    def _track_status(self, peer_id: str, online: bool) -> None:
        self._version += 1
        if online:
            self._online_ids.add(peer_id)
        else:
            self._online_ids.discard(peer_id)

    @property
    def version(self) -> int:
        """Monotonic counter bumped on any membership or status change."""
        return self._version

    @property
    def online_ids(self) -> Set[str]:
        """The ids of the currently online peers, tracked incrementally.

        This is the live set (O(1) to obtain, updated by join/leave/churn
        events as they happen) — treat it as read-only and do not hold it
        across simulation events; copy it if you need a stable snapshot.
        """
        return self._online_ids

    def online_peers(self) -> List[PeerNode]:
        return [peer for peer in self._peers.values() if peer.online]

    def superpeers(self) -> List[PeerNode]:
        return [peer for peer in self._peers.values() if peer.is_superpeer]

    def neighbors(self, peer_id: str, online_only: bool = True) -> List[str]:
        if peer_id not in self._graph:
            raise NetworkError(f"unknown peer {peer_id!r}")
        neighbours = list(self._graph.neighbors(peer_id))
        if online_only:
            neighbours = [n for n in neighbours if self._peers[n].online]
        return neighbours

    def degree(self, peer_id: str) -> int:
        return int(self._graph.degree(peer_id))

    def latency(self, source: str, destination: str) -> float:
        """End-to-end latency along the cheapest path between two peers."""
        if source == destination:
            return 0.0
        if self._graph.has_edge(source, destination):
            return float(self._graph.edges[source, destination]["latency"])
        distances = self._latency_cache.get(destination)
        if distances is None:
            distances = dict(
                nx.single_source_dijkstra_path_length(
                    self._graph, destination, weight="latency"
                )
            )
            self._latency_cache[destination] = distances
        if source not in distances:
            raise NetworkError(f"no path between {source!r} and {destination!r}")
        return float(distances[source])

    def average_degree(self) -> float:
        degrees = [degree for _node, degree in self._graph.degree()]
        return sum(degrees) / len(degrees)

    # -- superpeer election ----------------------------------------------------------

    def elect_superpeers(
        self,
        count: Optional[int] = None,
        fraction: Optional[float] = None,
    ) -> List[str]:
        """Promote the highest-degree nodes to superpeers.

        Exactly one of ``count`` / ``fraction`` may be given; the default is a
        1/16 fraction (so a 16-node network has a single domain, matching the
        smallest configuration of Table 3).
        """
        if count is not None and fraction is not None:
            raise NetworkError("give either count or fraction, not both")
        if count is None:
            fraction = fraction if fraction is not None else 1.0 / 16.0
            count = max(1, round(fraction * self.size))
        count = min(count, self.size)
        ranked = sorted(self._graph.degree, key=lambda pair: pair[1], reverse=True)
        elected = [node for node, _degree in ranked[:count]]
        for peer in self._peers.values():
            peer.role = PeerRole.SUPERPEER if peer.peer_id in elected else PeerRole.PEER
        return elected

    # -- reachability ------------------------------------------------------------------

    def within_ttl(self, origin: str, ttl: int, online_only: bool = True) -> Dict[str, int]:
        """Peers reachable from ``origin`` in at most ``ttl`` hops (excluding origin).

        Returns a mapping ``peer_id -> hop count``; used both by the `sumpeer`
        broadcast of the construction protocol and by the flooding baseline.
        """
        if ttl < 0:
            raise NetworkError("TTL must be non-negative")
        reached: Dict[str, int] = {origin: 0}
        frontier = [origin]
        for hop in range(1, ttl + 1):
            next_frontier: List[str] = []
            for node in frontier:
                for neighbour in self.neighbors(node, online_only=online_only):
                    if neighbour not in reached:
                        reached[neighbour] = hop
                        next_frontier.append(neighbour)
            frontier = next_frontier
            if not frontier:
                break
        reached.pop(origin, None)
        return reached

    def flood_message_count(self, origin: str, ttl: int, online_only: bool = True) -> int:
        """Number of query messages generated by a TTL-bounded flood from ``origin``.

        Every reached node forwards the message to all of its neighbours except
        the one it received it from (Gnutella-style), until the TTL runs out.
        """
        if ttl <= 0:
            return 0
        messages = 0
        visited: Set[str] = {origin}
        frontier: List[Tuple[str, Optional[str]]] = [(origin, None)]
        for _hop in range(ttl):
            next_frontier: List[Tuple[str, Optional[str]]] = []
            for node, received_from in frontier:
                for neighbour in self.neighbors(node, online_only=online_only):
                    if neighbour == received_from:
                        continue
                    messages += 1
                    if neighbour not in visited:
                        visited.add(neighbour)
                        next_frontier.append((neighbour, node))
            frontier = next_frontier
            if not frontier:
                break
        return messages

    # -- selective walk -----------------------------------------------------------------

    def selective_walk(
        self,
        origin: str,
        stop_condition: Callable[[str], bool],
        max_hops: int = 64,
        rng: Optional[random.Random] = None,
    ) -> Tuple[Optional[str], int]:
        """Walk the overlay, always choosing the highest-degree unvisited neighbour.

        Stops when ``stop_condition(peer_id)`` holds (returning that peer and
        the number of hops walked) or when ``max_hops`` is exhausted (returning
        ``(None, hops)``).  Ties on degree are broken at random to avoid
        pathological loops on regular graphs; without an explicit ``rng`` the
        overlay's own advancing RNG is used, so repeated default walks from
        the same origin explore different tie-breaks instead of replaying one.
        """
        rng = rng if rng is not None else self._rng
        if stop_condition(origin):
            return origin, 0
        visited: Set[str] = {origin}
        current = origin
        for hop in range(1, max_hops + 1):
            candidates = [
                neighbour
                for neighbour in self.neighbors(current)
                if neighbour not in visited
            ]
            if not candidates:
                candidates = self.neighbors(current)
                if not candidates:
                    return None, hop
            best_degree = max(self.degree(candidate) for candidate in candidates)
            best = [c for c in candidates if self.degree(c) == best_degree]
            current = rng.choice(best)
            visited.add(current)
            if stop_condition(current):
                return current, hop
        return None, max_hops

    # -- membership changes ----------------------------------------------------------------

    def add_peer(
        self,
        peer_id: str,
        neighbors: Iterable[str],
        latency_ms: float = 50.0,
    ) -> PeerNode:
        """Add a brand-new node connected to ``neighbors``."""
        if peer_id in self._peers:
            raise NetworkError(f"peer {peer_id!r} already exists")
        self._version += 1
        self._latency_cache.clear()
        self._graph.add_node(peer_id)
        for neighbour in neighbors:
            if neighbour not in self._graph:
                raise NetworkError(f"unknown neighbour {neighbour!r}")
            self._graph.add_edge(peer_id, neighbour, latency=latency_ms)
        node = PeerNode(peer_id=peer_id)
        self._peers[peer_id] = node
        node.bind_status_listener(self._track_status)
        return node

    def remove_peer(self, peer_id: str) -> None:
        """Remove a node entirely (used to model permanent departures)."""
        self.peer(peer_id).bind_status_listener(None)  # raises on unknown peer
        self._version += 1
        self._online_ids.discard(peer_id)
        self._latency_cache.clear()
        self._graph.remove_node(peer_id)
        del self._peers[peer_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Overlay({self.size} peers, avg degree {self.average_degree():.2f})"
