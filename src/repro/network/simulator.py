"""A deterministic discrete-event simulator (SimJava substitute).

The simulator maintains a priority queue of timestamped events.  Each event
carries a callback; running the simulation pops events in chronological order
(ties broken by insertion order, which keeps runs fully deterministic) and
invokes their callbacks, which may schedule further events.

The protocol engine layers message passing on top: ``send`` schedules a
delivery event after the link latency, and the receiving peer's handler runs
at delivery time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.exceptions import NetworkError

EventCallback = Callable[[], None]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: time, then insertion sequence.

    ``spec`` is an optional declarative description of the event (plain
    JSON-compatible payload).  Callbacks are closures and cannot be
    persisted; an event carrying a spec can instead be re-created from it
    after a checkpoint/restore cycle (see :mod:`repro.store.checkpoint`).
    """

    time: float
    sequence: int
    callback: EventCallback = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)
    spec: Optional[Dict[str, object]] = field(default=None, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running when the event is popped."""
        self.cancelled = True


class Simulator:
    """Event queue + virtual clock."""

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._next_sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current virtual time (seconds)."""
        return self._now

    @property
    def processed_events(self) -> int:
        return self._processed

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        label: str = "",
        spec: Optional[Dict[str, object]] = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise NetworkError(f"cannot schedule an event in the past (delay={delay})")
        event = Event(
            time=self._now + delay,
            sequence=self._next_sequence,
            callback=callback,
            label=label,
            spec=spec,
        )
        self._next_sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        label: str = "",
        spec: Optional[Dict[str, object]] = None,
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        if time < self._now:
            raise NetworkError(
                f"cannot schedule at {time} which is before now ({self._now})"
            )
        return self.schedule(time - self._now, callback, label=label, spec=spec)

    # -- checkpoint/restore hooks (used by repro.store.checkpoint) ---------------

    @property
    def next_sequence(self) -> int:
        """The sequence number the next scheduled event will receive."""
        return self._next_sequence

    def pending(self) -> List[Event]:
        """Non-cancelled pending events in firing order (time, then sequence)."""
        return sorted(event for event in self._queue if not event.cancelled)

    def load_state(self, now: float, processed: int, next_sequence: int) -> None:
        """Reset the simulator to a checkpointed clock (queue emptied).

        Pending events are re-created afterwards with :meth:`restore_event`;
        new events then continue from ``next_sequence``, so tie-breaking on
        equal timestamps matches the uninterrupted run exactly.
        """
        if now < 0 or processed < 0 or next_sequence < 0:
            raise NetworkError("checkpointed simulator state must be non-negative")
        self._queue.clear()
        self._now = now
        self._processed = processed
        self._next_sequence = next_sequence

    def restore_event(
        self,
        time: float,
        sequence: int,
        callback: EventCallback,
        label: str = "",
        spec: Optional[Dict[str, object]] = None,
    ) -> Event:
        """Re-insert a checkpointed event with its original sequence number."""
        if time < self._now:
            raise NetworkError(
                f"cannot restore an event at {time} before now ({self._now})"
            )
        event = Event(
            time=time, sequence=sequence, callback=callback, label=label, spec=spec
        )
        heapq.heappush(self._queue, event)
        return event

    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback()
            self._processed += 1
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` is reached, or the budget ends.

        Returns the number of events processed by this call.
        """
        processed = 0
        while self._queue:
            if max_events is not None and processed >= max_events:
                break
            next_event = self._peek()
            if next_event is None:
                break
            if until is not None and next_event.time > until:
                self._now = until
                break
            if not self.step():
                break
            processed += 1
        if until is not None and not self._queue and self._now < until:
            self._now = until
        return processed

    def _peek(self) -> Optional[Event]:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0] if self._queue else None

    # -- queue inspection (used by repro.runtime backends) ------------------------

    def peek(self) -> Optional[Event]:
        """The next non-cancelled event, without popping it (None when empty)."""
        return self._peek()

    def due(self, until: float) -> List[Event]:
        """Non-cancelled events with ``time <= until``, in firing order.

        A read-only window snapshot: nothing is popped, so running the queue
        afterwards processes exactly the same events in exactly the same
        order.  Execution backends use this to know which deliveries fall in
        the next drain window before draining it.
        """
        return sorted(
            event
            for event in self._queue
            if not event.cancelled and event.time <= until
        )

    def advance_to(self, time: float) -> None:
        """Move the clock forward to ``time`` without running any event.

        Refuses to travel back in time or to skip over a pending event; this
        is the tail advance ``run(until=...)`` performs when the queue drains
        (or the next event lies beyond the horizon), exposed so execution
        backends can finish a windowed drain with the same clock semantics.
        """
        if time < self._now:
            raise NetworkError(
                f"cannot advance the clock to {time} before now ({self._now})"
            )
        head = self._peek()
        if head is not None and head.time < time:
            raise NetworkError(
                f"cannot advance the clock to {time} past the pending event "
                f"at {head.time}"
            )
        self._now = time

    def reset(self) -> None:
        """Drop every pending event and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._processed = 0
