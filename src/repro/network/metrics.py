"""Traffic accounting: the evaluation's primary metric is message counts."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

from repro.network.messages import Message, MessageType


class MessageCounter:
    """Counts messages by type (and optionally by sender)."""

    def __init__(self) -> None:
        self._by_type: Counter = Counter()
        self._by_sender: Counter = Counter()
        self._bytes = 0
        # Fault-layer accounting (PRs past the benign-churn era): how many
        # messages never arrived, arrived twice, or had to be retransmitted.
        self._dropped: Counter = Counter()
        self._duplicates = 0
        self._retries = 0

    def record(self, message: Message) -> None:
        self._by_type[message.type] += 1
        self._by_sender[message.source] += 1
        self._bytes += message.size_bytes

    def record_type(self, message_type: MessageType, count: int = 1) -> None:
        """Account for messages without materialising :class:`Message` objects."""
        self._by_type[message_type] += count

    def record_dropped(self, reason: str = "", count: int = 1) -> None:
        """Account for messages that were sent but never delivered."""
        self._dropped[reason or "unspecified"] += count

    def record_duplicate(self, count: int = 1) -> None:
        """Account for fault-injected duplicate deliveries."""
        self._duplicates += count

    def record_retry(self, count: int = 1) -> None:
        """Account for retransmissions (each is also counted by its type)."""
        self._retries += count

    def count(self, message_type: Optional[MessageType] = None) -> int:
        if message_type is None:
            return sum(self._by_type.values())
        return self._by_type[message_type]

    def count_types(self, message_types: Iterable[MessageType]) -> int:
        return sum(self._by_type[mt] for mt in message_types)

    def by_type(self) -> Dict[MessageType, int]:
        return dict(self._by_type)

    def by_sender(self) -> Dict[str, int]:
        return dict(self._by_sender)

    @property
    def total(self) -> int:
        return sum(self._by_type.values())

    @property
    def total_bytes(self) -> int:
        return self._bytes

    @property
    def dropped_total(self) -> int:
        return sum(self._dropped.values())

    @property
    def duplicate_total(self) -> int:
        return self._duplicates

    @property
    def retry_total(self) -> int:
        return self._retries

    def dropped_by_reason(self) -> Dict[str, int]:
        return dict(self._dropped)

    def merge(self, other: "MessageCounter") -> None:
        self._by_type.update(other._by_type)
        self._by_sender.update(other._by_sender)
        self._bytes += other._bytes
        self._dropped.update(other._dropped)
        self._duplicates += other._duplicates
        self._retries += other._retries

    def reset(self) -> None:
        self._by_type.clear()
        self._by_sender.clear()
        self._bytes = 0
        self._dropped.clear()
        self._duplicates = 0
        self._retries = 0

    def to_metrics(self, registry, prefix: str = "repro_messages") -> None:
        """Bridge the current totals into a :class:`repro.obs.MetricsRegistry`.

        Adds this counter's totals to the registry's series — per-type counts
        under ``<prefix>_total{type=...}``, then bytes, drops (by reason),
        duplicates and retries.  Bridge once per counter lifetime (or after a
        :meth:`reset`): the registry accumulates.  Reading the counter this
        way mutates nothing here — :meth:`state_payload` is unchanged.
        """
        for message_type in sorted(self._by_type, key=lambda mt: mt.value):
            registry.inc(
                f"{prefix}_total",
                self._by_type[message_type],
                type=message_type.value,
            )
        if self._bytes:
            registry.inc(f"{prefix}_bytes_total", self._bytes)
        for reason in sorted(self._dropped):
            registry.inc(
                f"{prefix}_dropped_total", self._dropped[reason], reason=reason
            )
        if self._duplicates:
            registry.inc(f"{prefix}_duplicates_total", self._duplicates)
        if self._retries:
            registry.inc(f"{prefix}_retries_total", self._retries)

    # -- checkpoint state ---------------------------------------------------------

    def state_payload(self) -> Dict[str, object]:
        """JSON-compatible snapshot (message types keyed by their value).

        The fault-layer keys are included only when non-zero, so zero-fault
        payloads stay byte-identical to those of earlier checkpoints.
        """
        payload: Dict[str, object] = {
            "by_type": {mt.value: count for mt, count in self._by_type.items()},
            "by_sender": dict(self._by_sender),
            "bytes": self._bytes,
        }
        if self._dropped:
            payload["dropped"] = dict(self._dropped)
        if self._duplicates:
            payload["duplicates"] = self._duplicates
        if self._retries:
            payload["retries"] = self._retries
        return payload

    @classmethod
    def from_state(cls, payload: Mapping[str, object]) -> "MessageCounter":
        counter = cls()
        for value, count in payload.get("by_type", {}).items():  # type: ignore[union-attr]
            counter._by_type[MessageType(value)] = int(count)
        for sender, count in payload.get("by_sender", {}).items():  # type: ignore[union-attr]
            counter._by_sender[sender] = int(count)
        counter._bytes = int(payload.get("bytes", 0))  # type: ignore[arg-type]
        for reason, count in payload.get("dropped", {}).items():  # type: ignore[union-attr]
            counter._dropped[reason] = int(count)
        counter._duplicates = int(payload.get("duplicates", 0))  # type: ignore[arg-type]
        counter._retries = int(payload.get("retries", 0))  # type: ignore[arg-type]
        return counter


@dataclass
class TrafficReport:
    """A summary of traffic over a simulation window, normalised per node/second."""

    total_messages: int
    duration_seconds: float
    peer_count: int
    by_type: Mapping[MessageType, int] = field(default_factory=dict)

    @property
    def messages_per_node(self) -> float:
        if self.peer_count == 0:
            return 0.0
        return self.total_messages / self.peer_count

    @property
    def messages_per_node_per_second(self) -> float:
        """The unit of the paper's update-cost equation (eq. 1)."""
        if self.peer_count == 0 or self.duration_seconds <= 0:
            return 0.0
        return self.total_messages / (self.peer_count * self.duration_seconds)

    @classmethod
    def from_counter(
        cls,
        counter: MessageCounter,
        duration_seconds: float,
        peer_count: int,
        message_types: Optional[List[MessageType]] = None,
    ) -> "TrafficReport":
        if message_types is None:
            total = counter.total
            by_type = counter.by_type()
        else:
            total = counter.count_types(message_types)
            by_type = {mt: counter.count(mt) for mt in message_types}
        return cls(
            total_messages=total,
            duration_seconds=duration_seconds,
            peer_count=peer_count,
            by_type=by_type,
        )
