"""Latency-aware message transport on top of the discrete-event simulator.

The protocol engine accounts for messages analytically (the paper's metric is
a message *count*), but examples and finer-grained experiments sometimes want
actual message delivery with per-link latency — e.g. to measure query response
times rather than message counts.  :class:`MessageBus` provides that: peers
register handlers per message type, ``send`` schedules a delivery event after
the (shortest-path) latency between the two peers, and every transmission is
recorded in a :class:`~repro.network.metrics.MessageCounter`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

from repro.exceptions import NetworkError
from repro.network.faults import ExpiringSet, FaultInjector
from repro.network.messages import Message, MessageType
from repro.network.metrics import MessageCounter
from repro.network.overlay import Overlay
from repro.network.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime import ExecutionBackend

MessageHandler = Callable[[Message, float], None]


@dataclass
class DeliveryRecord:
    """One delivered (or dropped) message, for post-hoc inspection."""

    message: Message
    sent_at: float
    delivered_at: Optional[float]
    dropped: bool = False
    reason: str = ""


class MessageBus:
    """Delivers messages between peers through the simulator."""

    def __init__(
        self,
        overlay: Overlay,
        simulator: Optional[Simulator] = None,
        counter: Optional[MessageCounter] = None,
        default_latency_ms: float = 50.0,
        faults: Optional[FaultInjector] = None,
        duplicate_ttl_seconds: float = 30.0,
        runtime: Optional["ExecutionBackend"] = None,
    ) -> None:
        if runtime is not None and simulator is not None and runtime.clock is not simulator:
            raise NetworkError(
                "pass either a runtime or a simulator to MessageBus, not two "
                "disagreeing clocks"
            )
        self._overlay = overlay
        # A runtime-backed bus schedules deliveries through the execution
        # backend (which tags them with the receiving peer, so concurrent
        # backends can fan them out per-mailbox); a bare bus keeps scheduling
        # straight onto its simulator, exactly as before.
        self._runtime = runtime
        if runtime is not None:
            self._simulator = runtime.clock
        else:
            self._simulator = simulator if simulator is not None else Simulator()
        self._counter = counter if counter is not None else MessageCounter()
        self._default_latency_ms = default_latency_ms
        self._handlers: Dict[Tuple[str, MessageType], MessageHandler] = {}
        self._catch_all: Dict[str, MessageHandler] = {}
        self._log: List[DeliveryRecord] = []
        self._faults = faults
        # Receiver-side duplicate suppression: fault-injected duplicates (and
        # retransmissions of an already-delivered message) are delivered at
        # most once per (destination, message_id) within the TTL window.  Only
        # consulted while faults are installed, so the zero-fault bus behaves
        # exactly as before.
        self._seen = ExpiringSet(ttl_seconds=duplicate_ttl_seconds)
        #: Metrics+trace hook; None keeps every send on the uninstrumented path.
        self.observability = None

    # -- accessors -----------------------------------------------------------------

    @property
    def simulator(self) -> Simulator:
        return self._simulator

    @property
    def runtime(self) -> Optional["ExecutionBackend"]:
        """The execution backend deliveries are scheduled through, if any."""
        return self._runtime

    @property
    def counter(self) -> MessageCounter:
        return self._counter

    @property
    def deliveries(self) -> List[DeliveryRecord]:
        return list(self._log)

    @property
    def faults(self) -> Optional[FaultInjector]:
        return self._faults

    def install_faults(self, injector: Optional[FaultInjector]) -> None:
        """Attach (or detach, with ``None``) a fault injector to every link."""
        self._faults = injector

    def delivered_count(self) -> int:
        return sum(1 for record in self._log if not record.dropped)

    def dropped_count(self) -> int:
        return sum(1 for record in self._log if record.dropped)

    # -- handler registration ---------------------------------------------------------

    def register(
        self,
        peer_id: str,
        handler: MessageHandler,
        message_type: Optional[MessageType] = None,
    ) -> None:
        """Register a handler for one peer (optionally for one message type only)."""
        if peer_id not in self._overlay.graph:
            raise NetworkError(f"cannot register handler for unknown peer {peer_id!r}")
        if message_type is None:
            self._catch_all[peer_id] = handler
        else:
            self._handlers[(peer_id, message_type)] = handler

    def unregister(self, peer_id: str) -> None:
        self._catch_all.pop(peer_id, None)
        for key in [key for key in self._handlers if key[0] == peer_id]:
            del self._handlers[key]

    # -- sending -----------------------------------------------------------------------

    def send(self, message: Message, latency_ms: Optional[float] = None) -> DeliveryRecord:
        """Send ``message``; it is delivered after the link latency.

        Messages to offline peers are counted (they were transmitted) but
        dropped at delivery time, mirroring how a partner discovers that its
        summary peer failed only when a push or query goes unanswered.
        """
        sent_at = self._simulator.now
        self._counter.record(message)
        if self.observability is not None:
            self.observability.inc("repro_bus_sends_total", type=message.type.value)
        if latency_ms is None:
            latency_ms = self._latency(message.source, message.destination)
        record = DeliveryRecord(message=message, sent_at=sent_at, delivered_at=None)
        self._log.append(record)

        faults = self._faults
        if faults is not None:
            if not faults.reachable(message.source, message.destination):
                # Partition cuts are deterministic: no randomness consumed.
                self._drop(record, "partitioned", fault=True)
                return record
            if faults.lossy and faults.draw_loss():
                self._drop(record, "message loss", fault=True)
                return record
            if faults.jittery:
                latency_ms += faults.draw_jitter_ms()
            if faults.duplicating and faults.draw_duplicate():
                dup_record = DeliveryRecord(
                    message=message, sent_at=sent_at, delivered_at=None
                )
                self._log.append(dup_record)
                self._counter.record_duplicate()
                faults.stats.messages_duplicated += 1
                # The copy trails the original by at least the link latency, so
                # the original wins the duplicate-suppression race.
                self._schedule_delivery(
                    message, dup_record, latency_ms + max(latency_ms, 1.0)
                )
        self._schedule_delivery(message, record, latency_ms)
        return record

    def send_with_retry(
        self,
        message: Message,
        max_retries: int = 3,
        backoff_seconds: float = 0.2,
        backoff_factor: float = 2.0,
    ) -> DeliveryRecord:
        """Send ``message``, retransmitting on fault-injected send failures.

        A transmission the fault injector kills at send time (link loss or a
        partition cut) is retried up to ``max_retries`` times with exponential
        backoff; each wait is folded into the retransmission's delivery delay,
        so the schedule never reorders.  Retransmissions reuse the original
        ``message_id`` — if several copies get through, receiver-side duplicate
        suppression delivers only the first.  Returns the last attempt's
        record; without faults installed this is exactly :meth:`send`.
        """
        record = self.send(message)
        if self._faults is None:
            return record
        delay = backoff_seconds
        retries = 0
        while (
            record.dropped
            and record.reason in ("partitioned", "message loss")
            and retries < max_retries
        ):
            retries += 1
            self._counter.record_retry()
            self._faults.stats.retries += 1
            self._faults.stats.backoff_seconds += delay
            if self.observability is not None:
                self.observability.inc(
                    "repro_bus_retries_total", type=message.type.value
                )
            latency = self._latency(message.source, message.destination) + delay * 1000.0
            record = self.send(message, latency_ms=latency)
            delay *= backoff_factor
        return record

    def broadcast(
        self,
        source: str,
        message_type: MessageType,
        payload: Optional[dict] = None,
        ttl: int = 1,
    ) -> int:
        """TTL-bounded neighbour broadcast (the ``sumpeer`` pattern).

        Returns the number of messages sent.  Every reached peer forwards the
        message to all its neighbours except the sender until the TTL expires.
        """
        if ttl < 1:
            raise NetworkError("broadcast TTL must be at least 1")
        sent = 0
        visited = {source}
        frontier: List[Tuple[str, Optional[str]]] = [(source, None)]
        for remaining in range(ttl, 0, -1):
            next_frontier: List[Tuple[str, Optional[str]]] = []
            for node, received_from in frontier:
                for neighbour in self._overlay.neighbors(node):
                    if neighbour == received_from:
                        continue
                    self.send(
                        Message(
                            type=message_type,
                            source=node,
                            destination=neighbour,
                            payload=dict(payload or {}),
                            ttl=remaining - 1,
                        )
                    )
                    sent += 1
                    if neighbour not in visited:
                        visited.add(neighbour)
                        next_frontier.append((neighbour, node))
            frontier = next_frontier
            if not frontier:
                break
        return sent

    def run(self, until: Optional[float] = None) -> int:
        """Advance the simulation until pending deliveries are processed."""
        if self._runtime is not None:
            return self._runtime.run(until=until)
        return self._simulator.run(until=until)

    # -- helpers -------------------------------------------------------------------------

    def _schedule_delivery(
        self, message: Message, record: DeliveryRecord, latency_ms: float
    ) -> None:
        def deliver() -> None:
            destination = self._overlay.peer(message.destination)
            if not destination.online:
                self._drop(record, "destination offline")
                return
            if self._faults is not None:
                key = (message.destination, message.message_id)
                if not self._seen.add_if_new(key, self._simulator.now):
                    self._drop(record, "duplicate suppressed")
                    return
            record.delivered_at = self._simulator.now
            handler = self._handlers.get((message.destination, message.type))
            if handler is None:
                handler = self._catch_all.get(message.destination)
            if handler is None:
                self._drop(record, "no handler")
                return
            handler(message, self._simulator.now)

        if self._runtime is not None:
            # The backend owns delivery scheduling: the actor tag names the
            # receiving peer's mailbox.  The bus keeps its own receiver-side
            # duplicate suppression (above), so no dedup_key is passed —
            # suppressed duplicates must still be counted as drops.
            self._runtime.deliver(
                latency_ms / 1000.0,
                deliver,
                label=message.type.value,
                actor=message.destination,
            )
        else:
            self._simulator.schedule(
                latency_ms / 1000.0, deliver, label=message.type.value
            )

    def _drop(self, record: DeliveryRecord, reason: str, fault: bool = False) -> None:
        record.dropped = True
        record.reason = reason
        self._counter.record_dropped(reason)
        if self.observability is not None:
            self.observability.inc("repro_bus_dropped_total", reason=reason)
            if fault:
                self.observability.inc("repro_fault_dropped_total", reason=reason)
        if fault and self._faults is not None:
            self._faults.stats.messages_dropped += 1

    def _latency(self, source: str, destination: str) -> float:
        try:
            return self._overlay.latency(source, destination)
        except NetworkError:
            return self._default_latency_ms
