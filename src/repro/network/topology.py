"""Power-law overlay topology generation (BRITE substitute).

The paper simulates "a power law P2P network, with an average degree of 4"
generated with BRITE.  Here topologies are generated with either

* Barabási–Albert preferential attachment (``m = 2`` gives an average degree
  close to 4 and a power-law degree distribution), or
* a Waxman random graph (BRITE's other flat router model),

both returned as :mod:`networkx` graphs with per-edge latencies.  A helper
verifies the small-world/power-law characteristics the paper relies on
(group-locality arguments in Section 5.2.2).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.exceptions import NetworkError


@dataclass(frozen=True)
class TopologyConfig:
    """Parameters of the generated overlay.

    Attributes
    ----------
    peer_count:
        Number of nodes (the paper sweeps 16–5000).
    average_degree:
        Target average degree (the paper uses ~4; flooding assumes 3.5).
    model:
        ``"barabasi_albert"`` or ``"waxman"``.
    latency_range_ms:
        Uniform range for per-edge latency in milliseconds.
    seed:
        Seed for reproducible generation.
    """

    peer_count: int
    average_degree: float = 4.0
    model: str = "barabasi_albert"
    latency_range_ms: Tuple[float, float] = (10.0, 150.0)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.peer_count < 2:
            raise NetworkError("a topology needs at least two peers")
        if self.average_degree < 1.0:
            raise NetworkError("average degree must be at least 1")
        if self.model not in {"barabasi_albert", "waxman"}:
            raise NetworkError(f"unknown topology model {self.model!r}")


def power_law_topology(config: TopologyConfig) -> nx.Graph:
    """Generate a connected overlay graph following ``config``.

    Nodes are labelled ``"p0" ... "p{n-1}"``; every edge carries a ``latency``
    attribute in milliseconds.
    """
    rng = random.Random(config.seed)
    if config.model == "barabasi_albert":
        graph = _barabasi_albert(config, rng)
    else:
        graph = _waxman(config, rng)

    _ensure_connected(graph, rng)
    _assign_latencies(graph, config.latency_range_ms, rng)
    return nx.relabel_nodes(graph, {node: f"p{node}" for node in graph.nodes})


def _barabasi_albert(config: TopologyConfig, rng: random.Random) -> nx.Graph:
    # Each new node attaches with m edges; the average degree converges to 2m.
    attachments = max(1, round(config.average_degree / 2))
    attachments = min(attachments, config.peer_count - 1)
    return nx.barabasi_albert_graph(
        config.peer_count, attachments, seed=rng.randint(0, 2**31 - 1)
    )


def _waxman(config: TopologyConfig, rng: random.Random) -> nx.Graph:
    # Calibrate alpha so the expected degree roughly matches the target; beta
    # fixed at 0.4 (a common BRITE default). The expected number of edges of a
    # Waxman graph is hard to pin analytically, so generate and thin/densify.
    graph = nx.waxman_graph(
        config.peer_count,
        beta=0.4,
        alpha=0.25,
        seed=rng.randint(0, 2**31 - 1),
    )
    target_edges = round(config.peer_count * config.average_degree / 2)
    edges = list(graph.edges)
    rng.shuffle(edges)
    if len(edges) > target_edges:
        for edge in edges[target_edges:]:
            graph.remove_edge(*edge)
    else:
        nodes = list(graph.nodes)
        while graph.number_of_edges() < target_edges:
            u, v = rng.sample(nodes, 2)
            graph.add_edge(u, v)
    return graph


def _ensure_connected(graph: nx.Graph, rng: random.Random) -> None:
    """Connect stray components by linking them to the giant component."""
    components = sorted(nx.connected_components(graph), key=len, reverse=True)
    if len(components) <= 1:
        return
    giant = list(components[0])
    for component in components[1:]:
        source = rng.choice(list(component))
        destination = rng.choice(giant)
        graph.add_edge(source, destination)


def _assign_latencies(
    graph: nx.Graph, latency_range_ms: Tuple[float, float], rng: random.Random
) -> None:
    low, high = latency_range_ms
    if high < low:
        raise NetworkError(f"invalid latency range {latency_range_ms}")
    for edge in graph.edges:
        graph.edges[edge]["latency"] = rng.uniform(low, high)


# -- topology diagnostics -------------------------------------------------------


def degree_statistics(graph: nx.Graph) -> Dict[str, float]:
    """Average/max degree and a crude power-law tail exponent estimate."""
    degrees = [degree for _node, degree in graph.degree()]
    if not degrees:
        raise NetworkError("cannot compute statistics of an empty graph")
    average = sum(degrees) / len(degrees)
    return {
        "average_degree": average,
        "max_degree": float(max(degrees)),
        "min_degree": float(min(degrees)),
        "power_law_exponent": _estimate_power_law_exponent(degrees),
    }


def _estimate_power_law_exponent(degrees: List[int]) -> float:
    """Maximum-likelihood (Hill) estimator of the degree-tail exponent."""
    d_min = max(1, min(degrees))
    tail = [degree for degree in degrees if degree >= d_min]
    if len(tail) < 2:
        return float("nan")
    log_sum = sum(math.log(degree / d_min) for degree in tail if degree > 0)
    if log_sum <= 0:
        return float("inf")
    return 1.0 + len(tail) / log_sum


def highest_degree_nodes(graph: nx.Graph, count: int) -> List[str]:
    """The ``count`` highest-degree nodes (natural superpeer candidates)."""
    ranked = sorted(graph.degree, key=lambda pair: pair[1], reverse=True)
    return [node for node, _degree in ranked[:count]]


def edge_latency(graph: nx.Graph, source: str, destination: str) -> Optional[float]:
    """Latency of a direct edge, or None when the nodes are not adjacent."""
    if graph.has_edge(source, destination):
        return float(graph.edges[source, destination]["latency"])
    return None
