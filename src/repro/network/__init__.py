"""P2P network substrate: topology, peers, discrete-event simulation.

The paper evaluates its protocols with the BRITE topology generator and the
SimJava discrete-event simulation package.  Neither is available (nor needed)
here; this package provides functionally equivalent substitutes:

* :mod:`repro.network.topology` — power-law overlay generation
  (Barabási–Albert preferential attachment, Waxman), average degree ≈ 4,
* :mod:`repro.network.simulator` — a deterministic discrete-event simulator,
* :mod:`repro.network.peer` / :mod:`repro.network.overlay` — peer and
  superpeer-overlay models,
* :mod:`repro.network.churn` — the skewed node-lifetime model of Table 3,
* :mod:`repro.network.messages` / :mod:`repro.network.metrics` — message
  accounting, the primary metric of the evaluation,
* :mod:`repro.network.faults` — seeded fault injection (partitions, message
  loss, duplicates, correlated failures) for the robustness scenarios.
"""

from repro.network.churn import LifetimeDistribution
from repro.network.faults import (
    DomainFailureEvent,
    ExpiringSet,
    FaultInjector,
    FaultPlan,
    FaultStats,
    FlashCrowdEvent,
    LinkFaults,
    MassacreEvent,
    PartitionEvent,
)
from repro.network.messages import Message, MessageType
from repro.network.metrics import MessageCounter, TrafficReport
from repro.network.overlay import Overlay
from repro.network.peer import PeerNode, PeerRole
from repro.network.simulator import Event, Simulator
from repro.network.topology import TopologyConfig, power_law_topology
from repro.network.transport import MessageBus

__all__ = [
    "Simulator",
    "Event",
    "TopologyConfig",
    "power_law_topology",
    "PeerNode",
    "PeerRole",
    "Overlay",
    "LifetimeDistribution",
    "Message",
    "MessageType",
    "MessageCounter",
    "TrafficReport",
    "MessageBus",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "LinkFaults",
    "PartitionEvent",
    "DomainFailureEvent",
    "MassacreEvent",
    "FlashCrowdEvent",
    "ExpiringSet",
]
