"""Protocol messages and their accounting identity.

The evaluation's primary metric is the *number of exchanged messages*; this
module enumerates every message type the protocols use (Sections 4 and 5 of
the paper) so the metrics layer can attribute traffic precisely.

Messages are plain data, deliberately runtime-agnostic: nothing here knows
about clocks, schedulers, or :mod:`repro.runtime` backends.  Delivery timing
and ordering belong to the transport and the execution backend; a message
object must serialize and count identically under every backend.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class MessageType(enum.Enum):
    """Every message kind exchanged by the protocols."""

    # -- summary construction (Section 4.1)
    SUMPEER = "sumpeer"            # superpeer advertisement broadcast (TTL-bounded)
    LOCALSUM = "localsum"          # a peer ships its local summary to the superpeer
    DROP = "drop"                  # a peer drops its old partnership
    FIND = "find"                  # selective walk looking for a summary peer

    # -- summary maintenance (Section 4.2)
    PUSH = "push"                  # freshness-bit update from a partner
    RECONCILIATION = "reconciliation"  # ring message rebuilding the global summary

    # -- peer dynamicity (Section 4.3)
    RELEASE = "release"            # a leaving superpeer releases its partners

    # -- query processing (Section 5)
    QUERY = "query"                # query sent to the summary peer or to a relevant peer
    QUERY_RESPONSE = "query_response"  # answer returned to the originator
    FLOOD_REQUEST = "flood_request"    # inter-domain flooding request
    FLOOD_QUERY = "flood_query"        # TTL-bounded flooded query (also the baseline)


_message_counter = itertools.count()


@dataclass
class Message:
    """One message in flight.

    ``size_bytes`` only matters for traffic-volume style reporting; the paper
    counts messages, so the default of one "unit" is usually enough.
    """

    type: MessageType
    source: str
    destination: str
    payload: Dict[str, Any] = field(default_factory=dict)
    ttl: Optional[int] = None
    size_bytes: int = 1
    message_id: int = field(default_factory=lambda: next(_message_counter))

    def expired(self) -> bool:
        """True when a TTL-bounded message may no longer be forwarded."""
        return self.ttl is not None and self.ttl <= 0

    def forwarded(self, new_destination: str, new_source: Optional[str] = None) -> "Message":
        """A copy of the message forwarded one hop further (TTL decremented)."""
        return Message(
            type=self.type,
            source=new_source if new_source is not None else self.destination,
            destination=new_destination,
            payload=dict(self.payload),
            ttl=None if self.ttl is None else self.ttl - 1,
            size_bytes=self.size_bytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        ttl = f", ttl={self.ttl}" if self.ttl is not None else ""
        return (
            f"Message({self.type.value}, {self.source} -> {self.destination}{ttl})"
        )
