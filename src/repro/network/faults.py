"""Seeded, deterministic fault injection: the adversary the paper never ran.

The reproduction's churn model (log-normal peer death, Section 4.3) is the
*benign* failure mode: messages always arrive, the overlay never splits, and
domains never die together.  This module supplies the adversarial rest — a
:class:`FaultPlan` of composable policies:

* **link faults** — per-message drop / duplicate / delay-jitter on every
  link (:class:`LinkFaults`);
* **partitions** — the overlay splits into groups that cannot exchange
  messages, with an optional scheduled re-merge (:class:`PartitionEvent`);
* **correlated domain failures** — a whole domain (summary peer and every
  partner) fails silently at once (:class:`DomainFailureEvent`);
* **summary-peer massacres** — a fraction of all summary peers dies in the
  same instant (:class:`MassacreEvent`);
* **flash crowds** — every offline peer rejoins at once
  (:class:`FlashCrowdEvent`).

Determinism contract
--------------------
Every injected decision is drawn from the :class:`FaultInjector`'s *own*
``random.Random(plan.seed)`` stream, never from the system RNG, and links
that cannot fail draw **nothing**: a partitioned link fails deterministically
without consuming entropy, and a plan with no link faults never touches the
stream on the send path.  Two consequences the tests pin down:

* the zero-fault path is byte-identical to a run without any fault layer
  installed — same messages, same RNG streams, same figures;
* the injector's full state (plan, RNG, live partition, statistics) is a
  plain JSON payload (:meth:`FaultInjector.state_payload`), so checkpoints
  taken mid-partition resume mid-partition and continue identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError


class ExpiringSet:
    """A set whose members lapse after a TTL (duplicate-suppression window).

    Receivers remember recently delivered message ids for ``ttl_seconds`` of
    simulated time; a fault-injected duplicate arriving inside the window is
    recognised and suppressed, while the bounded TTL keeps the memory from
    growing with the whole run.
    """

    def __init__(self, ttl_seconds: float = 30.0) -> None:
        if ttl_seconds <= 0:
            raise ConfigurationError("ExpiringSet ttl_seconds must be positive")
        self._ttl = float(ttl_seconds)
        self._seen: Dict[object, float] = {}

    @property
    def ttl_seconds(self) -> float:
        return self._ttl

    def add_if_new(self, key: object, now: float) -> bool:
        """Record ``key``; True when it was not already live at ``now``."""
        self.prune(now)
        if key in self._seen:
            self._seen[key] = now  # refresh the window
            return False
        self._seen[key] = now
        return True

    def prune(self, now: float) -> None:
        """Drop every member older than the TTL."""
        cutoff = now - self._ttl
        if not self._seen:
            return
        expired = [key for key, seen_at in self._seen.items() if seen_at < cutoff]
        for key in expired:
            del self._seen[key]

    def __contains__(self, key: object) -> bool:
        return key in self._seen

    def __len__(self) -> int:
        return len(self._seen)


def _require_probability(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")


def _require_non_negative(value: float, name: str) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")


@dataclass(frozen=True)
class LinkFaults:
    """Per-message link behaviour applied uniformly to every link."""

    #: Probability that any one transmission is silently lost.
    drop_probability: float = 0.0
    #: Probability that a delivered message also arrives a second time.
    duplicate_probability: float = 0.0
    #: Uniform extra latency in [0, jitter] added per delivery (reorders
    #: messages relative to fixed-latency siblings).
    delay_jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        _require_probability(self.drop_probability, "drop_probability")
        _require_probability(self.duplicate_probability, "duplicate_probability")
        _require_non_negative(self.delay_jitter_ms, "delay_jitter_ms")

    @property
    def any(self) -> bool:
        return (
            self.drop_probability > 0
            or self.duplicate_probability > 0
            or self.delay_jitter_ms > 0
        )


@dataclass(frozen=True)
class PartitionEvent:
    """The overlay splits at ``at``; optionally re-merges at ``heal_at``.

    Give either explicit ``groups`` (lists of peer ids) or a ``fraction``:
    the injector then shuffles the population with its own RNG and cuts it
    into a ``fraction`` / ``1 - fraction`` split.
    """

    at: float
    fraction: float = 0.5
    heal_at: Optional[float] = None
    groups: Optional[Tuple[Tuple[str, ...], ...]] = None

    def __post_init__(self) -> None:
        _require_non_negative(self.at, "PartitionEvent.at")
        _require_probability(self.fraction, "PartitionEvent.fraction")
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ConfigurationError("PartitionEvent.heal_at must come after at")
        if self.groups is not None:
            # Normalise to tuples so the event stays hashable/asdict-able.
            object.__setattr__(
                self, "groups", tuple(tuple(group) for group in self.groups)
            )


@dataclass(frozen=True)
class DomainFailureEvent:
    """``count`` whole domains (summary peer + every partner) fail silently."""

    at: float
    count: int = 1

    def __post_init__(self) -> None:
        _require_non_negative(self.at, "DomainFailureEvent.at")
        if self.count < 1:
            raise ConfigurationError("DomainFailureEvent.count must be >= 1")


@dataclass(frozen=True)
class MassacreEvent:
    """A ``fraction`` of all summary peers dies in the same instant.

    ``rejoin_after`` schedules each victim's rejoin that many seconds later —
    the scenario that exercises the store-backed domain reclamation path
    (:meth:`SummaryManagementSystem.cold_start_domain`).
    """

    at: float
    fraction: float = 0.5
    graceful: bool = False
    rejoin_after: Optional[float] = None

    def __post_init__(self) -> None:
        _require_non_negative(self.at, "MassacreEvent.at")
        _require_probability(self.fraction, "MassacreEvent.fraction")
        if self.rejoin_after is not None and self.rejoin_after <= 0:
            raise ConfigurationError("MassacreEvent.rejoin_after must be positive")


@dataclass(frozen=True)
class FlashCrowdEvent:
    """Every offline peer (or the first ``rejoin_count``) rejoins at once."""

    at: float
    rejoin_count: Optional[int] = None

    def __post_init__(self) -> None:
        _require_non_negative(self.at, "FlashCrowdEvent.at")
        if self.rejoin_count is not None and self.rejoin_count < 0:
            raise ConfigurationError("FlashCrowdEvent.rejoin_count must be >= 0")


@dataclass(frozen=True)
class FaultPlan:
    """One composable, seeded adversity schedule for a whole run."""

    seed: int = 0
    link: LinkFaults = field(default_factory=LinkFaults)
    partitions: Tuple[PartitionEvent, ...] = ()
    domain_failures: Tuple[DomainFailureEvent, ...] = ()
    massacres: Tuple[MassacreEvent, ...] = ()
    flash_crowds: Tuple[FlashCrowdEvent, ...] = ()

    def __post_init__(self) -> None:
        # Accept lists for ergonomics, store tuples for hashability.
        for name in ("partitions", "domain_failures", "massacres", "flash_crowds"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    def any_faults(self) -> bool:
        """Whether this plan injects anything at all."""
        return bool(
            self.link.any
            or self.partitions
            or self.domain_failures
            or self.massacres
            or self.flash_crowds
        )

    # -- serialisation -------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "link": {
                "drop_probability": self.link.drop_probability,
                "duplicate_probability": self.link.duplicate_probability,
                "delay_jitter_ms": self.link.delay_jitter_ms,
            },
            "partitions": [
                {
                    "at": event.at,
                    "fraction": event.fraction,
                    "heal_at": event.heal_at,
                    "groups": (
                        [list(group) for group in event.groups]
                        if event.groups is not None
                        else None
                    ),
                }
                for event in self.partitions
            ],
            "domain_failures": [
                {"at": event.at, "count": event.count}
                for event in self.domain_failures
            ],
            "massacres": [
                {
                    "at": event.at,
                    "fraction": event.fraction,
                    "graceful": event.graceful,
                    "rejoin_after": event.rejoin_after,
                }
                for event in self.massacres
            ],
            "flash_crowds": [
                {"at": event.at, "rejoin_count": event.rejoin_count}
                for event in self.flash_crowds
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "FaultPlan":
        link = dict(payload.get("link") or {})
        return cls(
            seed=int(payload.get("seed", 0)),
            link=LinkFaults(
                drop_probability=float(link.get("drop_probability", 0.0)),
                duplicate_probability=float(link.get("duplicate_probability", 0.0)),
                delay_jitter_ms=float(link.get("delay_jitter_ms", 0.0)),
            ),
            partitions=tuple(
                PartitionEvent(
                    at=float(event["at"]),
                    fraction=float(event.get("fraction", 0.5)),
                    heal_at=event.get("heal_at"),
                    groups=(
                        tuple(tuple(group) for group in event["groups"])
                        if event.get("groups") is not None
                        else None
                    ),
                )
                for event in payload.get("partitions", [])
            ),
            domain_failures=tuple(
                DomainFailureEvent(at=float(event["at"]), count=int(event["count"]))
                for event in payload.get("domain_failures", [])
            ),
            massacres=tuple(
                MassacreEvent(
                    at=float(event["at"]),
                    fraction=float(event.get("fraction", 0.5)),
                    graceful=bool(event.get("graceful", False)),
                    rejoin_after=event.get("rejoin_after"),
                )
                for event in payload.get("massacres", [])
            ),
            flash_crowds=tuple(
                FlashCrowdEvent(
                    at=float(event["at"]),
                    rejoin_count=(
                        int(event["rejoin_count"])
                        if event.get("rejoin_count") is not None
                        else None
                    ),
                )
                for event in payload.get("flash_crowds", [])
            ),
        )


@dataclass
class FaultStats:
    """What the injector actually did to one run."""

    messages_dropped: int = 0
    messages_duplicated: int = 0
    retries: int = 0
    failed_pushes: int = 0
    unreachable_probes: int = 0
    backoff_seconds: float = 0.0

    def state_payload(self) -> Dict[str, object]:
        return {
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "retries": self.retries,
            "failed_pushes": self.failed_pushes,
            "unreachable_probes": self.unreachable_probes,
            "backoff_seconds": self.backoff_seconds,
        }

    @classmethod
    def from_state(cls, payload: Dict[str, object]) -> "FaultStats":
        return cls(
            messages_dropped=int(payload.get("messages_dropped", 0)),
            messages_duplicated=int(payload.get("messages_duplicated", 0)),
            retries=int(payload.get("retries", 0)),
            failed_pushes=int(payload.get("failed_pushes", 0)),
            unreachable_probes=int(payload.get("unreachable_probes", 0)),
            backoff_seconds=float(payload.get("backoff_seconds", 0.0)),
        )


def backoff_total(base_seconds: float, factor: float, retries: int) -> float:
    """Total exponential-backoff wait before ``retries`` retransmissions."""
    return sum(base_seconds * factor**attempt for attempt in range(max(0, retries)))


class FaultInjector:
    """The live fault state of one run: plan + RNG + current partition.

    The injector never touches the system RNG and draws from its own stream
    only when an outcome is genuinely random: a partitioned link fails (and a
    clean link succeeds) without consuming entropy, which is what makes the
    zero-fault path byte-identical and mid-partition checkpoints resumable.
    """

    def __init__(self, plan: Optional[FaultPlan] = None) -> None:
        self.plan = plan or FaultPlan()
        self.rng = random.Random(self.plan.seed)
        self.stats = FaultStats()
        self._group_of: Dict[str, int] = {}

    # -- partitions ----------------------------------------------------------------

    @property
    def partitioned(self) -> bool:
        return bool(self._group_of)

    def set_partition(self, groups: List[List[str]]) -> None:
        """Install a partition: peers in different groups cannot communicate."""
        self._group_of = {
            peer_id: index
            for index, group in enumerate(groups)
            for peer_id in group
        }

    def clear_partition(self) -> None:
        self._group_of = {}

    def partition_groups(self) -> List[List[str]]:
        """The live partition as sorted groups (empty when none)."""
        groups: Dict[int, List[str]] = {}
        for peer_id, index in self._group_of.items():
            groups.setdefault(index, []).append(peer_id)
        return [sorted(groups[index]) for index in sorted(groups)]

    def reachable(self, source: str, destination: str) -> bool:
        """Whether a message can cross from ``source`` to ``destination`` now.

        Peers absent from every partition group (e.g. added after the split)
        are treated as reachable from everywhere.
        """
        if not self._group_of:
            return True
        a = self._group_of.get(source)
        b = self._group_of.get(destination)
        if a is None or b is None:
            return True
        return a == b

    # -- link faults ---------------------------------------------------------------

    @property
    def lossy(self) -> bool:
        return self.plan.link.drop_probability > 0

    @property
    def duplicating(self) -> bool:
        return self.plan.link.duplicate_probability > 0

    @property
    def jittery(self) -> bool:
        return self.plan.link.delay_jitter_ms > 0

    def disrupts_link(self, source: str, destination: str) -> bool:
        """Whether this link can currently fail (partitioned apart or lossy)."""
        return self.lossy or not self.reachable(source, destination)

    def draw_loss(self) -> bool:
        return self.rng.random() < self.plan.link.drop_probability

    def draw_duplicate(self) -> bool:
        return self.rng.random() < self.plan.link.duplicate_probability

    def draw_jitter_ms(self) -> float:
        return self.rng.random() * self.plan.link.delay_jitter_ms

    def attempt_delivery(
        self, source: str, destination: str, max_retries: int = 0
    ) -> Tuple[bool, int]:
        """Try one send with up to ``max_retries`` retransmissions.

        Returns ``(delivered, retries_used)``.  A partitioned link fails
        every attempt *without* drawing (the outcome is certain); a clean
        reachable link succeeds immediately without drawing; only a lossy
        reachable link consumes one draw per attempt.  Lost transmissions
        and retries are accumulated in :attr:`stats`; message-counter
        charging is the caller's job (the injector has no counter).
        """
        budget = max(0, int(max_retries))
        if not self.reachable(source, destination):
            self.stats.messages_dropped += 1 + budget
            self.stats.retries += budget
            return False, budget
        if not self.lossy:
            return True, 0
        for attempt in range(1 + budget):
            if self.rng.random() >= self.plan.link.drop_probability:
                self.stats.messages_dropped += attempt
                self.stats.retries += attempt
                return True, attempt
        self.stats.messages_dropped += 1 + budget
        self.stats.retries += budget
        return False, budget

    # -- serialisation -------------------------------------------------------------

    def state_payload(self) -> Dict[str, object]:
        """The injector's full state as a JSON-able payload (checkpointing)."""
        version, internal, position = self.rng.getstate()
        return {
            "plan": self.plan.to_payload(),
            "rng": [version, list(internal), position],
            "partition": self.partition_groups() if self.partitioned else None,
            "stats": self.stats.state_payload(),
        }

    @classmethod
    def from_state(cls, payload: Dict[str, object]) -> "FaultInjector":
        injector = cls(FaultPlan.from_payload(payload["plan"]))
        version, internal, position = payload["rng"]
        injector.rng.setstate((version, tuple(internal), position))
        partition = payload.get("partition")
        if partition:
            injector.set_partition([list(group) for group in partition])
        injector.stats = FaultStats.from_state(dict(payload.get("stats") or {}))
        return injector

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        mode = "partitioned" if self.partitioned else "merged"
        return (
            f"FaultInjector(seed={self.plan.seed}, {mode}, "
            f"dropped={self.stats.messages_dropped}, retries={self.stats.retries})"
        )
