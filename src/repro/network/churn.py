"""Peer lifetime (churn) model.

Table 3 of the paper: local summary lifetimes — tied to node lifetimes —
follow a *skewed distribution with a mean of 3 hours and a median of
60 minutes*.  A log-normal distribution fits that description exactly and is
the standard churn model for P2P measurement studies; its two parameters are
derived in closed form from the requested mean and median.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LifetimeDistribution:
    """Log-normal lifetime distribution parameterised by mean and median.

    For a log-normal variable, ``median = exp(mu)`` and
    ``mean = exp(mu + sigma^2 / 2)``; hence ``mu = ln(median)`` and
    ``sigma = sqrt(2 ln(mean / median))``.  The paper's defaults (mean 3 h,
    median 1 h) give ``sigma ≈ 1.48``, a heavily right-skewed distribution:
    most peers stay briefly while a few stay a long time.
    """

    mean_seconds: float = 3 * 3600.0
    median_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.median_seconds <= 0:
            raise ConfigurationError("median lifetime must be positive")
        if self.mean_seconds < self.median_seconds:
            raise ConfigurationError(
                "a log-normal distribution requires mean >= median "
                f"(got mean={self.mean_seconds}, median={self.median_seconds})"
            )

    @property
    def mu(self) -> float:
        return math.log(self.median_seconds)

    @property
    def sigma(self) -> float:
        ratio = self.mean_seconds / self.median_seconds
        return math.sqrt(max(0.0, 2.0 * math.log(ratio)))

    def sample(self, rng: random.Random) -> float:
        """Draw one lifetime in seconds."""
        if self.sigma == 0.0:
            return self.median_seconds
        return rng.lognormvariate(self.mu, self.sigma)

    def sample_many(self, count: int, rng: random.Random) -> List[float]:
        return [self.sample(rng) for _ in range(count)]

    def expected_mean(self) -> float:
        """Analytical mean implied by (mu, sigma) — equals ``mean_seconds``."""
        return math.exp(self.mu + self.sigma**2 / 2.0)

    def expected_median(self) -> float:
        return math.exp(self.mu)

    def staleness_probability(self, horizon_seconds: float) -> float:
        """P(lifetime <= horizon): chance a partner departs within the horizon.

        Uses the log-normal CDF.  This is the analytical counterpart of the
        simulated staleness fractions of Figure 4.
        """
        if horizon_seconds <= 0:
            return 0.0
        if self.sigma == 0.0:
            return 1.0 if horizon_seconds >= self.median_seconds else 0.0
        z = (math.log(horizon_seconds) - self.mu) / (self.sigma * math.sqrt(2.0))
        return 0.5 * (1.0 + math.erf(z))


@dataclass
class ChurnSchedule:
    """Pre-drawn lifetimes/downtimes for a population of peers."""

    lifetimes: List[float]
    downtime_seconds: float = 600.0

    @classmethod
    def draw(
        cls,
        peer_count: int,
        distribution: Optional[LifetimeDistribution] = None,
        downtime_seconds: float = 600.0,
        seed: int = 0,
    ) -> "ChurnSchedule":
        rng = random.Random(seed)
        distribution = distribution or LifetimeDistribution()
        return cls(
            lifetimes=distribution.sample_many(peer_count, rng),
            downtime_seconds=downtime_seconds,
        )

    def lifetime_of(self, index: int) -> float:
        return self.lifetimes[index % len(self.lifetimes)]
