"""Peer node model.

A :class:`PeerNode` is the per-node state visible to the network layer: its
identifier, role (plain peer or superpeer), connectivity status, its local
database and local summary, and the bookkeeping the summary-management
protocols need (who its summary peer is, how far away it is, etc.).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional, Set

from repro.database.engine import LocalDatabase
from repro.saintetiq.hierarchy import SummaryHierarchy


class PeerRole(enum.Enum):
    """Role of a node in the hybrid overlay."""

    PEER = "peer"
    SUPERPEER = "superpeer"


@dataclass
class PeerNode:
    """State of one node of the overlay."""

    peer_id: str
    role: PeerRole = PeerRole.PEER
    online: bool = True
    database: Optional[LocalDatabase] = None
    local_summary: Optional[SummaryHierarchy] = None

    #: Identifier of the summary peer whose domain this peer belongs to
    #: (None when the peer is not a partner of any domain).
    summary_peer_id: Optional[str] = None
    #: Network distance (latency, milliseconds) to the current summary peer.
    summary_peer_distance: float = float("inf")
    #: Other summary peers this node knows about (superpeers use this to
    #: accelerate inter-domain flooding, Section 5.2.2).
    known_summary_peers: Set[str] = field(default_factory=set)

    #: Connectivity listener installed by the owning :class:`Overlay` so it
    #: can track the online-peer set incrementally.  Every write to
    #: ``online`` — ``go_offline``/``go_online`` as well as direct
    #: assignment (e.g. checkpoint restore) — is reported through it.
    _status_listener: Optional[Callable[[str, bool], None]] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __setattr__(self, name: str, value: object) -> None:
        object.__setattr__(self, name, value)
        if name == "online":
            listener = getattr(self, "_status_listener", None)
            if listener is not None:
                listener(self.peer_id, bool(value))

    def bind_status_listener(
        self, listener: Optional[Callable[[str, bool], None]]
    ) -> None:
        """Install (or, with ``None``, remove) the overlay's status listener."""
        self._status_listener = listener
        if listener is not None:
            listener(self.peer_id, self.online)

    @property
    def is_superpeer(self) -> bool:
        return self.role is PeerRole.SUPERPEER

    @property
    def is_partner(self) -> bool:
        """A partner peer belongs to some domain (Definition 4)."""
        return self.summary_peer_id is not None

    def attach_database(self, database: LocalDatabase) -> None:
        self.database = database

    def attach_summary(self, summary: SummaryHierarchy) -> None:
        self.local_summary = summary

    def join_domain(self, summary_peer_id: str, distance: float) -> None:
        self.summary_peer_id = summary_peer_id
        self.summary_peer_distance = distance

    def leave_domain(self) -> None:
        self.summary_peer_id = None
        self.summary_peer_distance = float("inf")

    def go_offline(self) -> None:
        self.online = False

    def go_online(self) -> None:
        self.online = True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        status = "online" if self.online else "offline"
        return f"PeerNode({self.peer_id}, {self.role.value}, {status})"
