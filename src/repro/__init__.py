"""repro — reproduction of "Summary Management in P2P Systems" (EDBT 2008).

The library combines a SaintEtiQ-style database summarization engine with a
hybrid (superpeer) P2P overlay: peers maintain local summaries of their
relational data, domains merge them into global summaries, and queries are
routed (or answered approximately) through those summaries.

Quick tour of the public API
----------------------------

A whole network is declared with :class:`SystemBuilder` and driven through
the :class:`NetworkSession` it builds; every query returns a typed
:class:`QueryAnswer`:

>>> from repro import SystemBuilder
>>> session = (
...     SystemBuilder()
...     .topology(peer_count=32, average_degree=4)
...     .planned_content(hit_rate=0.25)
...     .seed(7)
...     .build()
... )
>>> answer = session.query()
>>> answer.results >= 1
True
>>> answer.total_messages >= answer.results
True
>>> answer.staleness is not None  # planned mode bundles staleness accounting
True

Heavy query traffic goes through the **batched query engine**:
``query_batch`` shares the per-query derivation work — domain visit orders,
the incrementally tracked online-peer set, the hierarchies' inverted-index
selection caches — across a whole batch, while staying byte-identical to
posing the queries one by one:

>>> answers = session.query_batch(count=3, required_results=2)
>>> [a.results >= 2 for a in answers]
[True, True, True]
>>> answers[0].query_id + 1 == answers[1].query_id  # ids allocated in order
True

Sessions persist through the ``repro.store`` subsystem: ``checkpoint()``
captures the full session state (a store is a directory of JSON files, a
single SQLite file, or in-memory), and ``SystemBuilder.from_checkpoint``
resumes it byte-identically — the resumed session routes the next query
exactly as the original would have:

>>> from repro import InMemoryBackend
>>> store = InMemoryBackend()
>>> session.checkpoint(store)
'session'
>>> resumed = SystemBuilder.from_checkpoint(store)
>>> resumed.query().routing == session.query().routing
True

Checkpoints can be *incremental*: ``base=`` persists only what changed since
an earlier checkpoint (a structural delta, restored transparently through
its base chain), and ``store.gc()`` reclaims content-addressed snapshots no
retained checkpoint or domain head references any more:

>>> session.checkpoint(store, name="later", base="session")
'later'
>>> SystemBuilder.from_checkpoint(store, name="later").now == session.now
True
>>> store.gc().deleted_count  # everything is still referenced
0

Networks fail; the protocol answers anyway.  A seeded :class:`FaultPlan`
injects partitions, link loss, duplicates and mass departures into the run
(the empty plan is byte-identical to no plan at all), and every answer
carries a :class:`DegradationReport` stating exactly which domains could not
be reached — a partial answer is always *marked*, never silently incomplete:

>>> from repro import FaultPlan, PartitionEvent
>>> plan = FaultPlan(
...     seed=5,
...     partitions=[PartitionEvent(at=60.0, fraction=0.5, heal_at=600.0)],
... )
>>> stormy = (
...     SystemBuilder()
...     .topology(peer_count=32, average_degree=4)
...     .planned_content(hit_rate=0.25)
...     .faults(plan)
...     .seed(7)
...     .build()
... )
>>> _ = stormy.run_until(120.0)  # mid-partition
>>> report = stormy.query().degradation
>>> visited = set(stormy.system.domains) - set(report.unreachable_domains)
>>> visited | set(report.unreachable_domains) == set(stormy.system.domains)
True
>>> _ = stormy.run_until(700.0)  # healed
>>> stormy.query().degradation.complete
True

A checkpoint can also be **served**: :func:`open_readonly_session` opens it
as one shared read-only session (mutations raise, hierarchies load lazily
from the snapshot store on first touch), and the ``repro.serve`` daemon
answers query and staleness requests over HTTP/JSON byte-identically to a
local restore of the same checkpoint:

>>> from repro import open_readonly_session
>>> from repro.serve import ServeClient, start_server
>>> server = start_server(open_readonly_session(store), close_session_on_stop=True)
>>> client = ServeClient(server.url)
>>> client.health()["status"]
'ok'
>>> client.query_batch(count=2) == SystemBuilder.from_checkpoint(store).query_batch(count=2)
True
>>> client.shutdown()["status"]
'shutting down'
>>> server.join(timeout=10.0)

One process is GIL-bound; serving scales past it with a **supervised
worker fleet**: ``repro serve --store run.sqlite --workers 4`` forks four
worker processes (each its own read-only restore) behind one front port,
health-checks them, restarts crashes with capped exponential backoff,
sheds load beyond ``--max-inflight`` (HTTP 503 + ``Retry-After``),
fails over-deadline requests typed (HTTP 504), and answers repeated
requests from an exact response cache keyed by (canonical request,
checkpoint digest) — provably safe because answers are deterministic.
A request interrupted by a worker crash is retried on a live worker or
fails typed; it never returns a wrong or truncated answer:

>>> from repro.serve import ResponseCache, Supervisor
>>> Supervisor("run.sqlite", workers=4).backoff_delay(3)  # capped 2**n
0.8
>>> cache = ResponseCache(capacity=64, checkpoint="digest")
>>> cache.store("POST", "/query", b'{"count": 1}', 200, "application/json", b"...")
>>> cache.lookup("POST", "/query", b'{"count":1}')  # canonical: same entry
(200, 'application/json', b'...')

Every layer is **observable** through ``repro.obs``: an opt-in, deterministic
metrics registry plus structured tracing.  ``install_observability`` never
changes what a session computes — with observability absent the code paths
are byte-identical — it only records counters, histograms and spans
(``detail=True`` adds per-domain routing spans on top of the always-on
metrics):

>>> from repro import Observability
>>> obs = Observability.with_ring(detail=True)
>>> watched = (
...     SystemBuilder()
...     .topology(peer_count=32, average_degree=4)
...     .planned_content(hit_rate=0.25)
...     .seed(7)
...     .build()
... )
>>> watched.install_observability(obs)
>>> _ = watched.query_batch(count=3)
>>> obs.metrics.value("repro_queries_total") == 3
True
>>> "repro_queries_total 3" in obs.metrics.render_prometheus()
True
>>> sum(1 for s in obs.ring.spans() if s.name == "query") == 3
True

The same registry backs the serve daemon's ``/metrics`` (Prometheus text
format) and ``/trace`` endpoints, and ``repro metrics`` / ``repro trace``
scrape them from the command line.

**Choosing a runtime.**  Every session schedules its events through a
pluggable :class:`~repro.runtime.ExecutionBackend`.  The default
``"simulator"`` drains them serially in one thread; ``"concurrent"`` overlaps
their I/O-shaped waits on asyncio mailboxes (one per peer, semaphore-capped
fan-out) while draining the *virtual* events in the same strict order — so a
seed produces byte-identical answers, counters and RNG draws on either
backend.  Pick one per build (``.runtime(...)``), per scenario
(``SimulationScenario(runtime="concurrent")``), per CLI run (``--runtime``),
or process-wide via ``$REPRO_RUNTIME``:

>>> from repro import ConcurrentBackend, create_backend
>>> create_backend("concurrent").name  # names resolve to fresh backends
'concurrent'
>>> fast = (
...     SystemBuilder()
...     .topology(peer_count=16, average_degree=4)
...     .planned_content(hit_rate=0.25)
...     .runtime(ConcurrentBackend())
...     .seed(7)
...     .build()
... )
>>> _ = fast.run_until(600.0)
>>> slow = (
...     SystemBuilder()
...     .topology(peer_count=16, average_degree=4)
...     .planned_content(hit_rate=0.25)
...     .seed(7)
...     .build()
... )
>>> _ = slow.run_until(600.0)
>>> fast.query() == slow.query()  # backend is an implementation knob
True

Real-content sessions can additionally ``attach_store(...)``: every
reconciliation then archives the domain's merged state, and a restarted
summary peer *cold-starts* — ``cold_start_domain(sp_id)`` installs its global
summary by snapshot-hash lookup and pulls only the partners that changed
since, instead of re-reconciling the whole domain.

Named parameter sets live in the scenario registry
(``default_registry().session("table3-default")``); the low-level pieces —
overlays, summaries, the :class:`SummaryManagementSystem` engine — remain
available, but wiring the engine by hand (``attach_databases`` /
``build_domains`` / ``pose_query``) is deprecated in favour of the builder.

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
experiment harness reproducing every table and figure of the paper.
"""

from repro.core.approximate import answer_in_domain, localize_peers
from repro.core.config import ProtocolConfig
from repro.core.construction import DomainBuilder
from repro.core.cooperation import CooperationList
from repro.core.domain import Domain
from repro.core.freshness import Freshness, FreshnessMode
from repro.core.maintenance import ColdStartRecord, MaintenanceEngine
from repro.core.protocol import SummaryManagementSystem
from repro.core.routing import (
    QueryRequest,
    QueryRouter,
    QueryRoutingResult,
    RoutingPolicy,
)
from repro.core.service import LocalSummaryService
from repro.core.session import (
    DegradationReport,
    MaintenanceReport,
    NetworkSession,
    QueryAnswer,
    ReadOnlyNetworkSession,
    SessionTraffic,
    SystemBuilder,
)
from repro.database.engine import LocalDatabase
from repro.database.generator import PatientGenerator
from repro.database.query import (
    AttributeIn,
    Comparison,
    DescriptorPredicate,
    SelectionQuery,
)
from repro.database.schema import Attribute, AttributeType, Schema, patient_schema
from repro.database.table import Record, Relation
from repro.exceptions import (
    BackgroundKnowledgeError,
    ConfigurationError,
    NetworkError,
    ProtocolError,
    QueryError,
    ReadOnlySessionError,
    ReproError,
    SchemaError,
    ServeError,
    StoreError,
    SummaryError,
)
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import Descriptor, LinguisticVariable
from repro.fuzzy.membership import (
    CrispSetMembership,
    TrapezoidalMembership,
    TriangularMembership,
)
from repro.fuzzy.partition import FuzzyPartition
from repro.fuzzy.vocabularies import (
    medical_background_knowledge,
    uniform_numeric_background_knowledge,
)
from repro.network.churn import LifetimeDistribution
from repro.network.faults import (
    DomainFailureEvent,
    FaultInjector,
    FaultPlan,
    FlashCrowdEvent,
    LinkFaults,
    MassacreEvent,
    PartitionEvent,
)
from repro.network.overlay import Overlay
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    NullSink,
    Observability,
    RingBufferSink,
    Span,
    TraceSink,
    Tracer,
    connected_trace,
    parse_prometheus,
    span_tree,
)
from repro.network.simulator import Simulator
from repro.network.topology import TopologyConfig, power_law_topology
from repro.querying.aggregation import ApproximateAnswer, approximate_answer
from repro.querying.engine import HierarchyQueryIndex
from repro.querying.proposition import Clause, Proposition
from repro.querying.reformulation import reformulate
from repro.querying.selection import QuerySelection, select_summaries
from repro.saintetiq.cell import Cell
from repro.saintetiq.clustering import ClusteringParameters, SummaryBuilder
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.mapping import MappingService
from repro.saintetiq.merging import merge_hierarchies
from repro.saintetiq.summary import Summary
from repro.store import (
    DomainHeadArchive,
    GcReport,
    HierarchySource,
    InMemoryBackend,
    JsonDirectoryBackend,
    SessionCache,
    SnapshotStore,
    SqliteBackend,
    StoreBackend,
    collect_garbage,
    compact_checkpoint,
    compact_checkpoints,
    open_readonly_session,
    open_store,
)
from repro.runtime import (
    ConcurrentBackend,
    ExecutionBackend,
    SimulatorBackend,
    create_backend,
)
from repro.workloads.registry import ScenarioRegistry, default_registry
from repro.workloads.scenarios import SimulationScenario

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "SchemaError",
    "QueryError",
    "BackgroundKnowledgeError",
    "SummaryError",
    "NetworkError",
    "ProtocolError",
    "ConfigurationError",
    "StoreError",
    "ReadOnlySessionError",
    "ServeError",
    # fuzzy substrate
    "TrapezoidalMembership",
    "TriangularMembership",
    "CrispSetMembership",
    "Descriptor",
    "LinguisticVariable",
    "FuzzyPartition",
    "BackgroundKnowledge",
    "medical_background_knowledge",
    "uniform_numeric_background_knowledge",
    # database substrate
    "Attribute",
    "AttributeType",
    "Schema",
    "patient_schema",
    "Record",
    "Relation",
    "LocalDatabase",
    "PatientGenerator",
    "SelectionQuery",
    "Comparison",
    "AttributeIn",
    "DescriptorPredicate",
    # summarization engine
    "Cell",
    "MappingService",
    "Summary",
    "SummaryBuilder",
    "ClusteringParameters",
    "SummaryHierarchy",
    "merge_hierarchies",
    # querying
    "reformulate",
    "Clause",
    "Proposition",
    "QuerySelection",
    "select_summaries",
    "HierarchyQueryIndex",
    "ApproximateAnswer",
    "approximate_answer",
    # network substrate
    "Simulator",
    "TopologyConfig",
    "power_law_topology",
    "Overlay",
    "LifetimeDistribution",
    # core contribution
    "ProtocolConfig",
    "Freshness",
    "FreshnessMode",
    "CooperationList",
    "Domain",
    "DomainBuilder",
    "MaintenanceEngine",
    "LocalSummaryService",
    "RoutingPolicy",
    "QueryRouter",
    "QueryRequest",
    "QueryRoutingResult",
    "SummaryManagementSystem",
    "answer_in_domain",
    "localize_peers",
    # declarative session façade
    "SystemBuilder",
    "NetworkSession",
    "ReadOnlyNetworkSession",
    "QueryAnswer",
    "DegradationReport",
    "MaintenanceReport",
    "SessionTraffic",
    # fault injection and resilience
    "FaultPlan",
    "FaultInjector",
    "LinkFaults",
    "PartitionEvent",
    "DomainFailureEvent",
    "MassacreEvent",
    "FlashCrowdEvent",
    # persistence (repro.store)
    "StoreBackend",
    "InMemoryBackend",
    "JsonDirectoryBackend",
    "SqliteBackend",
    "open_store",
    "SnapshotStore",
    "DomainHeadArchive",
    "SessionCache",
    "collect_garbage",
    "compact_checkpoint",
    "compact_checkpoints",
    "open_readonly_session",
    "HierarchySource",
    "GcReport",
    "ColdStartRecord",
    # observability (repro.obs)
    "Observability",
    "MetricsRegistry",
    "parse_prometheus",
    "Tracer",
    "Span",
    "TraceSink",
    "NullSink",
    "RingBufferSink",
    "JsonlSink",
    "span_tree",
    "connected_trace",
    # execution backends (repro.runtime)
    "ExecutionBackend",
    "SimulatorBackend",
    "ConcurrentBackend",
    "create_backend",
    # scenarios
    "SimulationScenario",
    "ScenarioRegistry",
    "default_registry",
]
