"""Update cost — equation (1) of the paper.

``C_up = 1/L + F_rec`` messages per node per second, where ``L`` is the average
local-summary lifetime and ``F_rec`` the reconciliation frequency.  The
reconciliation frequency itself follows from the threshold α: the summary peer
reconciles when the fraction of old descriptions reaches α, i.e. after about
``α · |CL|`` partners have pushed; with ``|CL|`` partners each pushing every
``L`` seconds on average, pushes arrive at rate ``|CL| / L`` and the expected
time between reconciliations is ``α · L`` — so per *node*,
``F_rec ≈ (n + 1) / (α · L · n)`` reconciliation messages per second (the ring
visits every partner once plus the return hop to the summary peer).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


def update_cost(lifetime_seconds: float, reconciliation_frequency: float) -> float:
    """Equation (1): ``C_up = 1/L + F_rec`` messages per node per second."""
    if lifetime_seconds <= 0:
        raise ConfigurationError("the average lifetime L must be positive")
    if reconciliation_frequency < 0:
        raise ConfigurationError("the reconciliation frequency must be non-negative")
    return 1.0 / lifetime_seconds + reconciliation_frequency


@dataclass(frozen=True)
class UpdateCostModel:
    """Analytical update-cost model for one domain.

    Attributes
    ----------
    domain_size:
        Number of partner peers in the domain (|CL|).
    lifetime_seconds:
        Average local-summary lifetime ``L`` (Table 3: 3 hours).
    alpha:
        Reconciliation threshold α.
    """

    domain_size: int
    lifetime_seconds: float = 3 * 3600.0
    alpha: float = 0.3

    def __post_init__(self) -> None:
        if self.domain_size < 1:
            raise ConfigurationError("domain_size must be at least 1")
        if self.lifetime_seconds <= 0:
            raise ConfigurationError("lifetime_seconds must be positive")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("alpha must lie in (0, 1]")

    # -- per-component rates --------------------------------------------------------

    def push_rate_per_node(self) -> float:
        """Push messages per node per second: ``1 / L``."""
        return 1.0 / self.lifetime_seconds

    def reconciliation_interval(self) -> float:
        """Expected seconds between reconciliations: ``α · L``.

        Pushes arrive at rate ``n / L``; a reconciliation fires once
        ``α · n`` of them have accumulated.
        """
        return self.alpha * self.lifetime_seconds

    def reconciliation_messages_per_round(self) -> int:
        """One ring message per partner plus the return hop to the summary peer."""
        return self.domain_size + 1

    def reconciliation_rate_per_node(self) -> float:
        """Reconciliation messages per node per second (``F_rec`` of eq. 1)."""
        round_messages = self.reconciliation_messages_per_round()
        return round_messages / (self.reconciliation_interval() * self.domain_size)

    # -- totals ------------------------------------------------------------------------

    def cost_per_node_per_second(self) -> float:
        """Equation (1) with the analytical ``F_rec``."""
        return update_cost(self.lifetime_seconds, self.reconciliation_rate_per_node())

    def total_messages(self, duration_seconds: float) -> float:
        """Total push + reconciliation messages over a window (Figure 6's y-axis)."""
        if duration_seconds < 0:
            raise ConfigurationError("duration must be non-negative")
        push = self.domain_size * duration_seconds / self.lifetime_seconds
        rounds = duration_seconds / self.reconciliation_interval()
        return push + rounds * self.reconciliation_messages_per_round()

    def messages_per_node(self, duration_seconds: float) -> float:
        return self.total_messages(duration_seconds) / self.domain_size
