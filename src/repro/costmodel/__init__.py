"""The analytical cost model of Section 6.1.

* :mod:`repro.costmodel.update_cost` — equation (1): push + reconciliation
  traffic per node per second,
* :mod:`repro.costmodel.query_cost` — ``C_d``, ``C_f`` and equation (2): the
  total query cost of the summary-querying algorithm,
* :mod:`repro.costmodel.storage` — the storage cost ``C_m`` of a summary
  hierarchy.
"""

from repro.costmodel.query_cost import (
    domain_query_cost,
    inter_domain_flooding_cost,
    total_query_cost,
)
from repro.costmodel.storage import hierarchy_storage_cost, merged_storage_cost
from repro.costmodel.update_cost import UpdateCostModel, update_cost

__all__ = [
    "update_cost",
    "UpdateCostModel",
    "domain_query_cost",
    "inter_domain_flooding_cost",
    "total_query_cost",
    "hierarchy_storage_cost",
    "merged_storage_cost",
]
