"""Storage cost — ``C_m`` of Section 6.1.1.

For a ``B``-ary hierarchy of average depth ``d``, there are
``(B^{d+1} - 1) / (B - 1)`` summaries; with ``k`` bytes per summary (the paper
estimates 512 bytes from real tests), the space requirement is
``C_m = k · (B^{d+1} - 1) / (B - 1)``.  Merging two hierarchies yields a
hierarchy whose size stays in the order of the larger input, and the size is
anyway bounded by the number of descriptor combinations of the background
knowledge.
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError
from repro.fuzzy.background import BackgroundKnowledge
from repro.saintetiq.hierarchy import DEFAULT_SUMMARY_SIZE_BYTES


def node_count(arity: float, depth: int) -> float:
    """Number of nodes of a complete ``arity``-ary tree of depth ``depth``."""
    if arity <= 0:
        raise ConfigurationError("arity must be positive")
    if depth < 0:
        raise ConfigurationError("depth must be non-negative")
    if arity == 1:
        return float(depth + 1)
    return (arity ** (depth + 1) - 1) / (arity - 1)


def hierarchy_storage_cost(
    arity: float,
    depth: int,
    summary_size_bytes: int = DEFAULT_SUMMARY_SIZE_BYTES,
) -> float:
    """``C_m = k · (B^{d+1} - 1) / (B - 1)`` bytes."""
    if summary_size_bytes <= 0:
        raise ConfigurationError("summary_size_bytes must be positive")
    return summary_size_bytes * node_count(arity, depth)


def merged_storage_cost(cost_first: float, cost_second: float) -> float:
    """Size bound after merging: on the order of the larger input hierarchy."""
    if cost_first < 0 or cost_second < 0:
        raise ConfigurationError("storage costs must be non-negative")
    return max(cost_first, cost_second)


def maximum_storage_cost(
    background: BackgroundKnowledge,
    summary_size_bytes: int = DEFAULT_SUMMARY_SIZE_BYTES,
    arity: float = 4.0,
) -> float:
    """Upper bound on any hierarchy's size under a given background knowledge.

    The number of leaves is bounded by the number of descriptor combinations
    (the grid size); internal nodes add at most a ``1/(B-1)`` fraction on top.
    """
    leaves = background.grid_size()
    if arity <= 1:
        internal = leaves
    else:
        internal = leaves / (arity - 1.0)
    return summary_size_bytes * (leaves + internal)
