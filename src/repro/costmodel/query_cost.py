"""Query cost — ``C_d``, ``C_f`` and equation (2) of the paper.

* Per-domain cost: ``C_d = 1 + |P_Q| + (1 - FP) · |P_Q|`` messages — the query
  to the summary peer, one query per relevant peer and the responses of those
  actually holding data.
* Inter-domain flooding cost:
  ``C_f = ((1 - FP) · |P_Q| + 2) · Σ_{i=1..TTL} k^i`` messages, where ``k`` is
  the average degree: the answering peers, the originator and the summary peer
  each start a TTL-bounded flood.
* Total cost (eq. 2): the number of visited domains is
  ``C_t / ((1 - FP) · |P_Q|)`` and
  ``C_Q = C_d · C_t/((1-FP)|P_Q|) + C_f · (1 - C_t/((1-FP)|P_Q|))``.

The paper instantiates this with a 10 % query hit per domain equal to 10 % of
the relevant peers, hence ``C_Q = 10 · C_d + 9 · C_f`` (Section 6.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError


def domain_query_cost(relevant_peers: float, false_positive_rate: float = 0.0) -> float:
    """``C_d = 1 + |P_Q| + (1 - FP) · |P_Q|`` messages."""
    if relevant_peers < 0:
        raise ConfigurationError("the number of relevant peers must be non-negative")
    if not 0.0 <= false_positive_rate <= 1.0:
        raise ConfigurationError("the false-positive rate must lie in [0, 1]")
    return 1.0 + relevant_peers + (1.0 - false_positive_rate) * relevant_peers


def inter_domain_flooding_cost(
    relevant_peers: float,
    false_positive_rate: float = 0.0,
    average_degree: float = 3.5,
    ttl: int = 3,
) -> float:
    """``C_f = ((1 - FP) · |P_Q| + 2) · Σ_{i=1..TTL} k^i`` messages."""
    if ttl < 1:
        raise ConfigurationError("the flooding TTL must be at least 1")
    if average_degree <= 0:
        raise ConfigurationError("the average degree must be positive")
    responders = (1.0 - false_positive_rate) * relevant_peers
    reach = sum(average_degree**i for i in range(1, ttl + 1))
    return (responders + 2.0) * reach


def total_query_cost(
    required_results: float,
    relevant_peers_per_domain: float,
    false_positive_rate: float = 0.0,
    average_degree: float = 3.5,
    ttl: int = 3,
) -> float:
    """Equation (2): the total cost of a summary-routed query.

    ``required_results`` is ``C_t``; ``relevant_peers_per_domain`` is ``|P_Q|``
    (the paper assumes one result tuple per relevant peer, so the number of
    domains to visit is ``C_t / ((1-FP)·|P_Q|)``).
    """
    if required_results < 0:
        raise ConfigurationError("required_results must be non-negative")
    responders = (1.0 - false_positive_rate) * relevant_peers_per_domain
    if responders <= 0:
        raise ConfigurationError(
            "each domain must provide at least some responders; got "
            f"(1 - FP) * |P_Q| = {responders}"
        )
    domains_to_visit = required_results / responders
    c_d = domain_query_cost(relevant_peers_per_domain, false_positive_rate)
    c_f = inter_domain_flooding_cost(
        relevant_peers_per_domain, false_positive_rate, average_degree, ttl
    )
    return c_d * domains_to_visit + c_f * max(0.0, domains_to_visit - 1.0)


@dataclass(frozen=True)
class PaperQueryScenario:
    """The exact scenario of Section 6.2.3.

    The query hit is 10 % of the total number of peers and each visited domain
    provides 10 % of the relevant peers (1 % of the network), hence 10 domains
    are visited and ``C_Q = 10 · C_d + 9 · C_f``.
    """

    peer_count: int
    hit_rate: float = 0.1
    per_domain_share: float = 0.1
    false_positive_rate: float = 0.0
    average_degree: float = 3.5
    ttl: int = 3

    def relevant_peers_per_domain(self) -> float:
        return self.hit_rate * self.per_domain_share * self.peer_count

    def domains_to_visit(self) -> float:
        return 1.0 / self.per_domain_share

    def summary_querying_cost(self) -> float:
        """``C_Q`` of the summary-querying (SQ) algorithm."""
        per_domain = self.relevant_peers_per_domain()
        c_d = domain_query_cost(per_domain, self.false_positive_rate)
        c_f = inter_domain_flooding_cost(
            per_domain, self.false_positive_rate, self.average_degree, self.ttl
        )
        domains = self.domains_to_visit()
        return c_d * domains + c_f * (domains - 1.0)
