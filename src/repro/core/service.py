"""The per-peer local summary service.

Each peer runs a summarization process integrated to its DBMS (Section 3.2):
it keeps a local summary hierarchy in sync with the local database and exposes
the drift signal that drives the *push* phase of maintenance — a partner peer
"observes the modification rate issued on its local summary" and, when the
summary is considered modified enough, flags its cooperation-list entry.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Mapping, Optional

from repro.database.engine import LocalDatabase
from repro.exceptions import ProtocolError
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.clustering import ClusteringParameters
from repro.saintetiq.hierarchy import SummaryHierarchy


class LocalSummaryService:
    """Builds and incrementally maintains one peer's local summary."""

    def __init__(
        self,
        peer_id: str,
        background: BackgroundKnowledge,
        database: Optional[LocalDatabase] = None,
        attributes: Optional[Iterable[str]] = None,
        parameters: Optional[ClusteringParameters] = None,
    ) -> None:
        self._peer_id = peer_id
        self._background = background
        self._database = database
        self._attributes = list(attributes) if attributes is not None else None
        self._parameters = parameters
        self._summary: Optional[SummaryHierarchy] = SummaryHierarchy(
            background,
            attributes=self._attributes,
            parameters=parameters,
            owner=peer_id,
        )
        self._summary_loader: Optional[Callable[[], SummaryHierarchy]] = None
        #: Signature of the local summary at the last publication (the version
        #: merged into the domain's global summary).
        self._published_signature: FrozenSet[Descriptor] = frozenset()
        self._database_version_summarized = 0
        #: Metrics+trace hook; None keeps the service uninstrumented.
        self.observability = None

    # -- accessors ---------------------------------------------------------------------

    @property
    def peer_id(self) -> str:
        return self._peer_id

    @property
    def summary(self) -> SummaryHierarchy:
        """The live local summary, materializing a pending lazy loader."""
        if self._summary is None and self._summary_loader is not None:
            summary = self._summary_loader()
            self._summary_loader = None
            self._summary = summary
            if self.observability is not None:
                self.observability.inc("repro_service_lazy_materializations_total")
            # A lazily restored service learns its clustering setup from the
            # rehydrated hierarchy instead of a payload peek at open time.
            if self._attributes is None:
                self._attributes = list(summary.attributes)
            if self._parameters is None:
                self._parameters = summary._builder.parameters
        assert self._summary is not None
        return self._summary

    def bind_summary_loader(self, loader: Callable[[], SummaryHierarchy]) -> None:
        """Defer materialization of the local summary to first access."""
        self._summary = None
        self._summary_loader = loader

    @property
    def summary_pending(self) -> bool:
        """True while a bound lazy loader has not been materialized yet."""
        return self._summary_loader is not None

    @property
    def background(self) -> BackgroundKnowledge:
        return self._background

    @property
    def database(self) -> Optional[LocalDatabase]:
        return self._database

    # -- construction / incremental maintenance -------------------------------------------

    def rebuild_from_database(self, relation_name: Optional[str] = None) -> int:
        """(Re)build the local summary from the attached database.

        Returns the number of records summarized.  With ``relation_name`` the
        rebuild is restricted to that relation; otherwise every relation is
        summarized.
        """
        if self._database is None:
            raise ProtocolError(
                f"peer {self._peer_id!r} has no database to summarize"
            )
        if self._summary_loader is not None and self._attributes is None:
            # Materialize once so the rebuilt hierarchy keeps the restored
            # attribute selection and clustering parameters.
            _ = self.summary
        self._summary_loader = None
        self._summary = SummaryHierarchy(
            self._background,
            attributes=self._attributes,
            parameters=self._parameters,
            owner=self._peer_id,
        )
        names = (
            [relation_name]
            if relation_name is not None
            else self._database.relation_names
        )
        processed = 0
        for name in names:
            relation = self._database.relation(name)
            for record in relation:
                self._summary.add_record(record.as_dict())
                processed += 1
        self._database_version_summarized = self._database.version()
        if self.observability is not None:
            self.observability.inc("repro_service_rebuilds_total")
            self.observability.inc("repro_service_records_summarized_total", processed)
        return processed

    def add_record(self, record: Mapping[str, object]) -> int:
        """Incrementally incorporate one new record (push-mode DBMS exchange)."""
        return self.summary.add_record(record)

    def refresh_incremental(self) -> int:
        """Incorporate records inserted since the last (re)build.

        The SaintEtiQ maintenance is incremental for insertions; deletions or
        updates require a rebuild, which callers trigger explicitly.  Returns
        the number of records newly incorporated.
        """
        if self._database is None:
            return 0
        if self._database.version() == self._database_version_summarized:
            return 0
        # Without a redo log the simplest faithful incremental strategy is to
        # re-incorporate records beyond the previously summarized count per
        # relation; true deletions fall back to ``rebuild_from_database``.
        return self.rebuild_from_database()

    # -- publication / drift ------------------------------------------------------------------

    def publish(self) -> SummaryHierarchy:
        """Snapshot the local summary as the version shipped to the superpeer."""
        summary = self.summary
        snapshot = summary.snapshot()
        self._published_signature = summary.signature()
        return snapshot

    def drift_since_publication(self) -> float:
        """Descriptor-level drift between the live summary and the published one."""
        return self.summary.drift_from(self._published_signature)

    def should_push(self, drift_threshold: float) -> bool:
        """Whether the peer should send a ``push`` message (Section 4.2.1)."""
        return self.drift_since_publication() > drift_threshold

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        if self._summary is None:
            return f"LocalSummaryService(peer={self._peer_id!r}, summary=<lazy>)"
        return (
            f"LocalSummaryService(peer={self._peer_id!r}, "
            f"records={self._summary.records_processed})"
        )
