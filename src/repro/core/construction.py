"""The summary construction protocol (Section 4.1).

The construction starts at each superpeer (the *summary peer*, SP), which
broadcasts a ``sumpeer`` message with a small TTL.  A peer receiving its first
``sumpeer`` replies with a ``localsum`` message carrying its local summary and
becomes a partner of that SP's domain; a peer that is already a partner
switches only if the new SP is closer (lower latency), in which case it first
sends a ``drop`` message to its old SP.  Peers reached by no broadcast find a
summary peer with a *selective walk* (highest-degree-neighbour random walk)
and the ``find`` message stops as soon as a partner or a summary peer is hit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.config import ProtocolConfig
from repro.core.domain import Domain
from repro.core.freshness import Freshness
from repro.exceptions import ProtocolError
from repro.network.messages import MessageType
from repro.network.metrics import MessageCounter
from repro.network.overlay import Overlay
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.merging import merge_hierarchies


@dataclass
class ConstructionReport:
    """What the construction protocol did and how much traffic it generated."""

    domains: Dict[str, Domain] = field(default_factory=dict)
    #: peer -> summary peer assignment (excluding the summary peers themselves)
    assignment: Dict[str, str] = field(default_factory=dict)
    orphan_peers: List[str] = field(default_factory=list)
    messages: MessageCounter = field(default_factory=MessageCounter)

    @property
    def domain_count(self) -> int:
        return len(self.domains)

    def domain_of(self, peer_id: str) -> Optional[str]:
        if peer_id in self.domains:
            return peer_id
        return self.assignment.get(peer_id)


class DomainBuilder:
    """Runs the construction protocol over an overlay."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._config = config or ProtocolConfig()
        self._rng = rng or random.Random(0)

    @property
    def config(self) -> ProtocolConfig:
        return self._config

    def build(
        self,
        overlay: Overlay,
        summary_peers: Optional[List[str]] = None,
        local_summaries: Optional[Mapping[str, SummaryHierarchy]] = None,
        counter: Optional[MessageCounter] = None,
        now: float = 0.0,
    ) -> ConstructionReport:
        """Build every domain of the overlay.

        Parameters
        ----------
        overlay:
            The P2P overlay (peers must be marked online/offline already).
        summary_peers:
            Identifiers of the summary peers.  When omitted, the highest-degree
            nodes are elected using ``config.superpeer_fraction``.
        local_summaries:
            Optional mapping ``peer_id -> local summary``; when provided, each
            domain's global summary is materialised by merging its partners'
            summaries (plus the summary peer's own, if present).
        counter:
            Message counter to use; a fresh one is created otherwise.
        """
        report = ConstructionReport()
        report.messages = counter if counter is not None else MessageCounter()

        if summary_peers is None:
            summary_peers = overlay.elect_superpeers(
                fraction=self._config.superpeer_fraction
            )
        if not summary_peers:
            raise ProtocolError("construction needs at least one summary peer")

        for sp_id in summary_peers:
            report.domains[sp_id] = Domain.create(
                sp_id, mode=self._config.freshness_mode
            )

        self._broadcast_phase(overlay, summary_peers, report, now)
        self._orphan_phase(overlay, summary_peers, report, now)

        if local_summaries is not None:
            self._materialise_global_summaries(report, local_summaries)
        return report

    # -- phase 1: sumpeer broadcasts ------------------------------------------------------

    def _broadcast_phase(
        self,
        overlay: Overlay,
        summary_peers: List[str],
        report: ConstructionReport,
        now: float,
    ) -> None:
        ttl = self._config.construction_ttl
        for sp_id in summary_peers:
            if not overlay.peer(sp_id).online:
                continue
            # Traffic of the TTL-bounded sumpeer broadcast.
            report.messages.record_type(
                MessageType.SUMPEER, overlay.flood_message_count(sp_id, ttl)
            )
            reached = overlay.within_ttl(sp_id, ttl)
            for peer_id, hops in sorted(reached.items(), key=lambda kv: (kv[1], kv[0])):
                if peer_id in report.domains:
                    continue  # other summary peers keep their own domain
                self._consider_partnership(
                    overlay, report, peer_id, sp_id, now=now
                )

    def _consider_partnership(
        self,
        overlay: Overlay,
        report: ConstructionReport,
        peer_id: str,
        sp_id: str,
        now: float,
    ) -> None:
        peer = overlay.peer(peer_id)
        if not peer.online:
            return
        distance = overlay.latency(peer_id, sp_id)
        current_sp = report.assignment.get(peer_id)
        if current_sp is None:
            self._join(report, peer_id, sp_id, distance, now)
            return
        current_distance = report.domains[current_sp].distance_to(peer_id)
        if distance < current_distance:
            # Drop the old partnership, then join the closer summary peer.
            report.messages.record_type(MessageType.DROP)
            report.domains[current_sp].remove_partner(peer_id)
            self._join(report, peer_id, sp_id, distance, now)

    def _join(
        self,
        report: ConstructionReport,
        peer_id: str,
        sp_id: str,
        distance: float,
        now: float,
    ) -> None:
        report.messages.record_type(MessageType.LOCALSUM)
        report.domains[sp_id].add_partner(
            peer_id, distance=distance, freshness=Freshness.FRESH, now=now
        )
        report.assignment[peer_id] = sp_id

    # -- phase 2: orphans use a selective walk ---------------------------------------------

    def _orphan_phase(
        self,
        overlay: Overlay,
        summary_peers: List[str],
        report: ConstructionReport,
        now: float,
    ) -> None:
        summary_peer_set = set(summary_peers)
        for peer_id in overlay.peer_ids:
            peer = overlay.peer(peer_id)
            if not peer.online:
                continue
            if peer_id in summary_peer_set or peer_id in report.assignment:
                continue
            target, hops = overlay.selective_walk(
                peer_id,
                stop_condition=lambda candidate: (
                    candidate in summary_peer_set or candidate in report.assignment
                ),
                max_hops=self._config.selective_walk_max_hops,
                rng=self._rng,
            )
            report.messages.record_type(MessageType.FIND, max(hops, 1))
            if target is None:
                report.orphan_peers.append(peer_id)
                continue
            sp_id = target if target in summary_peer_set else report.assignment[target]
            distance = overlay.latency(peer_id, sp_id)
            self._join(report, peer_id, sp_id, distance, now)

    # -- global summary materialisation ------------------------------------------------------

    def _materialise_global_summaries(
        self,
        report: ConstructionReport,
        local_summaries: Mapping[str, SummaryHierarchy],
    ) -> None:
        for sp_id, domain in report.domains.items():
            members = list(domain.partner_ids)
            if sp_id in local_summaries and sp_id not in members:
                members.append(sp_id)
            hierarchies = [
                local_summaries[peer_id]
                for peer_id in members
                if peer_id in local_summaries and not local_summaries[peer_id].is_empty()
            ]
            if not hierarchies:
                continue
            domain.install_global_summary(
                merge_hierarchies(hierarchies, owner=sp_id)
            )
