"""Cooperation lists.

Each global summary is associated with a *Cooperation List* (CL) describing
its partner peers: one entry per partner, carrying the partner identifier and
a freshness value (Section 4.1).  The list is the superpeer's only state about
its domain besides the global summary itself; the reconciliation decision is
taken by watching the fraction of old descriptions it records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.core.freshness import Freshness, FreshnessMode
from repro.exceptions import ProtocolError


@dataclass
class CooperationEntry:
    """One partner's entry in the cooperation list."""

    peer_id: str
    freshness: Freshness = Freshness.FRESH
    #: Virtual time at which the entry last changed (diagnostic only).
    updated_at: float = 0.0


class CooperationList:
    """The cooperation list of one global summary."""

    def __init__(self, mode: FreshnessMode = FreshnessMode.ONE_BIT) -> None:
        self._entries: Dict[str, CooperationEntry] = {}
        self._mode = mode

    # -- membership -----------------------------------------------------------------

    @property
    def mode(self) -> FreshnessMode:
        return self._mode

    def add_partner(
        self,
        peer_id: str,
        freshness: Freshness = Freshness.FRESH,
        now: float = 0.0,
    ) -> CooperationEntry:
        """Add (or reset) a partner entry.

        Newly joining peers whose data is not yet merged enter with
        ``Freshness.STALE`` (Section 4.3: "SP adds a new element to the
        cooperation list with a freshness value equal to one").
        """
        entry = CooperationEntry(peer_id=peer_id, freshness=freshness, updated_at=now)
        self._entries[peer_id] = entry
        return entry

    def remove_partner(self, peer_id: str) -> None:
        if peer_id not in self._entries:
            raise ProtocolError(f"peer {peer_id!r} is not a partner")
        del self._entries[peer_id]

    def is_partner(self, peer_id: str) -> bool:
        return peer_id in self._entries

    def entry(self, peer_id: str) -> CooperationEntry:
        try:
            return self._entries[peer_id]
        except KeyError as exc:
            raise ProtocolError(f"peer {peer_id!r} is not a partner") from exc

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CooperationEntry]:
        return iter(self._entries.values())

    def __contains__(self, peer_id: object) -> bool:
        return peer_id in self._entries

    # -- freshness updates -------------------------------------------------------------

    def set_freshness(
        self, peer_id: str, freshness: Freshness, now: float = 0.0
    ) -> None:
        entry = self.entry(peer_id)
        if self._mode is FreshnessMode.ONE_BIT and freshness is Freshness.UNAVAILABLE:
            freshness = Freshness.STALE
        entry.freshness = freshness
        entry.updated_at = now

    def mark_stale(self, peer_id: str, now: float = 0.0) -> None:
        self.set_freshness(peer_id, Freshness.STALE, now=now)

    def mark_departed(self, peer_id: str, now: float = 0.0) -> None:
        """Record a graceful departure (value 2, or 1 in 1-bit mode)."""
        self.set_freshness(peer_id, self._mode.encode_departure(), now=now)

    def reset_all(self, now: float = 0.0) -> None:
        """Reset every entry to fresh (end of a reconciliation, Section 4.2.2)."""
        for entry in self._entries.values():
            entry.freshness = Freshness.FRESH
            entry.updated_at = now

    # -- views -----------------------------------------------------------------------------

    @property
    def partner_ids(self) -> List[str]:
        return list(self._entries)

    def fresh_partners(self) -> List[str]:
        """``P_fresh`` — partners whose descriptions are fresh."""
        return [
            entry.peer_id
            for entry in self._entries.values()
            if entry.freshness.is_fresh
        ]

    def old_partners(self) -> List[str]:
        """``P_old`` — partners whose descriptions are stale or unavailable."""
        return [
            entry.peer_id
            for entry in self._entries.values()
            if entry.freshness.counts_as_old
        ]

    def unavailable_partners(self) -> List[str]:
        return [
            entry.peer_id
            for entry in self._entries.values()
            if entry.freshness is Freshness.UNAVAILABLE
        ]

    def old_fraction(self) -> float:
        """``sum(v) / |CL|`` in 1-bit terms: the quantity compared to α."""
        if not self._entries:
            return 0.0
        old = sum(1 for entry in self._entries.values() if entry.freshness.counts_as_old)
        return old / len(self._entries)

    def needs_reconciliation(self, alpha: float) -> bool:
        """The trigger condition of Section 4.2.2."""
        if not self._entries:
            return False
        return self.old_fraction() >= alpha

    def freshness_of(self, peer_id: str) -> Optional[Freshness]:
        entry = self._entries.get(peer_id)
        return entry.freshness if entry is not None else None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"CooperationList({len(self._entries)} partners, "
            f"{self.old_fraction():.2%} old)"
        )
