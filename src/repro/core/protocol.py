"""The end-to-end protocol engine.

:class:`SummaryManagementSystem` ties every piece together on top of the
discrete-event simulator: overlay + domains + local summaries + maintenance +
churn + query routing.  The experiments of Section 6 are driven entirely
through this class, in one of two content modes:

* **real content** — peers own actual databases and summaries
  (:meth:`attach_databases`): used by the examples and integration tests;
* **planned content** — each query is matched by a configurable fraction of
  peers (:meth:`use_planned_content`): the evaluation mode of the paper
  (Table 3 fixes the query hit rate at 10 %), which scales to thousands of
  peers because no real summaries need to be built.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability

from repro.core.config import ProtocolConfig
from repro.core.construction import ConstructionReport, DomainBuilder
from repro.core.content import ContentModel, PlannedContentModel, SummaryContentModel
from repro.core.domain import Domain
from repro.core.dynamicity import ChurnHandler
from repro.core.maintenance import ColdStartRecord, MaintenanceEngine
from repro.core.routing import (
    DomainQueryOutcome,
    QueryRequest,
    QueryRouter,
    QueryRoutingResult,
    RoutingPolicy,
)
from repro.core.freshness import Freshness
from repro.database.engine import LocalDatabase
from repro.database.query import SelectionQuery
from repro.exceptions import NetworkError, ProtocolError
from repro.fuzzy.background import BackgroundKnowledge
from repro.network.churn import LifetimeDistribution
from repro.network.faults import FaultInjector, FaultPlan, backoff_total
from repro.network.messages import MessageType
from repro.network.metrics import MessageCounter, TrafficReport
from repro.network.overlay import Overlay
from repro.network.peer import PeerRole
from repro.network.simulator import Simulator
from repro.runtime import ExecutionBackend, RuntimeSpec, create_backend
from repro.core.service import LocalSummaryService
from repro.querying.proposition import Proposition
from repro.querying.reformulation import reformulate
from repro.saintetiq.hierarchy import SummaryHierarchy

#: Message types that count toward the *update* cost (Figure 6 / eq. 1).
UPDATE_MESSAGE_TYPES = (MessageType.PUSH, MessageType.RECONCILIATION)
#: Message types that count toward the *query* cost (Figure 7 / eq. 2).
QUERY_MESSAGE_TYPES = (
    MessageType.QUERY,
    MessageType.QUERY_RESPONSE,
    MessageType.FLOOD_REQUEST,
    MessageType.FLOOD_QUERY,
)


@dataclass
class StalenessSnapshot:
    """Worst-case and real staleness figures for one sampled query.

    ``worst_*`` follows the paper's pessimistic accounting (every stale
    partner selected in ``P_Q`` is a false positive; every stale matching
    partner outside ``P_Q`` is a false negative).  ``real_*`` applies the
    probability that a stale partner's data actually changed with respect to
    the query (Figure 5's correction).
    """

    query_id: int
    relevant_count: int
    worst_false_positives: int
    worst_false_negatives: int
    real_false_positives: int
    real_false_negatives: int

    @property
    def worst_stale_fraction(self) -> float:
        if self.relevant_count == 0:
            return 0.0
        return (
            self.worst_false_positives + self.worst_false_negatives
        ) / self.relevant_count

    @property
    def real_false_negative_fraction(self) -> float:
        if self.relevant_count == 0:
            return 0.0
        return self.real_false_negatives / self.relevant_count

    @property
    def real_stale_fraction(self) -> float:
        if self.relevant_count == 0:
            return 0.0
        return (
            self.real_false_positives + self.real_false_negatives
        ) / self.relevant_count


class _QueryBatchState:
    """Derived state shared by the queries of one batch.

    Nothing in here is protocol state: it only memoizes values that are
    *recomputed identically* for every query of a batch (no simulation event
    can run between batched queries, so domains, described sets and
    cooperation lists cannot change mid-batch).
    """

    __slots__ = ("visit_orders", "staleness_scaffold")

    def __init__(self) -> None:
        #: home summary-peer id (or None) -> ordered domain visit list.
        self.visit_orders: Dict[Optional[str], List[Domain]] = {}
        #: Per-domain (partners, described, stale, online) tuples.
        self.staleness_scaffold: Optional[
            List[Tuple[Set[str], Set[str], Set[str], Set[str]]]
        ] = None


class SummaryManagementSystem:
    """Top-level orchestrator of the summary-management protocols."""

    def __init__(
        self,
        overlay: Overlay,
        config: Optional[ProtocolConfig] = None,
        background: Optional[BackgroundKnowledge] = None,
        seed: int = 0,
        runtime: RuntimeSpec = None,
    ) -> None:
        self._overlay = overlay
        self._config = config or ProtocolConfig()
        self._background = background
        # The execution backend owns the virtual clock and decides how
        # scheduled events run (single-threaded simulator by default, asyncio
        # fan-out with ``runtime="concurrent"``).  ``self._simulator`` stays
        # bound to the backend's clock so every clock read and checkpoint
        # hook below is backend-agnostic.
        self._runtime = create_backend(runtime)
        self._rng = self._runtime.create_rng(seed)
        self._counter = MessageCounter()
        self._simulator = self._runtime.clock
        self._maintenance = MaintenanceEngine(self._config, self._counter)
        self._churn = ChurnHandler(
            self._config, self._counter, self._maintenance, rng=self._rng
        )
        self._router = QueryRouter(self._config, self._counter)
        self._builder = DomainBuilder(self._config, rng=self._rng)

        self._domains: Dict[str, Domain] = {}
        self._assignment: Dict[str, str] = {}
        self._described: Dict[str, Set[str]] = {}
        self._services: Dict[str, LocalSummaryService] = {}
        self._databases: Dict[str, LocalDatabase] = {}
        self._queries: Dict[int, SelectionQuery] = {}
        self._content: Optional[ContentModel] = None
        self._query_counter = 0
        self._query_results: List[QueryRoutingResult] = []
        self._batch_state: Optional[_QueryBatchState] = None
        self._query_engine_enabled = True
        # The fault layer is opt-in: None means every protocol path runs its
        # historical, infallible-network code byte for byte.
        self._faults: Optional[FaultInjector] = None
        # Observability is equally opt-in: None keeps every hot path a single
        # pointer test away from the uninstrumented build.
        self._obs: Optional["Observability"] = None

    # -- accessors ---------------------------------------------------------------------------

    @property
    def overlay(self) -> Overlay:
        return self._overlay

    @property
    def config(self) -> ProtocolConfig:
        return self._config

    @property
    def background(self) -> Optional[BackgroundKnowledge]:
        return self._background

    @property
    def simulator(self) -> Simulator:
        """The virtual clock (the runtime backend's event queue + ``now``)."""
        return self._simulator

    @property
    def runtime(self) -> ExecutionBackend:
        """The execution backend driving scheduled events."""
        return self._runtime

    @property
    def counter(self) -> MessageCounter:
        return self._counter

    @property
    def maintenance(self) -> MaintenanceEngine:
        return self._maintenance

    @property
    def domains(self) -> Dict[str, Domain]:
        return self._domains

    @property
    def assignment(self) -> Dict[str, str]:
        return dict(self._assignment)

    @property
    def content(self) -> Optional[ContentModel]:
        return self._content

    @property
    def query_results(self) -> List[QueryRoutingResult]:
        return list(self._query_results)

    @property
    def rng(self) -> random.Random:
        """The system RNG (its state is captured by session checkpoints)."""
        return self._rng

    @property
    def query_engine_enabled(self) -> bool:
        """Whether queries run through the indexed/memoized fast path.

        On by default.  Disabling it falls back to the legacy per-query
        work — a full online-peer scan per domain and pure tree-walk
        selection — which is byte-identical in every protocol-visible
        outcome (routing sets, message counts, staleness) and is retained as
        the uncached reference for equivalence tests and the
        ``bench_query_engine`` A/B guard.
        """
        return self._query_engine_enabled

    @query_engine_enabled.setter
    def query_engine_enabled(self, enabled: bool) -> None:
        self._query_engine_enabled = bool(enabled)
        if isinstance(self._content, SummaryContentModel):
            self._content.use_selection_cache = self._query_engine_enabled
        self._router.use_set_matching = self._query_engine_enabled
        self._router.flooding_cache_enabled = self._query_engine_enabled

    @property
    def services(self) -> Dict[str, "LocalSummaryService"]:
        """Per-peer local summary services (real-content mode)."""
        return dict(self._services)

    @property
    def databases(self) -> Dict[str, LocalDatabase]:
        return dict(self._databases)

    @property
    def described(self) -> Dict[str, Set[str]]:
        """Per-domain set of partners the installed global summary describes."""
        return {sp_id: set(peers) for sp_id, peers in self._described.items()}

    def domain_of(self, peer_id: str) -> Optional[Domain]:
        if peer_id in self._domains:
            return self._domains[peer_id]
        sp_id = self._assignment.get(peer_id)
        return self._domains.get(sp_id) if sp_id is not None else None

    # -- content configuration ----------------------------------------------------------------

    def attach_databases(
        self, databases: Mapping[str, LocalDatabase], rebuild_summaries: bool = True
    ) -> None:
        """Attach real databases to peers and build their local summaries."""
        if self._background is None:
            raise ProtocolError(
                "attach_databases requires a background knowledge at construction"
            )
        for peer_id, database in databases.items():
            peer = self._overlay.peer(peer_id)
            peer.attach_database(database)
            self._databases[peer_id] = database
            service = LocalSummaryService(
                peer_id, self._background, database=database
            )
            if self._obs is not None:
                service.observability = self._obs
            if rebuild_summaries:
                service.rebuild_from_database()
            self._services[peer_id] = service
            peer.attach_summary(service.summary)
        self._content = SummaryContentModel(
            self._queries,
            self._databases,
            use_selection_cache=self._query_engine_enabled,
        )

    def use_planned_content(
        self, matching_fraction: float = 0.1, seed: int = 0
    ) -> PlannedContentModel:
        """Switch to the content-free evaluation mode of Table 3."""
        model = PlannedContentModel(
            self._overlay.peer_ids, matching_fraction=matching_fraction, seed=seed
        )
        self._content = model
        return model

    def local_summaries(self) -> Dict[str, SummaryHierarchy]:
        return {
            peer_id: service.summary for peer_id, service in self._services.items()
        }

    # -- persistence hooks ---------------------------------------------------------------------

    def attach_store(self, target: object) -> None:
        """Point the maintenance engine at a persistent store.

        ``target`` is a store path or an opened
        :class:`~repro.store.StoreBackend`.  Reconciliations then archive
        each domain's head (global summary + per-partner local summaries,
        content-addressed) and :meth:`cold_start_domain` can rebuild a
        restarted summary peer from it.  Attachment itself sends no messages
        and draws no randomness, so it never perturbs a running simulation.
        Note that checkpoints do not capture the attachment: re-attach after
        ``SystemBuilder.from_checkpoint``, exactly like the background
        knowledge.  The system keeps using the backend until
        :meth:`detach_store` — detach before closing a backend you opened,
        or the next materialising reconciliation will fail archiving its
        head.
        """
        from repro.store.backend import open_store
        from repro.store.snapshots import DomainHeadArchive, SnapshotStore

        backend = open_store(target)
        snapshots = SnapshotStore(backend)
        snapshots.observability = self._obs
        self._maintenance.attach_store(
            snapshots,
            DomainHeadArchive(backend),
            background=self._background,
        )

    def detach_store(self) -> None:
        """Stop archiving reconciliation heads (see :meth:`attach_store`)."""
        self._maintenance.detach_store()

    def cold_start_domain(self, sp_id: str) -> ColdStartRecord:
        """Store-backed cold start of one domain's restarted summary peer.

        The domain's global summary is installed from the archived head
        (snapshot-hash lookup) and only the partners that changed since —
        new joiners and stale pushers — are pulled, instead of re-reconciling
        every partner from scratch.  See
        :meth:`repro.core.maintenance.MaintenanceEngine.cold_start`.
        """
        domain = self._domains.get(sp_id)
        if domain is None:
            raise ProtocolError(f"{sp_id!r} is not a live summary peer")
        online = {
            peer_id
            for peer_id in domain.partner_ids
            if self._overlay.peer(peer_id).online
            and self._assignment.get(peer_id) == sp_id
        }
        local = self.local_summaries() if self._services else None
        record = self._maintenance.cold_start(
            domain,
            local_summaries=local,
            available_partners=online,
            now=self._simulator.now,
        )
        self._described[sp_id] = set(domain.partner_ids)
        return record

    # -- fault injection -----------------------------------------------------------------------

    @property
    def faults(self) -> Optional[FaultInjector]:
        """The installed fault injector, or None (infallible network)."""
        return self._faults

    def install_fault_plan(self, plan: FaultPlan) -> FaultInjector:
        """Install a fault plan: create the injector and schedule its events.

        Every scheduled adversity (partition, heal, domain failure, massacre,
        flash crowd) goes through the same declarative event specs as churn
        and modifications, so pending fault events checkpoint and restore like
        any other.  The injector draws from its own seeded RNG; installing a
        plan with no faults leaves every run byte-identical to an uninstalled
        one.
        """
        injector = FaultInjector(plan)
        self._faults = injector
        for partition in plan.partitions:
            spec: Dict[str, object] = {
                "kind": "partition",
                "fraction": partition.fraction,
            }
            if partition.groups is not None:
                spec["groups"] = [list(group) for group in partition.groups]
            self.schedule_event_from_spec(spec, at=partition.at)
            if partition.heal_at is not None:
                self.schedule_event_from_spec({"kind": "heal"}, at=partition.heal_at)
        for failure in plan.domain_failures:
            self.schedule_event_from_spec(
                {"kind": "domain_failure", "count": failure.count}, at=failure.at
            )
        for massacre in plan.massacres:
            spec = {
                "kind": "massacre",
                "fraction": massacre.fraction,
                "graceful": massacre.graceful,
            }
            if massacre.rejoin_after is not None:
                spec["rejoin_after"] = massacre.rejoin_after
            self.schedule_event_from_spec(spec, at=massacre.at)
        for crowd in plan.flash_crowds:
            spec = {"kind": "flash_crowd"}
            if crowd.rejoin_count is not None:
                spec["rejoin_count"] = crowd.rejoin_count
            self.schedule_event_from_spec(spec, at=crowd.at)
        return injector

    def attach_fault_state(self, injector: FaultInjector) -> None:
        """Adopt an already-live injector (checkpoint restore).

        Unlike :meth:`install_fault_plan` this schedules nothing: the pending
        fault events travel in the checkpoint's event queue and are restored
        with it.
        """
        self._faults = injector

    def _ensure_faults(self) -> FaultInjector:
        if self._faults is None:
            self._faults = FaultInjector(FaultPlan())
        return self._faults

    # -- observability -------------------------------------------------------------------------

    @property
    def observability(self) -> Optional["Observability"]:
        """The installed observability hook, or None (uninstrumented run)."""
        return self._obs

    def install_observability(self, obs: Optional["Observability"]) -> None:
        """Install (or remove, with ``None``) the metrics+trace hook.

        Recording is strictly read-only with respect to protocol state: it
        draws no randomness, sends no messages, and its span ids come from
        counters, so an instrumented run stays byte-identical in answers,
        message counters and RNG state to an uninstrumented one.
        """
        self._obs = obs
        self._router.observability = obs
        for service in self._services.values():
            service.observability = obs
        if self._maintenance._snapshots is not None:  # noqa: SLF001
            self._maintenance._snapshots.observability = obs  # noqa: SLF001
        self._runtime.install_observability(obs)
        if obs is not None:
            obs.bind_sim_clock(lambda: self._simulator.now)

    # -- construction --------------------------------------------------------------------------

    def build_domains(
        self, summary_peers: Optional[List[str]] = None
    ) -> ConstructionReport:
        """Run the construction protocol and install the domains."""
        local = self.local_summaries() if self._services else None
        report = self._builder.build(
            self._overlay,
            summary_peers=summary_peers,
            local_summaries=local,
            counter=self._counter,
            now=self._simulator.now,
        )
        self._domains = report.domains
        self._assignment = dict(report.assignment)
        for peer_id, sp_id in self._assignment.items():
            distance = self._domains[sp_id].distance_to(peer_id)
            self._overlay.peer(peer_id).join_domain(sp_id, distance)
        for sp_id, domain in self._domains.items():
            self._described[sp_id] = set(domain.partner_ids)
            # Summary peers know each other (long-range links of Section 5.2.2).
            self._overlay.peer(sp_id).known_summary_peers = set(self._domains) - {sp_id}
        return report

    # -- churn & modification simulation --------------------------------------------------------

    def schedule_churn(
        self,
        duration_seconds: float,
        lifetime: Optional[LifetimeDistribution] = None,
        downtime_seconds: float = 600.0,
        graceful_fraction: float = 0.9,
        rejoin: bool = True,
        include_summary_peers: bool = False,
    ) -> int:
        """Schedule departure/rejoin events for every partner peer.

        Each peer draws lifetimes from ``lifetime`` (Table 3's skewed
        distribution by default) and alternates online/offline periods until
        ``duration_seconds``.  Departures are graceful with probability
        ``graceful_fraction`` (a push message is then sent), silent failures
        otherwise.  Returns the number of scheduled departure events.
        """
        lifetime = lifetime or LifetimeDistribution()
        scheduled = 0
        for peer_id in self._overlay.peer_ids:
            if peer_id in self._domains and not include_summary_peers:
                continue
            if not self._overlay.peer(peer_id).online:
                continue
            scheduled += self._schedule_peer_cycle(
                peer_id,
                start=0.0,
                horizon=duration_seconds,
                lifetime=lifetime,
                downtime=downtime_seconds,
                graceful_fraction=graceful_fraction,
                rejoin=rejoin,
            )
        return scheduled

    def _schedule_peer_cycle(
        self,
        peer_id: str,
        start: float,
        horizon: float,
        lifetime: LifetimeDistribution,
        downtime: float,
        graceful_fraction: float,
        rejoin: bool,
    ) -> int:
        depart_at = start + lifetime.sample(self._rng)
        if depart_at >= horizon:
            return 0
        graceful = self._rng.random() < graceful_fraction
        self.schedule_event_from_spec(
            {
                "kind": "departure",
                "peer_id": peer_id,
                "graceful": graceful,
                "rejoin": rejoin,
                "depart_at": depart_at,
                "downtime_seconds": downtime,
                "horizon": horizon,
                "graceful_fraction": graceful_fraction,
                "lifetime_mean_seconds": lifetime.mean_seconds,
                "lifetime_median_seconds": lifetime.median_seconds,
            },
            at=depart_at,
        )
        return 1

    # -- declarative event specs ---------------------------------------------------------------
    #
    # Every churn/modification event is scheduled through a plain JSON spec so
    # that pending events can be checkpointed and re-created on restore (the
    # callbacks themselves are closures and cannot be persisted).

    def event_callback_from_spec(self, spec: Mapping[str, object]):
        """Build the simulator callback described by a declarative event spec."""
        kind = spec.get("kind")
        if kind == "departure":
            return lambda: self._run_departure_event(spec)
        if kind == "rejoin":
            return lambda: self._handle_rejoin(str(spec["peer_id"]))
        if kind == "modification":
            return lambda: self._handle_modification(str(spec["peer_id"]))
        if kind == "partition":
            return lambda: self._handle_partition(spec)
        if kind == "heal":
            return lambda: self._handle_heal()
        if kind == "domain_failure":
            return lambda: self._handle_domain_failure(spec)
        if kind == "massacre":
            return lambda: self._handle_massacre(spec)
        if kind == "flash_crowd":
            return lambda: self._handle_flash_crowd(spec)
        raise ProtocolError(f"unknown scheduled-event kind: {kind!r}")

    def schedule_event_from_spec(self, spec: Dict[str, object], at: float) -> None:
        actor = spec.get("peer_id")
        self._runtime.schedule_at(
            at,
            self.event_callback_from_spec(spec),
            label=str(spec["kind"]),
            spec=spec,
            actor=None if actor is None else str(actor),
        )

    def _run_departure_event(self, spec: Mapping[str, object]) -> None:
        peer_id = str(spec["peer_id"])
        self._handle_departure(peer_id, bool(spec["graceful"]))
        if spec["rejoin"]:
            rejoin_at = float(spec["depart_at"]) + float(spec["downtime_seconds"])  # type: ignore[arg-type]
            horizon = float(spec["horizon"])  # type: ignore[arg-type]
            if rejoin_at < horizon:
                self.schedule_event_from_spec(
                    {"kind": "rejoin", "peer_id": peer_id}, at=rejoin_at
                )
                # Schedule the next cycle after the peer is back online.
                self._schedule_peer_cycle(
                    peer_id,
                    start=rejoin_at,
                    horizon=horizon,
                    lifetime=LifetimeDistribution(
                        mean_seconds=float(spec["lifetime_mean_seconds"]),  # type: ignore[arg-type]
                        median_seconds=float(spec["lifetime_median_seconds"]),  # type: ignore[arg-type]
                    ),
                    downtime=float(spec["downtime_seconds"]),  # type: ignore[arg-type]
                    graceful_fraction=float(spec["graceful_fraction"]),  # type: ignore[arg-type]
                    rejoin=True,
                )

    def _handle_departure(self, peer_id: str, graceful: bool) -> None:
        if not self._overlay.peer(peer_id).online:
            return
        now = self._simulator.now
        if isinstance(self._content, PlannedContentModel):
            self._content.mark_departed(peer_id)
        if peer_id in self._domains:
            if graceful:
                self._churn.summary_peer_leave(
                    self._overlay, self._domains, self._assignment, peer_id, now=now
                )
            else:
                self._churn.summary_peer_fail(
                    self._overlay, self._domains, self._assignment, peer_id, now=now
                )
            self._described.pop(peer_id, None)
            return
        if graceful:
            outcome = self._churn.peer_leave(
                self._overlay, self._domains, self._assignment, peer_id, now=now
            )
        else:
            outcome = self._churn.peer_fail(
                self._overlay, self._domains, self._assignment, peer_id, now=now
            )
        if outcome.reconciliation_due and outcome.domain_id is not None:
            self._run_reconciliation(outcome.domain_id)

    def _handle_rejoin(self, peer_id: str) -> None:
        if self._overlay.peer(peer_id).online:
            return
        if isinstance(self._content, PlannedContentModel):
            self._content.mark_rejoined(peer_id)
        if self._try_reclaim_domain(peer_id):
            return
        outcome = self._churn.peer_join(
            self._overlay, self._domains, self._assignment, peer_id, now=self._simulator.now
        )
        if outcome.reconciliation_due and outcome.domain_id is not None:
            self._run_reconciliation(outcome.domain_id)

    def _try_reclaim_domain(self, peer_id: str) -> bool:
        """A restarted summary peer reclaims its archived domain from the store.

        When a store is attached and the rejoining peer has an archived head
        (it was a summary peer before it died), it comes back *as* a summary
        peer: its former partners that are online and not otherwise engaged
        re-attach (one ``sumpeer`` announcement each), and the domain state is
        rebuilt through the store-backed cold start — the PR 4 fast path —
        instead of the peer rejoining someone else's domain and the archived
        domain staying dead.  Returns False (caller falls through to the
        normal join) when there is nothing to reclaim.
        """
        if not self._maintenance.store_attached or peer_id in self._domains:
            return False
        head = self._maintenance.archived_head(peer_id)
        if head is None:
            return False
        now = self._simulator.now
        peer = self._overlay.peer(peer_id)
        peer.role = PeerRole.SUPERPEER
        peer.go_online()
        domain = Domain.create(peer_id, mode=self._config.freshness_mode)
        self._domains[peer_id] = domain
        self._described[peer_id] = set()
        peer.join_domain(peer_id, 0.0)
        peer.known_summary_peers = set(self._domains) - {peer_id}
        for other_sp in self._domains:
            if other_sp != peer_id:
                self._overlay.peer(other_sp).known_summary_peers.add(peer_id)

        former = [pid for pid, _digest in head["partners"] if pid != peer_id]
        reclaimed = 0
        for partner_id in former:
            partner = self._overlay.peer(partner_id)
            if not partner.online or partner_id in self._domains:
                continue
            try:
                distance = self._overlay.latency(partner_id, peer_id)
            except NetworkError:
                continue  # no longer connected to its old summary peer
            old_sp = self._assignment.get(partner_id)
            if old_sp is not None:
                old_domain = self._domains.get(old_sp)
                if old_domain is not None and old_domain.is_partner(partner_id):
                    old_domain.remove_partner(partner_id)
            domain.add_partner(
                partner_id, distance=distance, freshness=Freshness.STALE, now=now
            )
            self._assignment[partner_id] = peer_id
            partner.join_domain(peer_id, distance)
            reclaimed += 1
        # The returning summary peer announces itself (one sumpeer message per
        # reclaimed partner; a lone announcement when nobody was reclaimable).
        self._counter.record_type(MessageType.SUMPEER, max(1, reclaimed))
        self.cold_start_domain(peer_id)
        return True

    # -- fault events --------------------------------------------------------------------------

    def _handle_partition(self, spec: Mapping[str, object]) -> None:
        """Split the overlay into isolated groups (explicit or by fraction)."""
        faults = self._ensure_faults()
        groups = spec.get("groups")
        if groups:
            faults.set_partition([list(group) for group in groups])  # type: ignore[union-attr]
            return
        fraction = float(spec.get("fraction", 0.5))  # type: ignore[arg-type]
        peers = sorted(self._overlay.peer_ids)
        faults.rng.shuffle(peers)
        cut = max(1, min(len(peers) - 1, round(fraction * len(peers))))
        faults.set_partition([peers[:cut], peers[cut:]])

    def _handle_heal(self) -> None:
        """Re-merge the partition and repair the orphans it left behind.

        While split, reconciliations drop unreachable partners from their
        domains ("descriptions of unavailable data will be then omitted"),
        leaving those peers online but domainless.  After the merge each
        orphan re-joins through the normal churn path — charged like any
        late join.
        """
        faults = self._ensure_faults()
        faults.clear_partition()
        now = self._simulator.now
        for peer_id in self._overlay.peer_ids:
            if peer_id in self._domains:
                continue
            peer = self._overlay.peer(peer_id)
            if not peer.online:
                continue
            sp_id = self._assignment.get(peer_id)
            if (
                sp_id is not None
                and sp_id in self._domains
                and self._domains[sp_id].is_partner(peer_id)
            ):
                continue  # still validly attached
            self._assignment.pop(peer_id, None)
            peer.leave_domain()
            outcome = self._churn.peer_join(
                self._overlay, self._domains, self._assignment, peer_id, now=now
            )
            if outcome.reconciliation_due and outcome.domain_id is not None:
                self._run_reconciliation(outcome.domain_id)

    def _handle_domain_failure(self, spec: Mapping[str, object]) -> None:
        """Correlated failure: whole domains (partners + summary peer) die silently."""
        faults = self._ensure_faults()
        count = max(1, int(spec.get("count", 1)))  # type: ignore[arg-type]
        summary_peers = sorted(self._domains)
        if not summary_peers:
            return
        chosen = faults.rng.sample(summary_peers, min(count, len(summary_peers)))
        for sp_id in sorted(chosen):
            domain = self._domains.get(sp_id)
            if domain is None:
                continue
            for peer_id in list(domain.partner_ids):
                if peer_id != sp_id and self._overlay.peer(peer_id).online:
                    self._handle_departure(peer_id, graceful=False)
            if sp_id in self._domains and self._overlay.peer(sp_id).online:
                self._handle_departure(sp_id, graceful=False)

    def _handle_massacre(self, spec: Mapping[str, object]) -> None:
        """A fraction of all summary peers dies in the same instant."""
        faults = self._ensure_faults()
        fraction = float(spec.get("fraction", 0.5))  # type: ignore[arg-type]
        graceful = bool(spec.get("graceful", False))
        rejoin_after = spec.get("rejoin_after")
        summary_peers = sorted(self._domains)
        if not summary_peers:
            return
        count = max(1, min(len(summary_peers), round(fraction * len(summary_peers))))
        chosen = sorted(faults.rng.sample(summary_peers, count))
        now = self._simulator.now
        for sp_id in chosen:
            if sp_id in self._domains and self._overlay.peer(sp_id).online:
                self._handle_departure(sp_id, graceful=graceful)
                if rejoin_after is not None:
                    self.schedule_event_from_spec(
                        {"kind": "rejoin", "peer_id": sp_id},
                        at=now + float(rejoin_after),  # type: ignore[arg-type]
                    )

    def _handle_flash_crowd(self, spec: Mapping[str, object]) -> None:
        """Every offline peer (or the first ``rejoin_count``) rejoins at once."""
        limit = spec.get("rejoin_count")
        offline = [
            peer_id
            for peer_id in self._overlay.peer_ids
            if not self._overlay.peer(peer_id).online
        ]
        if limit is not None:
            offline = offline[: max(0, int(limit))]  # type: ignore[arg-type]
        for peer_id in offline:
            self._handle_rejoin(peer_id)

    def schedule_modifications(
        self, duration_seconds: float, rate_per_peer_per_second: float
    ) -> int:
        """Schedule local data modification events (Poisson per peer).

        Each event marks the peer's data as modified and, if the resulting
        drift warrants it, sends a push message to its summary peer.
        """
        if rate_per_peer_per_second <= 0:
            return 0
        scheduled = 0
        for peer_id in self._overlay.peer_ids:
            if peer_id in self._domains:
                continue
            at = self._rng.expovariate(rate_per_peer_per_second)
            while at < duration_seconds:
                self.schedule_event_from_spec(
                    {"kind": "modification", "peer_id": peer_id}, at=at
                )
                scheduled += 1
                at += self._rng.expovariate(rate_per_peer_per_second)
        return scheduled

    def _handle_modification(self, peer_id: str) -> None:
        if not self._overlay.peer(peer_id).online:
            return
        now = self._simulator.now
        if isinstance(self._content, PlannedContentModel):
            self._content.mark_modified(peer_id)
        sp_id = self._assignment.get(peer_id)
        if sp_id is None or sp_id not in self._domains:
            return
        obs = self._obs
        if obs is None:
            self._push_modification(peer_id, sp_id, now)
            return
        obs.inc("repro_modifications_total")
        with obs.span("modification", {"peer": peer_id, "summary_peer": sp_id}):
            self._push_modification(peer_id, sp_id, now)

    def _push_modification(self, peer_id: str, sp_id: str, now: float) -> None:
        """Deliver one modification's delta push (possibly through faults)."""
        domain = self._domains[sp_id]
        obs = self._obs
        faults = self._faults
        if faults is not None and faults.disrupts_link(peer_id, sp_id):
            # The push can fail: retry with exponential backoff, bounded by
            # push_max_retries.  An exhausted budget means the summary peer
            # never learns of the modification — the description simply stays
            # stale until the next reconciliation, exactly the degradation
            # the staleness metrics measure.
            delivered, retries = faults.attempt_delivery(
                peer_id, sp_id, self._config.push_max_retries
            )
            lost = retries + (0 if delivered else 1)
            if lost:
                self._maintenance.record_failed_attempts(MessageType.PUSH, lost)
                reason = (
                    "link loss" if faults.reachable(peer_id, sp_id) else "partitioned"
                )
                self._counter.record_dropped(reason, lost)
                if obs is not None:
                    obs.inc("repro_fault_dropped_total", lost, reason=reason)
            if retries:
                self._counter.record_retry(retries)
                backoff = backoff_total(
                    self._config.retry_backoff_seconds,
                    self._config.retry_backoff_factor,
                    retries,
                )
                faults.stats.backoff_seconds += backoff
                if obs is not None:
                    obs.inc("repro_push_retries_total", retries)
                    obs.inc("repro_push_backoff_seconds_total", backoff)
            if obs is not None:
                obs.observe("repro_push_retries_per_delta", retries)
            if not delivered:
                faults.stats.failed_pushes += 1
                if obs is not None:
                    obs.inc("repro_push_failed_total")
                return
        elif obs is not None:
            obs.observe("repro_push_retries_per_delta", 0)
        due = self._maintenance.push_stale(domain, peer_id, now=now)
        if due:
            self._run_reconciliation(sp_id)

    def _run_reconciliation(self, sp_id: str) -> None:
        domain = self._domains.get(sp_id)
        if domain is None:
            return
        obs = self._obs
        if obs is None:
            self._reconcile_domain(sp_id, domain)
            return
        obs.inc("repro_reconciliations_total")
        with obs.span(
            "reconciliation",
            {"summary_peer": sp_id, "partners": len(domain.partner_ids)},
        ):
            self._reconcile_domain(sp_id, domain)

    def _reconcile_domain(self, sp_id: str, domain: Domain) -> None:
        obs = self._obs
        # A partner takes part in the reconciliation only if it is reachable
        # and still belongs to this domain (it may have re-joined elsewhere
        # since its departure; its stale entry is then dropped here).
        online = {
            peer_id
            for peer_id in domain.partner_ids
            if self._overlay.peer(peer_id).online
            and self._assignment.get(peer_id) == sp_id
        }
        faults = self._faults
        if faults is not None and faults.partitioned:
            # Partition-separated partners cannot take the ring message; they
            # are treated as unavailable and their descriptions omitted (the
            # paper's rule) — the post-heal repair re-joins them.
            cut = {p for p in online if not faults.reachable(sp_id, p)}
            if cut:
                online -= cut
                self._counter.record_dropped("partitioned", len(cut))
                if obs is not None:
                    obs.inc("repro_fault_dropped_total", len(cut), reason="partitioned")
        missed_ring: Dict[str, float] = {}
        if faults is not None and faults.lossy and online:
            # Each ring hop can be lost and is retried with backoff; a partner
            # whose hop never arrives misses this round (it is re-added below
            # as stale — described by nothing until the next round reaches it).
            surviving = set()
            retransmissions = 0
            lost_hops = 0
            budget = self._config.reconciliation_max_retries
            for peer_id in sorted(online):
                delivered, retries = faults.attempt_delivery(sp_id, peer_id, budget)
                retransmissions += retries
                lost_hops += retries + (0 if delivered else 1)
                if delivered:
                    surviving.add(peer_id)
                else:
                    missed_ring[peer_id] = domain.distance_to(peer_id)
            if lost_hops:
                self._maintenance.record_failed_attempts(
                    MessageType.RECONCILIATION, lost_hops
                )
                self._counter.record_dropped("link loss", lost_hops)
                if obs is not None:
                    obs.inc(
                        "repro_fault_dropped_total", lost_hops, reason="link loss"
                    )
            if retransmissions:
                self._counter.record_retry(retransmissions)
                faults.stats.backoff_seconds += backoff_total(
                    self._config.retry_backoff_seconds,
                    self._config.retry_backoff_factor,
                    retransmissions,
                )
                if obs is not None:
                    obs.inc("repro_reconciliation_retries_total", retransmissions)
            online = surviving
        local = self.local_summaries() if self._services else None
        now = self._simulator.now
        self._maintenance.reconcile(
            domain,
            local_summaries=local,
            available_partners=online,
            now=now,
        )
        self._described[sp_id] = set(domain.partner_ids)
        if isinstance(self._content, PlannedContentModel):
            # Only the partners that actually took the ring message had their
            # modifications incorporated; a partner whose hop was lost keeps
            # its modified flag (and its stale freshness, re-added below).
            for peer_id in domain.partner_ids:
                self._content.clear_modification(peer_id)
        for peer_id, distance in sorted(missed_ring.items()):
            # Still online and assigned here — it only missed the ring message.
            domain.add_partner(
                peer_id, distance=distance, freshness=Freshness.STALE, now=now
            )
        if isinstance(self._content, PlannedContentModel):
            if self._maintenance.store_attached:
                # Planned runs have no hierarchies to archive, but a metadata
                # head (the partner roster) is what lets a crashed summary
                # peer reclaim its domain on rejoin.
                self._maintenance.record_metadata_head(
                    domain, now=self._simulator.now
                )

    def run(self, until: Optional[float] = None) -> int:
        """Advance the simulation (process scheduled churn/modification events)."""
        return self._runtime.run(until=until)

    # -- query processing --------------------------------------------------------------------------

    def register_query(self, query: SelectionQuery) -> Tuple[int, Optional[Proposition]]:
        """Register a real query: returns its id and its proposition (if flexible)."""
        query_id = self._query_counter
        self._query_counter += 1
        proposition: Optional[Proposition] = None
        if self._background is not None:
            flexible = reformulate(query, self._background)
            self._queries[query_id] = flexible
            if flexible.is_flexible():
                proposition = Proposition.from_query(
                    SelectionQuery(
                        flexible.relation,
                        flexible.descriptor_predicates(),
                        flexible.select,
                    )
                )
        else:
            self._queries[query_id] = query
        return query_id, proposition

    def next_query_id(self) -> int:
        """Allocate an id for a planned (content-free) query."""
        query_id = self._query_counter
        self._query_counter += 1
        return query_id

    def pose_query(
        self,
        originator: str,
        query: Optional[SelectionQuery] = None,
        query_id: Optional[int] = None,
        policy: RoutingPolicy = RoutingPolicy.ALL,
        required_results: Optional[int] = None,
        max_domains: Optional[int] = None,
    ) -> QueryRoutingResult:
        """Pose a query at ``originator`` and route it with the SQ algorithm.

        With real content, pass ``query``; with planned content, omit it (an
        id is allocated and the matching peers are drawn by the plan).
        ``required_results`` is the ``C_t`` of the cost model: when one domain
        does not provide enough results, the routing extends to further
        domains through inter-domain flooding.
        """
        if self._content is None:
            raise ProtocolError(
                "configure content first (attach_databases or use_planned_content)"
            )
        if query is not None and query_id is not None:
            raise ProtocolError(
                "pose_query accepts either query or query_id, not both: a real "
                "query is assigned a fresh id when it is registered"
            )
        proposition: Optional[Proposition] = None
        if query is not None:
            query_id, proposition = self.register_query(query)
        elif query_id is None:
            query_id = self.next_query_id()

        obs = self._obs
        if obs is None:
            return self._route_query(
                originator, query_id, proposition, policy, required_results, max_domains
            )
        obs.inc("repro_queries_total")
        with obs.span("query", {"query_id": query_id, "originator": originator}) as span:
            result = self._route_query(
                originator, query_id, proposition, policy, required_results, max_domains
            )
            span.attrs.update(
                domains_visited=result.domains_visited,
                messages=result.total_messages,
                results=result.results,
            )
        obs.observe("repro_query_domains_visited", result.domains_visited)
        obs.inc("repro_query_messages_total", result.total_messages)
        # Per-domain routing metrics come from the outcomes here, once per
        # query and one registry round-trip per batch, so the router's inner
        # loop stays free of registry traffic.
        if result.domain_outcomes:
            obs.inc("repro_routing_domains_total", len(result.domain_outcomes))
            obs.metrics.observe_many(
                "repro_routing_messages_per_domain",
                [outcome.messages for outcome in result.domain_outcomes],
            )
        if result.flooding_messages:
            obs.inc("repro_query_flooding_messages_total", result.flooding_messages)
        if result.unreachable_domains:
            obs.inc(
                "repro_query_unreachable_probes_total", len(result.unreachable_domains)
            )
        return result

    def _route_query(
        self,
        originator: str,
        query_id: int,
        proposition: Optional[Proposition],
        policy: RoutingPolicy,
        required_results: Optional[int],
        max_domains: Optional[int],
    ) -> QueryRoutingResult:
        result = QueryRoutingResult(
            query_id=query_id,
            originator=originator,
            policy=policy,
            required_results=required_results,
        )

        home_domain = self.domain_of(originator)
        ordered_domains = self._domain_visit_order(home_domain)
        if not ordered_domains:
            return result

        faults = self._faults
        partition_active = faults is not None and faults.partitioned
        previous_outcome: Optional[DomainQueryOutcome] = None
        previous: Optional[Domain] = None
        results_gathered = 0  # running count: avoids re-summing per domain
        visited = 0  # domains actually reached (equals the index when merged)
        for domain in ordered_domains:
            if max_domains is not None and visited >= max_domains:
                break
            if partition_active and not faults.reachable(
                originator, domain.summary_peer_id
            ):
                # The summary peer sits across the partition: the probe (and
                # its bounded retries) go unanswered, the domain contributes
                # nothing, and the answer is marked degraded instead of the
                # query wedging or failing.
                attempts = 1 + self._config.query_max_retries
                self._counter.record_type(MessageType.QUERY, attempts)
                if attempts > 1:
                    self._counter.record_retry(attempts - 1)
                self._counter.record_dropped("partitioned", attempts)
                faults.stats.messages_dropped += attempts
                faults.stats.retries += attempts - 1
                faults.stats.unreachable_probes += 1
                faults.stats.backoff_seconds += backoff_total(
                    self._config.retry_backoff_seconds,
                    self._config.retry_backoff_factor,
                    attempts - 1,
                )
                result.unreachable_probe_messages += attempts
                result.unreachable_domains.append(domain.summary_peer_id)
                if self._obs is not None:
                    self._obs.inc(
                        "repro_fault_dropped_total", attempts, reason="partitioned"
                    )
                continue
            visited += 1
            if previous is not None and previous_outcome is not None:
                # Moving past the previous domain requires an inter-domain
                # flooding round started from it (its responders, the
                # originator and the summary peer probe further domains).
                flooding = self._router.flooding_cost(
                    self._overlay,
                    previous,
                    responding_peers=previous_outcome.responding_peers,
                    originator=originator,
                    known_summary_peers=self._domains.keys(),
                    target_domains=1,
                )
                result.flooding_messages += flooding
            outcome = self._route_in_domain(query_id, domain, proposition, policy)
            result.domain_outcomes.append(outcome)
            results_gathered += outcome.results
            previous = domain
            previous_outcome = outcome
            if required_results is not None and results_gathered >= required_results:
                break

        result.total_messages = (
            sum(outcome.messages for outcome in result.domain_outcomes)
            + result.flooding_messages
            + result.unreachable_probe_messages
        )
        self._query_results.append(result)
        return result

    def _route_in_domain(
        self,
        query_id: int,
        domain: Domain,
        proposition: Optional[Proposition],
        policy: RoutingPolicy,
    ) -> DomainQueryOutcome:
        assert self._content is not None
        if self._query_engine_enabled:
            # The incrementally tracked set: identical to the scan below but
            # O(1) to obtain (maintained by join/leave/churn events).
            online = self._overlay.online_ids
        else:
            online = {
                peer_id
                for peer_id in self._overlay.peer_ids
                if self._overlay.peer(peer_id).online
            }
        described = self._described.get(domain.summary_peer_id)
        faults = self._faults
        if faults is not None and not (faults.partitioned or faults.lossy):
            faults = None  # nothing can disturb this hop: keep the clean path
        return self._router.route_in_domain(
            query_id,
            domain,
            self._content,
            proposition=proposition,
            policy=policy,
            online_peers=online,
            described_partners=described,
            faults=faults,
            max_retries=self._config.query_max_retries,
        )

    def _domain_visit_order(self, home: Optional[Domain]) -> List[Domain]:
        state = self._batch_state
        key = home.summary_peer_id if home is not None else None
        if state is not None:
            cached = state.visit_orders.get(key)
            if cached is not None:
                return cached
        domains = list(self._domains.values())
        if home is None:
            ordered = domains
        else:
            ordered = [home]
            ordered.extend(domain for domain in domains if domain is not home)
        if state is not None:
            state.visit_orders[key] = ordered
        return ordered

    @contextmanager
    def shared_query_state(self) -> Iterator[None]:
        """Share per-batch derived state across consecutive ``pose_query`` calls.

        Inside the block, domain visit orders and staleness scaffolding are
        computed once and reused — safe because no simulation event can run
        between the queries of a batch, and byte-identical to recomputing
        them per query.  Nestable (the outermost block owns the state).
        """
        if self._batch_state is not None:
            yield
            return
        self._batch_state = _QueryBatchState()
        try:
            yield
        finally:
            self._batch_state = None

    def pose_queries(self, requests: Iterable[QueryRequest]) -> List[QueryRoutingResult]:
        """Pose a batch of queries, sharing derived state across the batch.

        Results are byte-identical to calling :meth:`pose_query` once per
        request in the same order (same routing sets, message counters, RNG
        draws and query ids); only the repeated per-query derivation work is
        shared.
        """
        with self.shared_query_state():
            return [
                self.pose_query(
                    request.originator,
                    query=request.query,
                    query_id=request.query_id,
                    policy=request.policy,
                    required_results=request.required_results,
                    max_domains=request.max_domains,
                )
                for request in requests
            ]

    # -- staleness measurement (Figures 4 and 5) -------------------------------------------------------

    def staleness_snapshot(self, query_id: Optional[int] = None) -> StalenessSnapshot:
        """Sample the staleness of query answers across every domain.

        Only meaningful in planned-content mode: the plan provides the ground
        truth while the cooperation lists and described sets provide the
        summary-side view.
        """
        if not isinstance(self._content, PlannedContentModel):
            raise ProtocolError("staleness_snapshot requires planned content")
        if query_id is None:
            query_id = self.next_query_id()
        return self._staleness_from_scaffold(query_id, self._staleness_scaffold())

    def staleness_snapshots(self, count: int) -> List[StalenessSnapshot]:
        """Sample ``count`` staleness snapshots, sharing the per-domain scans.

        Byte-identical to calling :meth:`staleness_snapshot` ``count`` times
        back to back (same query ids, same plan draws): the per-domain
        partner/described/stale/online sets cannot change between the
        samples, so they are derived once for the whole batch.
        """
        if not isinstance(self._content, PlannedContentModel):
            raise ProtocolError("staleness_snapshot requires planned content")
        with self.shared_query_state():
            scaffold = self._staleness_scaffold()
            return [
                self._staleness_from_scaffold(self.next_query_id(), scaffold)
                for _sample in range(count)
            ]

    def _staleness_scaffold(
        self,
    ) -> List[Tuple[Set[str], Set[str], Set[str], Set[str]]]:
        """Per-domain ``(partners, described, stale, online)`` sets.

        Memoized on the active batch state, if any (see
        :meth:`shared_query_state`).
        """
        state = self._batch_state
        if state is not None and state.staleness_scaffold is not None:
            return state.staleness_scaffold
        online_ids = self._overlay.online_ids
        scaffold = []
        for sp_id, domain in self._domains.items():
            partners = set(domain.partner_ids)
            described = self._described.get(sp_id, partners)
            stale = set(domain.old_partners())
            if self._query_engine_enabled:
                online = partners & online_ids
            else:
                # Legacy reference path: scan the per-peer flags directly.
                online = {
                    peer_id
                    for peer_id in partners
                    if self._overlay.peer(peer_id).online
                }
            scaffold.append((partners, described, stale, online))
        if state is not None:
            state.staleness_scaffold = scaffold
        return scaffold

    def _staleness_from_scaffold(
        self,
        query_id: int,
        scaffold: List[Tuple[Set[str], Set[str], Set[str], Set[str]]],
    ) -> StalenessSnapshot:
        assert isinstance(self._content, PlannedContentModel)
        content = self._content
        plan = content.matching_peers(query_id)

        relevant_count = 0
        worst_fp = worst_fn = real_fp = real_fn = 0
        p_mod = self._config.modification_probability

        for partners, described, stale, online in scaffold:
            relevant = plan & described
            relevant_count += len(relevant)

            # Worst case (Figure 4): every stale relevant peer contacted is a
            # false positive; every matching stale peer outside P_Q is a false
            # negative.
            worst_fp += len(relevant & stale)
            worst_fn += len((plan & partners & stale) - relevant)

            # Real case (Figure 5): a stale peer selected in P_Q only causes a
            # stale answer if its data actually changed with respect to the
            # query (or disappeared with the peer).  Under the precision-first
            # policy (V = P_Q ∩ P_fresh) false positives vanish and the only
            # residue is the false negatives: stale-but-unchanged peers that
            # were needlessly excluded.
            for peer_id in relevant & stale:
                departed = content.is_departed(peer_id) or peer_id not in online
                if departed:
                    # Its data is gone: a real false positive under the ALL
                    # policy, correctly excluded under the PRECISION policy.
                    real_fp += 1
                    continue
                changed = self._deterministic_draw(query_id, peer_id) < p_mod
                if changed:
                    real_fp += 1
                else:
                    # Still matching but excluded by the PRECISION policy.
                    real_fn += 1

        return StalenessSnapshot(
            query_id=query_id,
            relevant_count=relevant_count,
            worst_false_positives=worst_fp,
            worst_false_negatives=worst_fn,
            real_false_positives=real_fp,
            real_false_negatives=real_fn,
        )

    def _deterministic_draw(self, query_id: int, peer_id: str) -> float:
        """A reproducible pseudo-random number in [0, 1) keyed by (query, peer)."""
        return random.Random(f"{query_id}:{peer_id}").random()

    # -- traffic reporting -----------------------------------------------------------------------------

    def update_traffic_report(self, duration_seconds: float) -> TrafficReport:
        """Push + reconciliation traffic, normalised per node per second (eq. 1)."""
        return TrafficReport.from_counter(
            self._counter,
            duration_seconds=duration_seconds,
            peer_count=self._overlay.size,
            message_types=list(UPDATE_MESSAGE_TYPES),
        )

    def query_traffic_report(self, duration_seconds: float) -> TrafficReport:
        return TrafficReport.from_counter(
            self._counter,
            duration_seconds=duration_seconds,
            peer_count=self._overlay.size,
            message_types=list(QUERY_MESSAGE_TYPES),
        )
