"""Freshness values attached to cooperation-list entries.

Section 4.1 defines a 2-bit freshness value per partner:

* ``0`` — the partner's descriptions in the global summary are fresh,
* ``1`` — the descriptions need to be refreshed,
* ``2`` — the partner's original data are not available (the peer left).

Section 4.3 then simplifies to a 1-bit value (``0`` fresh / ``1`` expired-or-
unavailable), the mode the evaluation uses.  Both encodings are supported so
the difference can be ablated.
"""

from __future__ import annotations

import enum


class Freshness(enum.IntEnum):
    """Per-partner freshness of the descriptions merged in the global summary."""

    FRESH = 0
    STALE = 1
    UNAVAILABLE = 2

    @property
    def is_fresh(self) -> bool:
        return self is Freshness.FRESH

    @property
    def counts_as_old(self) -> bool:
        """Whether the entry counts toward the reconciliation threshold α."""
        return self is not Freshness.FRESH


class FreshnessMode(enum.Enum):
    """Encoding of the freshness value.

    ``TWO_BIT`` keeps the three-valued encoding of Section 4.1 (descriptions of
    departed peers may still be used for approximate answers); ``ONE_BIT``
    collapses departures onto "stale", the alternative the paper adopts for its
    evaluation (a departure accelerates reconciliation).
    """

    TWO_BIT = "two_bit"
    ONE_BIT = "one_bit"

    def encode_departure(self) -> Freshness:
        """The freshness value recorded when a partner leaves gracefully."""
        if self is FreshnessMode.TWO_BIT:
            return Freshness.UNAVAILABLE
        return Freshness.STALE
