"""Summary management in P2P systems — the paper's primary contribution.

This package implements Sections 4 and 5 of the paper on top of the
substrates (fuzzy sets, SaintEtiQ summarization, relational databases, P2P
overlay simulation):

* :mod:`repro.core.freshness`, :mod:`repro.core.cooperation` — cooperation
  lists and freshness values,
* :mod:`repro.core.domain` — a domain: one summary peer, its partners, their
  merged global summary,
* :mod:`repro.core.construction` — the summary construction protocol
  (``sumpeer`` broadcast, ``localsum`` replies, partnership switching,
  selective-walk discovery),
* :mod:`repro.core.maintenance` — push/pull maintenance (freshness pushes and
  ring reconciliation driven by the α threshold),
* :mod:`repro.core.dynamicity` — peer join / leave / failure and summary-peer
  departure handling,
* :mod:`repro.core.routing` — summary-based query routing: peer localization
  inside a domain and TTL-bounded inter-domain flooding,
* :mod:`repro.core.approximate` — approximate answering in the summary domain,
* :mod:`repro.core.service` — the per-peer local summary service,
* :mod:`repro.core.content` — content models (real summaries or planned
  relevance) used by the experiments,
* :mod:`repro.core.protocol` — the end-to-end protocol engine driving a whole
  simulated network,
* :mod:`repro.core.session` — the declarative façade over all of the above:
  :class:`SystemBuilder` assembles a validated network, :class:`NetworkSession`
  runs it and answers queries with typed :class:`QueryAnswer` values.
"""

from repro.core.config import ProtocolConfig
from repro.core.construction import DomainBuilder
from repro.core.cooperation import CooperationList
from repro.core.domain import Domain
from repro.core.dynamicity import ChurnHandler
from repro.core.freshness import Freshness, FreshnessMode
from repro.core.maintenance import MaintenanceEngine
from repro.core.protocol import SummaryManagementSystem
from repro.core.routing import QueryRouter, QueryRoutingResult, RoutingPolicy
from repro.core.service import LocalSummaryService
from repro.core.session import (
    MaintenanceReport,
    NetworkSession,
    QueryAnswer,
    SessionTraffic,
    SystemBuilder,
)

__all__ = [
    "ProtocolConfig",
    "Freshness",
    "FreshnessMode",
    "CooperationList",
    "Domain",
    "DomainBuilder",
    "MaintenanceEngine",
    "ChurnHandler",
    "RoutingPolicy",
    "QueryRouter",
    "QueryRoutingResult",
    "LocalSummaryService",
    "SummaryManagementSystem",
    "SystemBuilder",
    "NetworkSession",
    "QueryAnswer",
    "MaintenanceReport",
    "SessionTraffic",
]
