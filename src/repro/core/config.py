"""Protocol configuration: every knob of the summary-management protocols."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.freshness import FreshnessMode
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ProtocolConfig:
    """Parameters of the summary-management protocols.

    Attributes
    ----------
    construction_ttl:
        TTL of the ``sumpeer`` broadcast when a domain is built (the paper
        suggests 2).
    freshness_threshold:
        The α threshold of Section 4.2.2: the reconciliation is triggered when
        the fraction of old descriptions in the cooperation list reaches it.
        The evaluation sweeps 0.1–0.8.
    freshness_mode:
        1-bit (paper's evaluation default) or 2-bit freshness encoding.
    drift_threshold:
        Fraction of descriptor churn in a local summary's intents above which
        the partner sends a ``push`` message (Section 4.2.1).
    flooding_ttl:
        TTL of the inter-domain flooding extension and of the pure-flooding
        baseline (the paper uses 3).
    selective_walk_max_hops:
        Bound on the selective walk used to find a summary peer.
    query_rate_per_peer:
        Queries per peer per second (Table 3: one query per node per 20 min).
    modification_probability:
        Probability that a stale partner's database actually changed with
        respect to a given query — the correction the paper applies to the
        worst-case staleness to obtain the "real estimation" of Figure 5
        (a reduction by a factor of about 4.5).
    count_reconciliation_ring_hops:
        When True (default, physically accurate) a reconciliation round costs
        one message per partner plus the return hop; when False the circulating
        reconciliation message is counted once, which is the accounting the
        paper's Figure 6 appears to use ("only one message is propagated").
    push_max_retries / reconciliation_max_retries / query_max_retries:
        Bounded retransmission budgets used when a fault plan is active: how
        many times a lost push, reconciliation ring hop or query probe is
        retried before the sender gives up.  Irrelevant (and unused) on the
        zero-fault path.
    retry_backoff_seconds / retry_backoff_factor:
        Exponential backoff between retransmissions: the n-th retry waits
        ``retry_backoff_seconds * retry_backoff_factor**n``.  The waits are
        accounted (``FaultStats.backoff_seconds``), not simulated as extra
        events, so retries never reorder the event schedule.
    """

    construction_ttl: int = 2
    freshness_threshold: float = 0.3
    freshness_mode: FreshnessMode = FreshnessMode.ONE_BIT
    drift_threshold: float = 0.1
    flooding_ttl: int = 3
    selective_walk_max_hops: int = 64
    query_rate_per_peer: float = 1.0 / 1200.0
    modification_probability: float = 1.0 / 4.5
    superpeer_fraction: float = 1.0 / 16.0
    count_reconciliation_ring_hops: bool = True
    push_max_retries: int = 3
    reconciliation_max_retries: int = 2
    query_max_retries: int = 2
    retry_backoff_seconds: float = 2.0
    retry_backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.construction_ttl < 1:
            raise ConfigurationError("construction_ttl must be at least 1")
        if not 0.0 < self.freshness_threshold <= 1.0:
            raise ConfigurationError("freshness_threshold must lie in (0, 1]")
        if not 0.0 <= self.drift_threshold <= 1.0:
            raise ConfigurationError("drift_threshold must lie in [0, 1]")
        if self.flooding_ttl < 1:
            raise ConfigurationError("flooding_ttl must be at least 1")
        if self.selective_walk_max_hops < 1:
            raise ConfigurationError("selective_walk_max_hops must be at least 1")
        if self.query_rate_per_peer < 0:
            raise ConfigurationError("query_rate_per_peer must be non-negative")
        if not 0.0 <= self.modification_probability <= 1.0:
            raise ConfigurationError("modification_probability must lie in [0, 1]")
        if not 0.0 < self.superpeer_fraction <= 1.0:
            raise ConfigurationError("superpeer_fraction must lie in (0, 1]")
        for name in ("push_max_retries", "reconciliation_max_retries", "query_max_retries"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.retry_backoff_seconds < 0:
            raise ConfigurationError("retry_backoff_seconds must be non-negative")
        if self.retry_backoff_factor < 1.0:
            raise ConfigurationError("retry_backoff_factor must be at least 1")

    def with_threshold(self, alpha: float) -> "ProtocolConfig":
        """A copy of this configuration with a different α threshold."""
        return ProtocolConfig(
            construction_ttl=self.construction_ttl,
            freshness_threshold=alpha,
            freshness_mode=self.freshness_mode,
            drift_threshold=self.drift_threshold,
            flooding_ttl=self.flooding_ttl,
            selective_walk_max_hops=self.selective_walk_max_hops,
            query_rate_per_peer=self.query_rate_per_peer,
            modification_probability=self.modification_probability,
            superpeer_fraction=self.superpeer_fraction,
            count_reconciliation_ring_hops=self.count_reconciliation_ring_hops,
            push_max_retries=self.push_max_retries,
            reconciliation_max_retries=self.reconciliation_max_retries,
            query_max_retries=self.query_max_retries,
            retry_backoff_seconds=self.retry_backoff_seconds,
            retry_backoff_factor=self.retry_backoff_factor,
        )
