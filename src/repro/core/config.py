"""Protocol configuration: every knob of the summary-management protocols."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.freshness import FreshnessMode
from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class ProtocolConfig:
    """Parameters of the summary-management protocols.

    Attributes
    ----------
    construction_ttl:
        TTL of the ``sumpeer`` broadcast when a domain is built (the paper
        suggests 2).
    freshness_threshold:
        The α threshold of Section 4.2.2: the reconciliation is triggered when
        the fraction of old descriptions in the cooperation list reaches it.
        The evaluation sweeps 0.1–0.8.
    freshness_mode:
        1-bit (paper's evaluation default) or 2-bit freshness encoding.
    drift_threshold:
        Fraction of descriptor churn in a local summary's intents above which
        the partner sends a ``push`` message (Section 4.2.1).
    flooding_ttl:
        TTL of the inter-domain flooding extension and of the pure-flooding
        baseline (the paper uses 3).
    selective_walk_max_hops:
        Bound on the selective walk used to find a summary peer.
    query_rate_per_peer:
        Queries per peer per second (Table 3: one query per node per 20 min).
    modification_probability:
        Probability that a stale partner's database actually changed with
        respect to a given query — the correction the paper applies to the
        worst-case staleness to obtain the "real estimation" of Figure 5
        (a reduction by a factor of about 4.5).
    count_reconciliation_ring_hops:
        When True (default, physically accurate) a reconciliation round costs
        one message per partner plus the return hop; when False the circulating
        reconciliation message is counted once, which is the accounting the
        paper's Figure 6 appears to use ("only one message is propagated").
    """

    construction_ttl: int = 2
    freshness_threshold: float = 0.3
    freshness_mode: FreshnessMode = FreshnessMode.ONE_BIT
    drift_threshold: float = 0.1
    flooding_ttl: int = 3
    selective_walk_max_hops: int = 64
    query_rate_per_peer: float = 1.0 / 1200.0
    modification_probability: float = 1.0 / 4.5
    superpeer_fraction: float = 1.0 / 16.0
    count_reconciliation_ring_hops: bool = True

    def __post_init__(self) -> None:
        if self.construction_ttl < 1:
            raise ConfigurationError("construction_ttl must be at least 1")
        if not 0.0 < self.freshness_threshold <= 1.0:
            raise ConfigurationError("freshness_threshold must lie in (0, 1]")
        if not 0.0 <= self.drift_threshold <= 1.0:
            raise ConfigurationError("drift_threshold must lie in [0, 1]")
        if self.flooding_ttl < 1:
            raise ConfigurationError("flooding_ttl must be at least 1")
        if self.selective_walk_max_hops < 1:
            raise ConfigurationError("selective_walk_max_hops must be at least 1")
        if self.query_rate_per_peer < 0:
            raise ConfigurationError("query_rate_per_peer must be non-negative")
        if not 0.0 <= self.modification_probability <= 1.0:
            raise ConfigurationError("modification_probability must lie in [0, 1]")
        if not 0.0 < self.superpeer_fraction <= 1.0:
            raise ConfigurationError("superpeer_fraction must lie in (0, 1]")

    def with_threshold(self, alpha: float) -> "ProtocolConfig":
        """A copy of this configuration with a different α threshold."""
        return ProtocolConfig(
            construction_ttl=self.construction_ttl,
            freshness_threshold=alpha,
            freshness_mode=self.freshness_mode,
            drift_threshold=self.drift_threshold,
            flooding_ttl=self.flooding_ttl,
            selective_walk_max_hops=self.selective_walk_max_hops,
            query_rate_per_peer=self.query_rate_per_peer,
            modification_probability=self.modification_probability,
            superpeer_fraction=self.superpeer_fraction,
            count_reconciliation_ring_hops=self.count_reconciliation_ring_hops,
        )
