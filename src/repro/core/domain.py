"""Domains: a summary peer, its partners, and their merged global summary."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.core.cooperation import CooperationList
from repro.core.freshness import Freshness, FreshnessMode
from repro.exceptions import ProtocolError
from repro.saintetiq.hierarchy import SummaryHierarchy


@dataclass
class Domain:
    """One domain of the hybrid overlay.

    A domain is "the set of a superpeer and its clients": the superpeer acts
    as the *summary peer* (SP), stores the domain's global summary ``GS`` and
    its cooperation list ``CL``.
    """

    summary_peer_id: str
    cooperation: CooperationList = field(default_factory=CooperationList)
    #: Distance (latency) from each partner to the summary peer, filled by the
    #: construction protocol and used for partnership-switch decisions.
    partner_distances: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._global_summary: Optional[SummaryHierarchy] = None
        self._summary_loader: Optional[Callable[[], SummaryHierarchy]] = None
        # Bumped on every partner add/remove; lets per-peer caches keyed on
        # domain membership (e.g. the flooding-cost cache) invalidate cheaply.
        self._membership_version = 0

    @classmethod
    def create(
        cls, summary_peer_id: str, mode: FreshnessMode = FreshnessMode.ONE_BIT
    ) -> "Domain":
        return cls(summary_peer_id=summary_peer_id, cooperation=CooperationList(mode))

    # -- membership ---------------------------------------------------------------------

    @property
    def partner_ids(self) -> List[str]:
        return self.cooperation.partner_ids

    @property
    def size(self) -> int:
        """Domain size = the summary peer plus its partners."""
        extra = 0 if self.cooperation.is_partner(self.summary_peer_id) else 1
        return len(self.cooperation) + extra

    def is_partner(self, peer_id: str) -> bool:
        return self.cooperation.is_partner(peer_id)

    @property
    def membership_version(self) -> int:
        """Monotonic counter bumped whenever the partner set changes."""
        return self._membership_version

    def add_partner(
        self,
        peer_id: str,
        distance: float,
        freshness: Freshness = Freshness.FRESH,
        now: float = 0.0,
    ) -> None:
        self.cooperation.add_partner(peer_id, freshness=freshness, now=now)
        self.partner_distances[peer_id] = distance
        self._membership_version += 1

    def remove_partner(self, peer_id: str) -> None:
        self.cooperation.remove_partner(peer_id)
        self.partner_distances.pop(peer_id, None)
        self._membership_version += 1

    def distance_to(self, peer_id: str) -> float:
        return self.partner_distances.get(peer_id, float("inf"))

    # -- global summary -------------------------------------------------------------------

    @property
    def global_summary(self) -> Optional[SummaryHierarchy]:
        """The domain's merged global summary ``GS``.

        When the domain was restored lazily (read-only serving), the first
        access pulls the hierarchy from the snapshot store via the bound
        loader; subsequent accesses return the materialized object.
        """
        if self._global_summary is None and self._summary_loader is not None:
            self._global_summary = self._summary_loader()
            self._summary_loader = None
        return self._global_summary

    @global_summary.setter
    def global_summary(self, summary: Optional[SummaryHierarchy]) -> None:
        self._global_summary = summary
        self._summary_loader = None

    def bind_summary_loader(self, loader: Callable[[], SummaryHierarchy]) -> None:
        """Defer materialization of the global summary to first access."""
        self._global_summary = None
        self._summary_loader = loader

    @property
    def summary_pending(self) -> bool:
        """True while a bound loader has not been materialized yet."""
        return self._summary_loader is not None

    def has_global_summary(self) -> bool:
        return self.global_summary is not None and not self.global_summary.is_empty()

    def install_global_summary(self, summary: SummaryHierarchy) -> None:
        self.global_summary = summary

    def coverage(self) -> Set[str]:
        """Peers whose data the global summary describes (the paper's Coverage)."""
        if self.global_summary is None:
            return set()
        return self.global_summary.peer_extent()

    # -- cold-start support -----------------------------------------------------------------

    def changed_partners_since(self, known_partners: Set[str]) -> List[str]:
        """Partners whose summary the stored head cannot vouch for.

        A partner must re-ship its local summary during a cold start when it
        is *new* (absent from the archived head) or *stale* (it pushed a
        freshness update since the head was recorded); everyone else's
        contribution is rehydrated from the store.  Order follows the current
        partner list so a cold-start merge visits partners exactly like a
        full reconciliation would.
        """
        return [
            peer_id
            for peer_id in self.partner_ids
            if peer_id not in known_partners
            or self.cooperation.freshness_of(peer_id) is not Freshness.FRESH
        ]

    # -- freshness views --------------------------------------------------------------------

    def fresh_partners(self) -> List[str]:
        return self.cooperation.fresh_partners()

    def old_partners(self) -> List[str]:
        return self.cooperation.old_partners()

    def old_fraction(self) -> float:
        return self.cooperation.old_fraction()

    def needs_reconciliation(self, alpha: float) -> bool:
        return self.cooperation.needs_reconciliation(alpha)

    def validate(self) -> None:
        """Sanity checks used by integration tests."""
        if self.summary_peer_id in self.partner_distances:
            distance = self.partner_distances[self.summary_peer_id]
            if distance != 0.0:
                raise ProtocolError(
                    "the summary peer's distance to itself must be 0, got "
                    f"{distance}"
                )
        for peer_id in self.partner_ids:
            if peer_id not in self.partner_distances:
                raise ProtocolError(f"partner {peer_id!r} has no recorded distance")

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Domain(sp={self.summary_peer_id}, partners={len(self.cooperation)}, "
            f"old={self.old_fraction():.2%})"
        )
