"""Peer dynamicity: joins, departures, failures, summary-peer departures.

Section 4.3 of the paper.  In large P2P systems the arrival/departure rate
dominates the data modification rate, so churn is the main driver of global
summary staleness.  This module implements the event handlers; the protocol
engine (:mod:`repro.core.protocol`) decides *when* they fire.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import ProtocolConfig
from repro.core.domain import Domain
from repro.core.freshness import Freshness
from repro.core.maintenance import MaintenanceEngine
from repro.exceptions import ProtocolError
from repro.network.messages import MessageType
from repro.network.metrics import MessageCounter
from repro.network.overlay import Overlay


@dataclass
class ChurnEventOutcome:
    """What a churn handler did: messages sent, reconciliation triggered, etc."""

    event: str
    peer_id: str
    domain_id: Optional[str] = None
    messages: int = 0
    reconciliation_due: bool = False
    new_domain_id: Optional[str] = None
    details: Dict[str, object] = field(default_factory=dict)


class ChurnHandler:
    """Implements the join/leave/failure behaviours of Section 4.3."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        counter: Optional[MessageCounter] = None,
        maintenance: Optional[MaintenanceEngine] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self._config = config or ProtocolConfig()
        self._counter = counter if counter is not None else MessageCounter()
        self._maintenance = maintenance or MaintenanceEngine(self._config, self._counter)
        self._rng = rng or random.Random(0)

    @property
    def maintenance(self) -> MaintenanceEngine:
        return self._maintenance

    # -- peer joins ----------------------------------------------------------------------------

    def peer_join(
        self,
        overlay: Overlay,
        domains: Dict[str, Domain],
        assignment: Dict[str, str],
        peer_id: str,
        now: float = 0.0,
    ) -> ChurnEventOutcome:
        """A (re)connecting peer looks for a domain through its neighbours.

        If one of its neighbours is a partner (or a summary peer), the peer
        sends its local summary to that summary peer and joins with freshness
        value 1 — meaning "pull me at the next reconciliation".  Otherwise it
        falls back to a selective walk.
        """
        peer = overlay.peer(peer_id)
        peer.go_online()
        outcome = ChurnEventOutcome(event="join", peer_id=peer_id)

        sp_id = self._find_domain_via_neighbors(overlay, domains, assignment, peer_id)
        walk_messages = 0
        if sp_id is None:
            sp_id, walk_messages = self._find_domain_via_walk(
                overlay, domains, assignment, peer_id
            )
            if walk_messages:
                self._counter.record_type(MessageType.FIND, walk_messages)
        if sp_id is None:
            outcome.details["orphan"] = True
            outcome.messages = walk_messages
            return outcome

        domain = domains[sp_id]
        self._counter.record_type(MessageType.LOCALSUM)
        distance = overlay.latency(peer_id, sp_id)
        domain.add_partner(
            peer_id, distance=distance, freshness=Freshness.STALE, now=now
        )
        assignment[peer_id] = sp_id
        overlay.peer(peer_id).join_domain(sp_id, distance)

        outcome.domain_id = sp_id
        outcome.new_domain_id = sp_id
        outcome.messages = walk_messages + 1
        outcome.reconciliation_due = domain.needs_reconciliation(
            self._config.freshness_threshold
        )
        return outcome

    def _find_domain_via_neighbors(
        self,
        overlay: Overlay,
        domains: Dict[str, Domain],
        assignment: Dict[str, str],
        peer_id: str,
    ) -> Optional[str]:
        for neighbour in overlay.neighbors(peer_id):
            if neighbour in domains:
                return neighbour
            # A neighbour may still reference a summary peer that has since
            # departed; only live domains count.
            sp_id = assignment.get(neighbour)
            if sp_id is not None and sp_id in domains:
                return sp_id
        return None

    def _find_domain_via_walk(
        self,
        overlay: Overlay,
        domains: Dict[str, Domain],
        assignment: Dict[str, str],
        peer_id: str,
    ) -> tuple:
        def reaches_live_domain(candidate: str) -> bool:
            if candidate in domains:
                return True
            sp_id = assignment.get(candidate)
            return sp_id is not None and sp_id in domains

        target, hops = overlay.selective_walk(
            peer_id,
            stop_condition=reaches_live_domain,
            max_hops=self._config.selective_walk_max_hops,
            rng=self._rng,
        )
        if target is None:
            return None, hops
        sp_id = target if target in domains else assignment[target]
        return sp_id, max(hops, 1)

    # -- peer departures ----------------------------------------------------------------------

    def peer_leave(
        self,
        overlay: Overlay,
        domains: Dict[str, Domain],
        assignment: Dict[str, str],
        peer_id: str,
        now: float = 0.0,
    ) -> ChurnEventOutcome:
        """A graceful departure: push a freshness update, then go offline."""
        outcome = ChurnEventOutcome(event="leave", peer_id=peer_id)
        sp_id = assignment.pop(peer_id, None)
        if sp_id is not None and sp_id in domains:
            domain = domains[sp_id]
            due = self._maintenance.push_departure(domain, peer_id, now=now)
            outcome.domain_id = sp_id
            outcome.messages = 1
            outcome.reconciliation_due = due
        overlay.peer(peer_id).go_offline()
        overlay.peer(peer_id).leave_domain()
        return outcome

    def peer_fail(
        self,
        overlay: Overlay,
        domains: Dict[str, Domain],
        assignment: Dict[str, str],
        peer_id: str,
        now: float = 0.0,
    ) -> ChurnEventOutcome:
        """A silent failure: no message; stale descriptions linger until reconciliation."""
        outcome = ChurnEventOutcome(event="fail", peer_id=peer_id)
        sp_id = assignment.pop(peer_id, None)
        if sp_id is not None and sp_id in domains:
            self._maintenance.register_silent_failure(domains[sp_id], peer_id)
            outcome.domain_id = sp_id
        overlay.peer(peer_id).go_offline()
        overlay.peer(peer_id).leave_domain()
        return outcome

    # -- summary peer departures -----------------------------------------------------------------

    def summary_peer_leave(
        self,
        overlay: Overlay,
        domains: Dict[str, Domain],
        assignment: Dict[str, str],
        sp_id: str,
        now: float = 0.0,
    ) -> ChurnEventOutcome:
        """A summary peer leaves gracefully: ``release`` every partner.

        Each released partner runs a selective walk to find a new summary peer
        and joins it (with freshness 1, as for any late join).
        """
        if sp_id not in domains:
            raise ProtocolError(f"{sp_id!r} is not a summary peer")
        domain = domains.pop(sp_id)
        outcome = ChurnEventOutcome(event="sp_leave", peer_id=sp_id, domain_id=sp_id)

        partners = list(domain.partner_ids)
        self._counter.record_type(MessageType.RELEASE, len(partners))
        outcome.messages += len(partners)

        overlay.peer(sp_id).go_offline()
        overlay.peer(sp_id).leave_domain()

        relocated: List[str] = []
        for peer_id in partners:
            assignment.pop(peer_id, None)
            overlay.peer(peer_id).leave_domain()
            if not overlay.peer(peer_id).online:
                continue
            join_outcome = self.peer_join(overlay, domains, assignment, peer_id, now=now)
            outcome.messages += join_outcome.messages
            if join_outcome.new_domain_id is not None:
                relocated.append(peer_id)
        outcome.details["relocated"] = relocated
        return outcome

    def summary_peer_fail(
        self,
        overlay: Overlay,
        domains: Dict[str, Domain],
        assignment: Dict[str, str],
        sp_id: str,
        now: float = 0.0,
    ) -> ChurnEventOutcome:
        """A summary peer fails silently: partners discover it lazily.

        The domain disappears; partners keep believing they are partners until
        their next push or query fails, at which point they look for a new
        summary peer (the protocol engine models that discovery by re-joining
        them here, charging the same selective-walk traffic but no ``release``
        messages).
        """
        if sp_id not in domains:
            raise ProtocolError(f"{sp_id!r} is not a summary peer")
        domain = domains.pop(sp_id)
        outcome = ChurnEventOutcome(event="sp_fail", peer_id=sp_id, domain_id=sp_id)

        overlay.peer(sp_id).go_offline()
        overlay.peer(sp_id).leave_domain()

        for peer_id in list(domain.partner_ids):
            assignment.pop(peer_id, None)
            overlay.peer(peer_id).leave_domain()
            if not overlay.peer(peer_id).online:
                continue
            join_outcome = self.peer_join(overlay, domains, assignment, peer_id, now=now)
            outcome.messages += join_outcome.messages
        return outcome
