"""Summary maintenance: push (data modification) and pull (reconciliation).

Section 4.2 of the paper.  Partners watch their local summary; when it has
drifted enough they *push* a one-message freshness update to their summary
peer.  The summary peer watches the fraction of old descriptions in its
cooperation list; when it reaches the threshold α it *pulls* everybody through
a ring-style reconciliation: a single message carrying the new global summary
travels from partner to partner, each one merging its current local summary
in, and comes back to the summary peer which installs the new version and
resets every freshness value.

This module is runtime-agnostic: every method takes the current virtual time
as an explicit ``now`` argument and never touches a clock, scheduler, or
:mod:`repro.runtime` backend directly.  Keep it that way — it is what lets
the same maintenance logic run unchanged under the serial simulator and the
concurrent backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Set

from repro.core.config import ProtocolConfig
from repro.core.domain import Domain
from repro.core.freshness import Freshness
from repro.exceptions import StoreError
from repro.network.messages import MessageType
from repro.network.metrics import MessageCounter
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.merging import merge_hierarchies
from repro.saintetiq.serialization import hierarchy_content_hash

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fuzzy.background import BackgroundKnowledge
    from repro.store.snapshots import DomainHeadArchive, SnapshotStore


@dataclass
class ReconciliationRecord:
    """One executed reconciliation (diagnostics for the experiments)."""

    summary_peer_id: str
    time: float
    participants: List[str]
    removed_partners: List[str]
    messages: int


@dataclass
class ColdStartRecord:
    """One store-backed domain cold start (see :meth:`MaintenanceEngine.cold_start`)."""

    summary_peer_id: str
    time: float
    #: Snapshot hash the global summary was installed from (``None`` when the
    #: cold start fell back to a full reconciliation).
    restored_snapshot: Optional[str]
    #: Partners that had to re-ship their local summary (the delta since the head).
    changed_partners: List[str]
    removed_partners: List[str]
    #: Ring messages actually spent.
    messages: int
    #: Ring messages a full reconciliation would have spent instead.
    full_messages: int
    fallback: bool = False

    @property
    def messages_saved(self) -> int:
        return self.full_messages - self.messages


@dataclass
class MaintenanceStats:
    """Aggregate maintenance activity of one engine."""

    push_messages: int = 0
    reconciliations: int = 0
    reconciliation_messages: int = 0
    cold_starts: int = 0
    history: List[ReconciliationRecord] = field(default_factory=list)

    def reconciliation_frequency(self, duration_seconds: float) -> float:
        """``F_rec`` of the cost model: reconciliations per second."""
        if duration_seconds <= 0:
            return 0.0
        return self.reconciliations / duration_seconds


class MaintenanceEngine:
    """Implements the push/pull maintenance of the global summaries."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        counter: Optional[MessageCounter] = None,
    ) -> None:
        self._config = config or ProtocolConfig()
        self._counter = counter if counter is not None else MessageCounter()
        self._stats = MaintenanceStats()
        self._snapshots: Optional["SnapshotStore"] = None
        self._archive: Optional["DomainHeadArchive"] = None
        self._background: Optional["BackgroundKnowledge"] = None

    @property
    def config(self) -> ProtocolConfig:
        return self._config

    @property
    def counter(self) -> MessageCounter:
        return self._counter

    @property
    def stats(self) -> MaintenanceStats:
        return self._stats

    # -- persistence hooks -------------------------------------------------------------------

    def attach_store(
        self,
        snapshots: "SnapshotStore",
        archive: "DomainHeadArchive",
        background: Optional["BackgroundKnowledge"] = None,
    ) -> None:
        """Enable store-backed maintenance.

        Once attached, every materialising reconciliation files its result in
        the archive (global summary + per-partner local summaries, all
        content-addressed), and :meth:`cold_start` can rebuild a restarted
        summary peer's global summary from that head instead of pulling every
        partner through a full ring.  ``background`` is needed to rehydrate
        archived hierarchies during a cold start.

        The engine holds the store for as long as it stays attached: call
        :meth:`detach_store` before closing the underlying backend, or the
        next materialising reconciliation will fail trying to archive its
        head.
        """
        self._snapshots = snapshots
        self._archive = archive
        self._background = background

    def detach_store(self) -> None:
        """Stop archiving heads (call before closing the attached backend)."""
        self._snapshots = None
        self._archive = None
        self._background = None

    @property
    def store_attached(self) -> bool:
        return self._archive is not None and self._snapshots is not None

    def archived_head(self, summary_peer_id: str) -> Optional[Dict[str, object]]:
        """The archived head of one domain, or None (no store / never recorded)."""
        if self._archive is None:
            return None
        return self._archive.head(summary_peer_id)

    def record_metadata_head(self, domain: Domain, now: float = 0.0) -> None:
        """Archive a partner-list-only head (planned-content mode).

        Planned simulations carry no hierarchies, so reconciliations normally
        leave the archive empty — and a summary peer restarting after a crash
        would have nothing to reclaim its domain from.  A metadata head (the
        partner roster with no snapshot digests) is enough for the churn
        handler to rebuild the cooperation list; the subsequent cold start
        then falls back to a metadata reconciliation.
        """
        if self._archive is None:
            return
        self._archive.record_head(
            domain.summary_peer_id,
            None,
            [[peer_id, None] for peer_id in domain.partner_ids],
            time=now,
        )

    def _record_head(
        self,
        domain: Domain,
        contributions: List[tuple],
        now: float,
    ) -> Optional[str]:
        """Archive the domain's merged state; returns the global summary hash."""
        assert self._snapshots is not None and self._archive is not None
        if domain.global_summary is None:
            return None
        partner_hashes = [
            [peer_id, self._snapshots.put_hierarchy(hierarchy)]
            for peer_id, hierarchy in contributions
        ]
        digest = self._snapshots.put_hierarchy(domain.global_summary)
        self._archive.record_head(
            domain.summary_peer_id, digest, partner_hashes, time=now
        )
        return digest

    # -- push phase --------------------------------------------------------------------------

    def push_stale(self, domain: Domain, peer_id: str, now: float = 0.0) -> bool:
        """A partner flags its descriptions as needing a refresh.

        Returns True when the push tipped the domain over the α threshold
        (i.e. a reconciliation should now run).
        """
        if not domain.is_partner(peer_id):
            return False
        self._counter.record_type(MessageType.PUSH)
        self._stats.push_messages += 1
        domain.cooperation.mark_stale(peer_id, now=now)
        return domain.needs_reconciliation(self._config.freshness_threshold)

    def push_departure(self, domain: Domain, peer_id: str, now: float = 0.0) -> bool:
        """A partner announces it is leaving (freshness 2, or 1 in 1-bit mode)."""
        if not domain.is_partner(peer_id):
            return False
        self._counter.record_type(MessageType.PUSH)
        self._stats.push_messages += 1
        domain.cooperation.mark_departed(peer_id, now=now)
        return domain.needs_reconciliation(self._config.freshness_threshold)

    def record_failed_attempts(self, message_type: MessageType, count: int) -> None:
        """Charge transmissions that were sent but never arrived.

        Lost pushes and reconciliation hops (and their retransmissions) still
        cost bandwidth; the fault-aware protocol paths charge them here so the
        per-type counters and the maintenance statistics reflect the real
        wire traffic, not just the successful deliveries.
        """
        if count <= 0:
            return
        self._counter.record_type(message_type, count)
        if message_type is MessageType.PUSH:
            self._stats.push_messages += count
        elif message_type is MessageType.RECONCILIATION:
            self._stats.reconciliation_messages += count

    def register_silent_failure(self, domain: Domain, peer_id: str) -> None:
        """A partner failed without notification: nothing happens immediately.

        Its stale descriptions remain in the global summary until the next
        reconciliation (Section 4.3); this hook exists so that callers make the
        non-event explicit and so tests can assert that no message is counted.
        """
        # Intentionally no message and no freshness change.
        _ = (domain, peer_id)

    # -- pull phase ---------------------------------------------------------------------------

    def needs_reconciliation(self, domain: Domain) -> bool:
        return domain.needs_reconciliation(self._config.freshness_threshold)

    def reconcile(
        self,
        domain: Domain,
        local_summaries: Optional[Mapping[str, SummaryHierarchy]] = None,
        available_partners: Optional[Set[str]] = None,
        now: float = 0.0,
    ) -> ReconciliationRecord:
        """Run one ring reconciliation on ``domain``.

        Parameters
        ----------
        local_summaries:
            Current local summaries of the partners; when provided the new
            global summary is materialised by merging them (available partners
            only).  When omitted the reconciliation only updates the metadata
            (cooperation list, message counts) — the mode used by the
            large-scale, content-free simulations.
        available_partners:
            Partners currently reachable.  Unreachable ones do not take part
            and their entries are removed: "descriptions of unavailable data
            will be then omitted".
        """
        partner_ids = list(domain.partner_ids)
        if available_partners is None:
            available = [p for p in partner_ids
                         if domain.cooperation.freshness_of(p) is not Freshness.UNAVAILABLE]
        else:
            available = [p for p in partner_ids if p in available_partners]
        removed = [p for p in partner_ids if p not in available]

        # One reconciliation message circulates: SP -> p1 -> ... -> pk -> SP.
        if self._config.count_reconciliation_ring_hops:
            message_count = len(available) + 1 if available else 1
        else:
            message_count = 1
        self._counter.record_type(MessageType.RECONCILIATION, message_count)
        self._stats.reconciliations += 1
        self._stats.reconciliation_messages += message_count

        for peer_id in removed:
            domain.remove_partner(peer_id)
        domain.cooperation.reset_all(now=now)

        if local_summaries is not None:
            contributions = self._live_contributions(domain, local_summaries, available)
            if contributions:
                domain.install_global_summary(
                    merge_hierarchies(
                        [hierarchy for _peer, hierarchy in contributions],
                        owner=domain.summary_peer_id,
                    )
                )
                if self.store_attached:
                    self._record_head(domain, contributions, now)

        record = ReconciliationRecord(
            summary_peer_id=domain.summary_peer_id,
            time=now,
            participants=available,
            removed_partners=removed,
            messages=message_count,
        )
        self._stats.history.append(record)
        return record

    @staticmethod
    def _live_contributions(
        domain: Domain,
        local_summaries: Mapping[str, SummaryHierarchy],
        available: List[str],
    ) -> List[tuple]:
        """``(peer_id, hierarchy)`` pairs a full reconciliation merges, in order."""
        contributions = [
            (peer_id, local_summaries[peer_id])
            for peer_id in available
            if peer_id in local_summaries and not local_summaries[peer_id].is_empty()
        ]
        if domain.summary_peer_id in local_summaries and (
            domain.summary_peer_id not in available
        ):
            own = local_summaries[domain.summary_peer_id]
            if not own.is_empty():
                contributions.append((domain.summary_peer_id, own))
        return contributions

    # -- cold start ---------------------------------------------------------------------------

    def cold_start(
        self,
        domain: Domain,
        local_summaries: Optional[Mapping[str, SummaryHierarchy]] = None,
        available_partners: Optional[Set[str]] = None,
        now: float = 0.0,
    ) -> ColdStartRecord:
        """Rebuild a restarted summary peer's global summary from the store.

        Instead of the full ring reconciliation — one message through *every*
        available partner, each re-shipping its local summary — the summary
        peer looks up its archived head (:class:`DomainHeadArchive`), installs
        the archived contributions by snapshot-hash lookup, and only contacts
        the partners that *changed since*: new partners the head never saw and
        partners whose freshness is no longer FRESH.  The merge visits
        partners in exactly the order a full reconciliation would, so when
        unchanged partners really are unchanged the installed global summary
        is byte-identical to a full reconciliation's — at ``len(changed) + 1``
        ring messages instead of ``len(available) + 1``.

        Falls back to :meth:`reconcile` (and says so in the record) when no
        head was ever archived for this domain, or when no local summaries
        are supplied (planned-content mode has nothing to merge).
        """
        if not self.store_attached:
            raise StoreError(
                "cold_start needs an attached store: call attach_store(...) "
                "with the snapshot store and domain-head archive first"
            )
        assert self._snapshots is not None and self._archive is not None
        head = self._archive.head(domain.summary_peer_id)

        partner_ids = list(domain.partner_ids)
        if available_partners is None:
            available = [
                p for p in partner_ids
                if domain.cooperation.freshness_of(p) is not Freshness.UNAVAILABLE
            ]
        else:
            available = [p for p in partner_ids if p in available_partners]
        # What the full reconciliation this replaces would have charged —
        # honouring the same ring-hop accounting switch as reconcile().
        if self._config.count_reconciliation_ring_hops:
            full_messages = len(available) + 1 if available else 1
        else:
            full_messages = 1

        if head is None or local_summaries is None:
            fallback = self.reconcile(
                domain,
                local_summaries=local_summaries,
                available_partners=available_partners,
                now=now,
            )
            return ColdStartRecord(
                summary_peer_id=domain.summary_peer_id,
                time=now,
                restored_snapshot=None,
                changed_partners=list(fallback.participants),
                removed_partners=list(fallback.removed_partners),
                messages=fallback.messages,
                full_messages=full_messages,
                fallback=True,
            )

        if self._background is None:
            raise StoreError(
                "cold_start must rehydrate archived hierarchies: attach the "
                "store with the common background knowledge"
            )

        stored_pairs = [(peer_id, digest) for peer_id, digest in head["partners"]]
        stored_partners: Dict[str, str] = dict(stored_pairs)
        changed = set(domain.changed_partners_since(set(stored_partners)))
        removed = [p for p in partner_ids if p not in available]
        sp_id = domain.summary_peer_id

        # Plan the contributions in full-reconciliation order: ``None`` marks
        # a live local summary (the partner must re-ship it), a digest marks a
        # store rehydration (no message needed).
        plan: List[tuple] = []
        for peer_id in available:
            if peer_id in changed:
                live = local_summaries.get(peer_id)
                if live is not None and not live.is_empty():
                    plan.append((peer_id, None, live))
            elif peer_id in stored_partners:
                plan.append((peer_id, stored_partners[peer_id], None))
        if sp_id in local_summaries and sp_id not in available:
            own = local_summaries[sp_id]
            if not own.is_empty():
                # The summary peer's own contribution is local (never a ring
                # message); when it still hashes to the archived digest it
                # counts as unchanged, keeping the no-merge fast path
                # reachable in the common nothing-changed restart.
                own_digest = hierarchy_content_hash(own)
                if stored_partners.get(sp_id) == own_digest:
                    plan.append((sp_id, own_digest, None))
                else:
                    plan.append((sp_id, None, own))

        changed_available = [p for p in available if p in changed]
        if not changed_available:
            message_count = 0
        elif self._config.count_reconciliation_ring_hops:
            message_count = len(changed_available) + 1
        else:
            message_count = 1
        if message_count:
            self._counter.record_type(MessageType.RECONCILIATION, message_count)
            self._stats.reconciliation_messages += message_count
        self._stats.cold_starts += 1

        for peer_id in removed:
            domain.remove_partner(peer_id)
        domain.cooperation.reset_all(now=now)

        restored_snapshot: Optional[str] = None
        planned_pairs = [(peer_id, digest) for peer_id, digest, _live in plan]
        if plan and planned_pairs == stored_pairs:
            # Fast path: nothing changed since the head — install the archived
            # global summary directly by hash lookup, no merge at all.
            domain.install_global_summary(
                self._snapshots.get_hierarchy(head["global_summary"], self._background)
            )
            restored_snapshot = head["global_summary"]
        elif plan:
            contributions = [
                (
                    peer_id,
                    live
                    if digest is None
                    else self._snapshots.get_hierarchy(digest, self._background),
                )
                for peer_id, digest, live in plan
            ]
            domain.install_global_summary(
                merge_hierarchies(
                    [hierarchy for _peer, hierarchy in contributions],
                    owner=sp_id,
                )
            )
            restored_snapshot = self._record_head(domain, contributions, now)

        record = ColdStartRecord(
            summary_peer_id=sp_id,
            time=now,
            restored_snapshot=restored_snapshot,
            changed_partners=changed_available,
            removed_partners=removed,
            messages=message_count,
            full_messages=full_messages,
        )
        self._stats.history.append(
            ReconciliationRecord(
                summary_peer_id=sp_id,
                time=now,
                participants=changed_available,
                removed_partners=removed,
                messages=message_count,
            )
        )
        return record

    def maybe_reconcile(
        self,
        domain: Domain,
        local_summaries: Optional[Mapping[str, SummaryHierarchy]] = None,
        available_partners: Optional[Set[str]] = None,
        now: float = 0.0,
    ) -> Optional[ReconciliationRecord]:
        """Reconcile only when the α condition holds; returns the record if run."""
        if not self.needs_reconciliation(domain):
            return None
        return self.reconcile(
            domain,
            local_summaries=local_summaries,
            available_partners=available_partners,
            now=now,
        )

    # -- reporting ------------------------------------------------------------------------------

    def update_traffic(self) -> Dict[MessageType, int]:
        """Push + reconciliation traffic recorded so far."""
        return {
            MessageType.PUSH: self._counter.count(MessageType.PUSH),
            MessageType.RECONCILIATION: self._counter.count(MessageType.RECONCILIATION),
        }
