"""Summary maintenance: push (data modification) and pull (reconciliation).

Section 4.2 of the paper.  Partners watch their local summary; when it has
drifted enough they *push* a one-message freshness update to their summary
peer.  The summary peer watches the fraction of old descriptions in its
cooperation list; when it reaches the threshold α it *pulls* everybody through
a ring-style reconciliation: a single message carrying the new global summary
travels from partner to partner, each one merging its current local summary
in, and comes back to the summary peer which installs the new version and
resets every freshness value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from repro.core.config import ProtocolConfig
from repro.core.domain import Domain
from repro.core.freshness import Freshness
from repro.network.messages import MessageType
from repro.network.metrics import MessageCounter
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.merging import merge_hierarchies


@dataclass
class ReconciliationRecord:
    """One executed reconciliation (diagnostics for the experiments)."""

    summary_peer_id: str
    time: float
    participants: List[str]
    removed_partners: List[str]
    messages: int


@dataclass
class MaintenanceStats:
    """Aggregate maintenance activity of one engine."""

    push_messages: int = 0
    reconciliations: int = 0
    reconciliation_messages: int = 0
    history: List[ReconciliationRecord] = field(default_factory=list)

    def reconciliation_frequency(self, duration_seconds: float) -> float:
        """``F_rec`` of the cost model: reconciliations per second."""
        if duration_seconds <= 0:
            return 0.0
        return self.reconciliations / duration_seconds


class MaintenanceEngine:
    """Implements the push/pull maintenance of the global summaries."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        counter: Optional[MessageCounter] = None,
    ) -> None:
        self._config = config or ProtocolConfig()
        self._counter = counter if counter is not None else MessageCounter()
        self._stats = MaintenanceStats()

    @property
    def config(self) -> ProtocolConfig:
        return self._config

    @property
    def counter(self) -> MessageCounter:
        return self._counter

    @property
    def stats(self) -> MaintenanceStats:
        return self._stats

    # -- push phase --------------------------------------------------------------------------

    def push_stale(self, domain: Domain, peer_id: str, now: float = 0.0) -> bool:
        """A partner flags its descriptions as needing a refresh.

        Returns True when the push tipped the domain over the α threshold
        (i.e. a reconciliation should now run).
        """
        if not domain.is_partner(peer_id):
            return False
        self._counter.record_type(MessageType.PUSH)
        self._stats.push_messages += 1
        domain.cooperation.mark_stale(peer_id, now=now)
        return domain.needs_reconciliation(self._config.freshness_threshold)

    def push_departure(self, domain: Domain, peer_id: str, now: float = 0.0) -> bool:
        """A partner announces it is leaving (freshness 2, or 1 in 1-bit mode)."""
        if not domain.is_partner(peer_id):
            return False
        self._counter.record_type(MessageType.PUSH)
        self._stats.push_messages += 1
        domain.cooperation.mark_departed(peer_id, now=now)
        return domain.needs_reconciliation(self._config.freshness_threshold)

    def register_silent_failure(self, domain: Domain, peer_id: str) -> None:
        """A partner failed without notification: nothing happens immediately.

        Its stale descriptions remain in the global summary until the next
        reconciliation (Section 4.3); this hook exists so that callers make the
        non-event explicit and so tests can assert that no message is counted.
        """
        # Intentionally no message and no freshness change.
        _ = (domain, peer_id)

    # -- pull phase ---------------------------------------------------------------------------

    def needs_reconciliation(self, domain: Domain) -> bool:
        return domain.needs_reconciliation(self._config.freshness_threshold)

    def reconcile(
        self,
        domain: Domain,
        local_summaries: Optional[Mapping[str, SummaryHierarchy]] = None,
        available_partners: Optional[Set[str]] = None,
        now: float = 0.0,
    ) -> ReconciliationRecord:
        """Run one ring reconciliation on ``domain``.

        Parameters
        ----------
        local_summaries:
            Current local summaries of the partners; when provided the new
            global summary is materialised by merging them (available partners
            only).  When omitted the reconciliation only updates the metadata
            (cooperation list, message counts) — the mode used by the
            large-scale, content-free simulations.
        available_partners:
            Partners currently reachable.  Unreachable ones do not take part
            and their entries are removed: "descriptions of unavailable data
            will be then omitted".
        """
        partner_ids = list(domain.partner_ids)
        if available_partners is None:
            available = [p for p in partner_ids
                         if domain.cooperation.freshness_of(p) is not Freshness.UNAVAILABLE]
        else:
            available = [p for p in partner_ids if p in available_partners]
        removed = [p for p in partner_ids if p not in available]

        # One reconciliation message circulates: SP -> p1 -> ... -> pk -> SP.
        if self._config.count_reconciliation_ring_hops:
            message_count = len(available) + 1 if available else 1
        else:
            message_count = 1
        self._counter.record_type(MessageType.RECONCILIATION, message_count)
        self._stats.reconciliations += 1
        self._stats.reconciliation_messages += message_count

        for peer_id in removed:
            domain.remove_partner(peer_id)
        domain.cooperation.reset_all(now=now)

        if local_summaries is not None:
            hierarchies = [
                local_summaries[peer_id]
                for peer_id in available
                if peer_id in local_summaries
                and not local_summaries[peer_id].is_empty()
            ]
            if domain.summary_peer_id in local_summaries and (
                domain.summary_peer_id not in available
            ):
                own = local_summaries[domain.summary_peer_id]
                if not own.is_empty():
                    hierarchies.append(own)
            if hierarchies:
                domain.install_global_summary(
                    merge_hierarchies(hierarchies, owner=domain.summary_peer_id)
                )

        record = ReconciliationRecord(
            summary_peer_id=domain.summary_peer_id,
            time=now,
            participants=available,
            removed_partners=removed,
            messages=message_count,
        )
        self._stats.history.append(record)
        return record

    def maybe_reconcile(
        self,
        domain: Domain,
        local_summaries: Optional[Mapping[str, SummaryHierarchy]] = None,
        available_partners: Optional[Set[str]] = None,
        now: float = 0.0,
    ) -> Optional[ReconciliationRecord]:
        """Reconcile only when the α condition holds; returns the record if run."""
        if not self.needs_reconciliation(domain):
            return None
        return self.reconcile(
            domain,
            local_summaries=local_summaries,
            available_partners=available_partners,
            now=now,
        )

    # -- reporting ------------------------------------------------------------------------------

    def update_traffic(self) -> Dict[MessageType, int]:
        """Push + reconciliation traffic recorded so far."""
        return {
            MessageType.PUSH: self._counter.count(MessageType.PUSH),
            MessageType.RECONCILIATION: self._counter.count(MessageType.RECONCILIATION),
        }
