"""Approximate answering at the domain level.

The distinctive second use of summaries (Section 5.2.2): a query posed to a
summary peer can be answered entirely from the domain's global summary,
without touching any raw record.  The answer is a set of interpretation
classes whose output descriptors characterise the selected data, e.g. *"all
female patients diagnosed with anorexia and having an underweight or normal
BMI are young"*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.domain import Domain
from repro.database.query import SelectionQuery
from repro.exceptions import ProtocolError, QueryError
from repro.fuzzy.background import BackgroundKnowledge
from repro.querying.aggregation import ApproximateAnswer, approximate_answer
from repro.querying.proposition import Proposition
from repro.querying.reformulation import reformulate
from repro.querying.selection import QuerySelection, select_summaries


@dataclass
class DomainAnswer:
    """An approximate answer together with the underlying selection."""

    domain_id: str
    flexible_query: SelectionQuery
    proposition: Proposition
    selection: QuerySelection
    answer: ApproximateAnswer

    @property
    def relevant_peers(self) -> set:
        """Peer localization output ``P_Q`` for the same query."""
        return self.selection.peer_extent()

    @property
    def estimated_matching_records(self) -> float:
        return self.selection.matching_tuple_count()


def answer_in_domain(
    domain: Domain,
    query: SelectionQuery,
    background: BackgroundKnowledge,
    already_flexible: bool = False,
    use_selection_cache: bool = True,
) -> DomainAnswer:
    """Evaluate ``query`` against ``domain``'s global summary.

    Raises :class:`ProtocolError` if the domain has no global summary yet and
    :class:`QueryError` if the query cannot be reformulated under ``background``.
    ``use_selection_cache=False`` forces the pure tree-walk selection (the
    uncached reference path); the default goes through the hierarchy's
    indexed, memoized engine — node-for-node identical, and the returned
    ``selection`` is then a shared cached instance (treat it as read-only).
    """
    if not domain.has_global_summary():
        raise ProtocolError(
            f"domain {domain.summary_peer_id!r} has no global summary to query"
        )
    flexible = query if already_flexible else reformulate(query, background)
    if not flexible.is_flexible():
        unhandled = [
            predicate
            for predicate in flexible.predicates
            if predicate.attribute not in background
        ]
        if unhandled:
            raise QueryError(
                "the query constrains attributes the background knowledge does "
                f"not describe: {[p.attribute for p in unhandled]}"
            )
    proposition = Proposition.from_query(
        SelectionQuery(
            flexible.relation,
            flexible.descriptor_predicates(),
            flexible.select,
        )
    )
    assert domain.global_summary is not None  # has_global_summary() checked above
    if use_selection_cache:
        selection = domain.global_summary.select(proposition)
    else:
        selection = select_summaries(domain.global_summary, proposition)
    answer = approximate_answer(selection, proposition, flexible.select)
    return DomainAnswer(
        domain_id=domain.summary_peer_id,
        flexible_query=flexible,
        proposition=proposition,
        selection=selection,
        answer=answer,
    )


def localize_peers(
    domain: Domain,
    query: SelectionQuery,
    background: BackgroundKnowledge,
    already_flexible: bool = False,
) -> set:
    """Peer localization only: the set ``P_Q`` of relevant peers for ``query``."""
    return answer_in_domain(
        domain, query, background, already_flexible=already_flexible
    ).relevant_peers


def answer_across_domains(
    domains,
    query: SelectionQuery,
    background: BackgroundKnowledge,
) -> Optional[ApproximateAnswer]:
    """Merge the approximate answers of several domains into one.

    Domains without a global summary are skipped; returns None when no domain
    could answer.
    """
    merged: Optional[ApproximateAnswer] = None
    for domain in domains:
        if not domain.has_global_summary():
            continue
        result = answer_in_domain(domain, query, background)
        if merged is None:
            merged = result.answer
        else:
            merged.classes.extend(result.answer.classes)
    return merged
