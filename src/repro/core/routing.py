"""Summary-based query routing (Section 5.2.1 and the flooding extension).

Inside a domain, a query posed at peer ``p`` travels to the summary peer
(1 message), which matches it against the global summary to obtain the set of
relevant peers ``P_Q``; the query is then sent to a routing set ``V`` derived
from ``P_Q`` and the cooperation list:

* ``ALL`` — ``V = P_Q`` (the default of the cost model),
* ``PRECISION`` — ``V = P_Q ∩ P_fresh``: no false positives, possible false
  negatives,
* ``RECALL`` — ``V = P_Q ∪ P_old``: no false negatives, possible false
  positives.

Peers holding matching data answer with one response message.  When the
required number of results exceeds what one domain provides, the inter-domain
flooding extension kicks in: the summary peer asks the answering peers and the
originator to flood their extra-domain neighbours with a small TTL, and also
forwards the request to the other summary peers it knows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.config import ProtocolConfig
from repro.core.content import ContentModel
from repro.core.domain import Domain
from repro.database.query import SelectionQuery
from repro.network.messages import MessageType
from repro.network.metrics import MessageCounter
from repro.network.overlay import Overlay
from repro.querying.proposition import Proposition


class RoutingPolicy(enum.Enum):
    """How the routing set ``V`` is derived from ``P_Q`` and the cooperation list."""

    ALL = "all"
    PRECISION = "precision"
    RECALL = "recall"


@dataclass
class DomainQueryOutcome:
    """Result of processing a query inside one domain."""

    domain_id: str
    relevant_peers: Set[str] = field(default_factory=set)
    contacted_peers: Set[str] = field(default_factory=set)
    responding_peers: Set[str] = field(default_factory=set)
    false_positives: Set[str] = field(default_factory=set)
    false_negatives: Set[str] = field(default_factory=set)
    messages: int = 0

    @property
    def results(self) -> int:
        return len(self.responding_peers)

    @property
    def false_positive_rate(self) -> float:
        if not self.contacted_peers:
            return 0.0
        return len(self.false_positives) / len(self.contacted_peers)

    @property
    def false_negative_rate(self) -> float:
        denominator = len(self.responding_peers) + len(self.false_negatives)
        if denominator == 0:
            return 0.0
        return len(self.false_negatives) / denominator


@dataclass
class QueryRequest:
    """One query of a batch posed through ``pose_queries`` / ``query_batch``.

    Mirrors the parameters of ``SummaryManagementSystem.pose_query``: a real
    query (``query``), an already-allocated planned id (``query_id``), or
    neither (an id is allocated when the request is posed).
    """

    originator: str
    query: Optional[SelectionQuery] = None
    query_id: Optional[int] = None
    policy: RoutingPolicy = RoutingPolicy.ALL
    required_results: Optional[int] = None
    max_domains: Optional[int] = None


@dataclass
class QueryRoutingResult:
    """End-to-end result of a routed query (possibly spanning several domains)."""

    query_id: int
    originator: str
    policy: RoutingPolicy
    domain_outcomes: List[DomainQueryOutcome] = field(default_factory=list)
    flooding_messages: int = 0
    total_messages: int = 0
    required_results: Optional[int] = None
    #: Domains whose summary peer could not be reached (network partition):
    #: their probes went unanswered and they contributed no outcome.
    unreachable_domains: List[str] = field(default_factory=list)
    #: Query messages spent probing (and re-probing) unreachable domains.
    unreachable_probe_messages: int = 0

    @property
    def results(self) -> int:
        return sum(outcome.results for outcome in self.domain_outcomes)

    @property
    def domains_visited(self) -> int:
        return len(self.domain_outcomes)

    @property
    def contacted_peers(self) -> Set[str]:
        contacted: Set[str] = set()
        for outcome in self.domain_outcomes:
            contacted |= outcome.contacted_peers
        return contacted

    @property
    def responding_peers(self) -> Set[str]:
        responding: Set[str] = set()
        for outcome in self.domain_outcomes:
            responding |= outcome.responding_peers
        return responding

    @property
    def false_positive_rate(self) -> float:
        contacted = sum(len(o.contacted_peers) for o in self.domain_outcomes)
        if contacted == 0:
            return 0.0
        false_positives = sum(len(o.false_positives) for o in self.domain_outcomes)
        return false_positives / contacted

    @property
    def false_negative_rate(self) -> float:
        responding = sum(len(o.responding_peers) for o in self.domain_outcomes)
        missed = sum(len(o.false_negatives) for o in self.domain_outcomes)
        if responding + missed == 0:
            return 0.0
        return missed / (responding + missed)

    def satisfied(self) -> bool:
        if self.required_results is None:
            return True
        return self.results >= self.required_results


class QueryRouter:
    """Routes queries inside domains and accounts for every message."""

    def __init__(
        self,
        config: Optional[ProtocolConfig] = None,
        counter: Optional[MessageCounter] = None,
    ) -> None:
        self._config = config or ProtocolConfig()
        self._counter = counter if counter is not None else MessageCounter()
        #: Answer "which contacted peers truly match" with one set operation
        #: (``ContentModel.matching_among``) instead of a per-peer
        #: ``truly_matching`` loop.  The loop is retained as the equivalence
        #: reference; both produce identical sets.
        self.use_set_matching = True
        #: Memoize each initiator's extra-domain neighbour count for
        #: ``flooding_cost``, keyed on (overlay version, domain membership
        #: version) so any overlay or partner-set mutation invalidates.
        self.flooding_cache_enabled = True
        self._flood_cache: Dict[Tuple[str, str], Tuple[int, int, int]] = {}
        #: Metrics+trace hook (installed by the owning system); None keeps
        #: routing on the uninstrumented path.
        self.observability = None

    @property
    def counter(self) -> MessageCounter:
        return self._counter

    # -- single-domain processing ----------------------------------------------------------

    def route_in_domain(
        self,
        query_id: int,
        domain: Domain,
        content: ContentModel,
        proposition: Optional[Proposition] = None,
        policy: RoutingPolicy = RoutingPolicy.ALL,
        online_peers: Optional[Set[str]] = None,
        charge_summary_peer_hop: bool = True,
        described_partners: Optional[Set[str]] = None,
        faults: Optional[object] = None,
        max_retries: int = 0,
    ) -> DomainQueryOutcome:
        """Process a query inside ``domain`` and account for its messages.

        ``online_peers`` restricts ground-truth matching and response traffic
        to currently reachable peers (an offline relevant peer produces no
        response — it is a false positive if contacted).  ``described_partners``
        restricts the scope the global summary can designate as relevant: a
        partner that joined after the last reconciliation is not yet described
        by the global summary, so it cannot appear in ``P_Q`` even though it
        sits in the cooperation list.

        ``faults`` (a :class:`~repro.network.faults.FaultInjector`) makes the
        summary-peer → partner hops fallible: a contacted partner on a lossy
        link is retried up to ``max_retries`` times (each retransmission is a
        charged QUERY message); a partner the faults keep unreachable never
        responds and becomes a false positive.  Partition-separated partners
        are cut deterministically without consuming randomness.
        """
        obs = self.observability
        # Per-domain metrics are recorded at the query level (from the domain
        # outcomes) so this inner loop stays free of registry traffic; only
        # detail-mode tracing pays a span here.
        if obs is None or not obs.detail:
            return self._route_in_domain(
                query_id,
                domain,
                content,
                proposition,
                policy,
                online_peers,
                charge_summary_peer_hop,
                described_partners,
                faults,
                max_retries,
            )
        with obs.span(
            "route-domain", {"domain": domain.summary_peer_id, "query_id": query_id}
        ) as span:
            outcome = self._route_in_domain(
                query_id,
                domain,
                content,
                proposition,
                policy,
                online_peers,
                charge_summary_peer_hop,
                described_partners,
                faults,
                max_retries,
            )
            span.attrs.update(messages=outcome.messages, results=outcome.results)
        return outcome

    def _route_in_domain(
        self,
        query_id: int,
        domain: Domain,
        content: ContentModel,
        proposition: Optional[Proposition],
        policy: RoutingPolicy,
        online_peers: Optional[Set[str]],
        charge_summary_peer_hop: bool,
        described_partners: Optional[Set[str]],
        faults: Optional[object],
        max_retries: int,
    ) -> DomainQueryOutcome:
        obs = self.observability
        outcome = DomainQueryOutcome(domain_id=domain.summary_peer_id)

        if charge_summary_peer_hop:
            # The originator (or the forwarding summary peer) sends the query
            # to this domain's summary peer.
            self._counter.record_type(MessageType.QUERY)
            outcome.messages += 1

        partners = set(domain.partner_ids)
        scope = partners if described_partners is None else (partners & described_partners)
        if obs is None or not obs.detail:
            relevant = content.relevant_partners(
                query_id, scope, domain.global_summary, proposition
            )
        else:
            with obs.span(
                "hierarchy-selection",
                {"domain": domain.summary_peer_id, "scope": len(scope)},
            ) as selection:
                relevant = content.relevant_partners(
                    query_id, scope, domain.global_summary, proposition
                )
                selection.attrs["relevant"] = len(relevant)
        outcome.relevant_peers = set(relevant)

        contacted = self._routing_set(domain, relevant, policy)
        if online_peers is not None:
            reachable = contacted & online_peers
        else:
            reachable = set(contacted)
        outcome.contacted_peers = set(contacted)

        # One query message per contacted peer.
        self._counter.record_type(MessageType.QUERY, len(contacted))
        outcome.messages += len(contacted)

        if faults is not None:
            sp_id = domain.summary_peer_id
            if faults.partitioned:
                # Partners on the far side of a partition cannot be reached:
                # deterministic cut, no randomness consumed.
                cut = {p for p in reachable if not faults.reachable(sp_id, p)}
                if cut:
                    reachable -= cut
                    self._counter.record_dropped("partitioned", len(cut))
                    if obs is not None:
                        obs.inc(
                            "repro_fault_dropped_total", len(cut), reason="partitioned"
                        )
            if faults.lossy and reachable:
                lost: Set[str] = set()
                retransmissions = 0
                dropped = 0
                for peer_id in sorted(reachable):
                    delivered, retries = faults.attempt_delivery(
                        sp_id, peer_id, max_retries
                    )
                    retransmissions += retries
                    dropped += retries + (0 if delivered else 1)
                    if not delivered:
                        lost.add(peer_id)
                if retransmissions:
                    # Each retry is one more QUERY on the wire.
                    self._counter.record_type(MessageType.QUERY, retransmissions)
                    self._counter.record_retry(retransmissions)
                    outcome.messages += retransmissions
                    if obs is not None:
                        obs.inc("repro_query_retries_total", retransmissions)
                if dropped:
                    self._counter.record_dropped("link loss", dropped)
                    if obs is not None:
                        obs.inc(
                            "repro_fault_dropped_total", dropped, reason="link loss"
                        )
                reachable -= lost

        if self.use_set_matching:
            outcome.responding_peers = content.matching_among(query_id, reachable)
        else:
            # Reference path: per-peer ground-truth loop (kept for
            # equivalence tests against the set-intersection fast path).
            for peer_id in sorted(reachable):
                if content.truly_matching(query_id, peer_id):
                    outcome.responding_peers.add(peer_id)
        outcome.false_positives = outcome.contacted_peers - outcome.responding_peers

        # One response message per matching peer.
        self._counter.record_type(MessageType.QUERY_RESPONSE, len(outcome.responding_peers))
        outcome.messages += len(outcome.responding_peers)

        # False negatives: partners holding matching data that were not contacted.
        candidates = partners if online_peers is None else partners & online_peers
        uncontacted = candidates - outcome.contacted_peers
        if self.use_set_matching:
            outcome.false_negatives = content.matching_among(query_id, uncontacted)
        else:
            for peer_id in sorted(uncontacted):
                if content.truly_matching(query_id, peer_id):
                    outcome.false_negatives.add(peer_id)
        return outcome

    def _routing_set(
        self, domain: Domain, relevant: Set[str], policy: RoutingPolicy
    ) -> Set[str]:
        if policy is RoutingPolicy.ALL:
            return set(relevant)
        fresh = set(domain.fresh_partners())
        old = set(domain.old_partners())
        if policy is RoutingPolicy.PRECISION:
            return relevant & fresh
        return relevant | old

    # -- inter-domain flooding --------------------------------------------------------------

    def flooding_cost(
        self,
        overlay: Overlay,
        domain: Domain,
        responding_peers: Iterable[str],
        originator: str,
        known_summary_peers: Iterable[str] = (),
        target_domains: int = 1,
    ) -> int:
        """Messages of one inter-domain flooding round started from ``domain``.

        The summary peer sends a flooding request to each answering peer of the
        current domain and to the originator; each of them forwards the query
        to its neighbours that do not belong to the domain, stopping as soon as
        a new domain is reached or the TTL runs out (Section 5.2.2) — so the
        per-initiator cost is bounded by its number of extra-domain neighbours,
        not by a full TTL-wide flood.  The summary peer additionally forwards
        the request to the summary peers it knows, which is what lets the query
        cover many domains quickly; ``target_domains`` bounds how many of those
        long-range links are actually used.
        """
        responders = set(responding_peers)
        initiators = responders | {originator}
        request_messages = len(initiators)
        self._counter.record_type(MessageType.FLOOD_REQUEST, request_messages)

        flood_messages = 0
        domain_members: Optional[Set[str]] = None
        cache_tag = (overlay.version, domain.membership_version)
        for peer_id in sorted(initiators):
            if self.flooding_cache_enabled:
                key = (domain.summary_peer_id, peer_id)
                entry = self._flood_cache.get(key)
                if entry is not None and entry[:2] == cache_tag:
                    flood_messages += entry[2]
                    continue
            if peer_id not in overlay.graph:
                if self.flooding_cache_enabled:
                    self._flood_cache[key] = cache_tag + (0,)
                continue
            if domain_members is None:
                domain_members = set(domain.partner_ids) | {domain.summary_peer_id}
            outside = [
                neighbour
                for neighbour in overlay.neighbors(peer_id)
                if neighbour not in domain_members
            ]
            # One hop per extra-domain neighbour: the probe stops as soon as it
            # lands in another domain, and with high-degree superpeers almost
            # every extra-domain neighbour already belongs to one.
            if self.flooding_cache_enabled:
                self._flood_cache[key] = cache_tag + (len(outside),)
            flood_messages += len(outside)
        known = [sp for sp in known_summary_peers if sp != domain.summary_peer_id]
        flood_messages += min(len(known), max(0, target_domains))
        self._counter.record_type(MessageType.FLOOD_QUERY, flood_messages)
        return request_messages + flood_messages
