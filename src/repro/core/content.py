"""Content models: how the protocol engine decides which peers hold answers.

Two interchangeable models are provided:

* :class:`SummaryContentModel` — the real thing: every peer owns a database and
  a local summary; domain-level relevance comes from querying the global
  summary; ground truth comes from evaluating the query on the raw databases.
  Used by the examples and the integration tests.

* :class:`PlannedContentModel` — the evaluation model of Section 6: each query
  is matched by a fixed fraction of peers (10 % in Table 3).  The peers
  matching a query are planned up-front; summaries are assumed complete and
  consistent at reconciliation time, so relevance equals the plan and
  staleness effects come only from churn/modification events.  This keeps
  simulations of up to 5000 peers fast while exercising exactly the routing
  and maintenance message flows the paper measures.
"""

from __future__ import annotations

import abc
import random
from typing import Dict, Iterable, List, Mapping, Optional, Set

from repro.database.query import SelectionQuery
from repro.exceptions import ConfigurationError
from repro.querying.proposition import Proposition
from repro.querying.selection import select_summaries
from repro.saintetiq.hierarchy import SummaryHierarchy


class ContentModel(abc.ABC):
    """Answers the two content questions the routing layer asks."""

    @abc.abstractmethod
    def relevant_partners(
        self,
        query_id: int,
        domain_partners: Iterable[str],
        global_summary: Optional[SummaryHierarchy],
        proposition: Optional[Proposition],
    ) -> Set[str]:
        """Partners of a domain that the *global summary* designates as relevant."""

    @abc.abstractmethod
    def truly_matching(self, query_id: int, peer_id: str) -> bool:
        """Ground truth: does ``peer_id`` currently hold data matching the query?"""

    def matching_among(self, query_id: int, peers: Iterable[str]) -> Set[str]:
        """Subset of ``peers`` that truly match the query.

        The default implementation is the per-peer ``truly_matching`` loop;
        models that hold their ground truth as a set override it with a set
        intersection (same result, no per-peer call overhead).
        """
        return {
            peer_id for peer_id in peers if self.truly_matching(query_id, peer_id)
        }


class SummaryContentModel(ContentModel):
    """Relevance from real summaries, ground truth from real databases.

    ``use_selection_cache`` picks how the global summary is explored: the
    indexed + memoized engine path (:meth:`SummaryHierarchy.select`, the
    default) or the pure tree walk (:func:`select_summaries`).  Both produce
    node-for-node identical selections; the pure path is retained as the
    uncached reference for equivalence tests and A/B benchmarks.
    """

    def __init__(
        self,
        queries: Dict[int, SelectionQuery],
        databases: Dict[str, object],
        use_selection_cache: bool = True,
    ) -> None:
        self._queries = queries
        self._databases = databases
        self.use_selection_cache = use_selection_cache

    def register_query(self, query_id: int, query: SelectionQuery) -> None:
        self._queries[query_id] = query

    def relevant_partners(
        self,
        query_id: int,
        domain_partners: Iterable[str],
        global_summary: Optional[SummaryHierarchy],
        proposition: Optional[Proposition],
    ) -> Set[str]:
        if global_summary is None or proposition is None:
            return set()
        if self.use_selection_cache:
            selection = global_summary.select(proposition)
        else:
            selection = select_summaries(global_summary, proposition)
        return selection.peer_extent_view().intersection(domain_partners)

    def truly_matching(self, query_id: int, peer_id: str) -> bool:
        database = self._databases.get(peer_id)
        query = self._queries.get(query_id)
        if database is None or query is None:
            return False
        return database.has_match(query)  # type: ignore[attr-defined]


class PlannedContentModel(ContentModel):
    """Synthetic relevance: a fixed fraction of peers matches each query.

    The model also tracks, per peer, whether its database has *changed* since
    the last reconciliation with respect to each query — the ingredient behind
    the paper's distinction between worst-case and real staleness estimates
    (Figures 4 and 5).
    """

    def __init__(
        self,
        peer_ids: List[str],
        matching_fraction: float = 0.1,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= matching_fraction <= 1.0:
            raise ConfigurationError("matching_fraction must lie in [0, 1]")
        self._peer_ids = list(peer_ids)
        self._matching_fraction = matching_fraction
        self._rng = random.Random(seed)
        self._matching: Dict[int, Set[str]] = {}
        #: Peers whose data changed (relative to any query) since the summary
        #: version currently installed in their domain.
        self._modified_peers: Set[str] = set()
        #: Peers that departed and whose data is therefore gone.
        self._departed_peers: Set[str] = set()

    # -- plan management -----------------------------------------------------------------

    @property
    def matching_fraction(self) -> float:
        return self._matching_fraction

    def plan_query(self, query_id: int) -> Set[str]:
        """Choose the matching peers for a query (10 % of the network by default)."""
        return set(self._plan(query_id))

    def _plan(self, query_id: int) -> Set[str]:
        """The stored plan itself (drawn on first use) — internal, no copy.

        The hot per-peer ``truly_matching`` membership tests run against this
        set directly; :meth:`plan_query` hands out defensive copies.
        """
        plan = self._matching.get(query_id)
        if plan is not None:
            return plan
        population = [p for p in self._peer_ids if p not in self._departed_peers]
        target = round(self._matching_fraction * len(self._peer_ids))
        target = min(max(target, 1 if self._matching_fraction > 0 else 0), len(population))
        chosen = set(self._rng.sample(population, target)) if target else set()
        self._matching[query_id] = chosen
        return chosen

    def matching_peers(self, query_id: int) -> Set[str]:
        return self.plan_query(query_id)

    # -- checkpoint state ------------------------------------------------------------------

    def state_payload(self) -> Dict[str, object]:
        """JSON-compatible snapshot of the whole plan (RNG state included)."""
        version, internal, position = self._rng.getstate()
        return {
            "peer_ids": list(self._peer_ids),
            "matching_fraction": self._matching_fraction,
            "rng_state": [version, list(internal), position],
            "matching": {
                str(query_id): sorted(peers)
                for query_id, peers in self._matching.items()
            },
            "modified_peers": sorted(self._modified_peers),
            "departed_peers": sorted(self._departed_peers),
        }

    @classmethod
    def from_state(cls, payload: Mapping[str, object]) -> "PlannedContentModel":
        """Rebuild a plan whose future draws match the captured model exactly."""
        model = cls(
            list(payload["peer_ids"]),  # type: ignore[arg-type]
            matching_fraction=float(payload["matching_fraction"]),  # type: ignore[arg-type]
        )
        version, internal, position = payload["rng_state"]  # type: ignore[misc]
        model._rng.setstate((version, tuple(internal), position))
        model._matching = {
            int(query_id): set(peers)
            for query_id, peers in payload["matching"].items()  # type: ignore[union-attr]
        }
        model._modified_peers = set(payload["modified_peers"])  # type: ignore[arg-type]
        model._departed_peers = set(payload["departed_peers"])  # type: ignore[arg-type]
        return model

    # -- churn / modification hooks --------------------------------------------------------

    def mark_modified(self, peer_id: str) -> None:
        self._modified_peers.add(peer_id)

    def mark_departed(self, peer_id: str) -> None:
        self._departed_peers.add(peer_id)

    def mark_rejoined(self, peer_id: str) -> None:
        self._departed_peers.discard(peer_id)

    def clear_modification(self, peer_id: str) -> None:
        """Called when a reconciliation refreshes the peer's descriptions."""
        self._modified_peers.discard(peer_id)

    def is_modified(self, peer_id: str) -> bool:
        return peer_id in self._modified_peers

    def is_departed(self, peer_id: str) -> bool:
        return peer_id in self._departed_peers

    # -- ContentModel API ---------------------------------------------------------------------

    def relevant_partners(
        self,
        query_id: int,
        domain_partners: Iterable[str],
        global_summary: Optional[SummaryHierarchy],
        proposition: Optional[Proposition],
    ) -> Set[str]:
        # The global summary reflects the state at the last reconciliation: a
        # peer is designated relevant if it matched the query according to the
        # descriptions recorded then.  Peers that departed or modified their
        # data since then are exactly the ones whose designation may be stale.
        matching = self._plan(query_id)
        return matching & set(domain_partners)

    def truly_matching(self, query_id: int, peer_id: str) -> bool:
        if peer_id in self._departed_peers:
            return False
        return peer_id in self._plan(query_id)

    def matching_among(self, query_id: int, peers: Iterable[str]) -> Set[str]:
        # Set-intersection form of the truly_matching loop: the plan is a set
        # already, so "which of these peers match" is one intersection and one
        # difference instead of len(peers) membership-test calls.
        plan = self._plan(query_id)
        if not isinstance(peers, (set, frozenset)):
            peers = set(peers)
        return (peers & plan) - self._departed_peers
