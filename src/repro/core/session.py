"""The declarative session façade over the whole protocol machine.

The paper's protocol is one coherent machine — overlay + domains + local
summaries + maintenance + churn + summary querying — but wiring it by hand is
an order-sensitive ritual (construct the overlay, construct the system, attach
content, build domains, schedule churn, run, pose queries...).  This module
collapses that ritual into two classes:

* :class:`SystemBuilder` — a fluent, declarative builder.  Every aspect of a
  network is stated up front (``.topology(...)``, ``.background(...)``,
  ``.planned_content(...)`` / ``.real_content(...)``, ``.domains(...)``,
  ``.churn(...)``, ``.modifications(...)``, ``.seed(...)``); ``.build()``
  validates the whole configuration — raising :class:`ConfigurationError`
  with a pointed message instead of letting a half-wired system fail with a
  mid-run :class:`ProtocolError` — and assembles the simulator, overlay and
  :class:`~repro.core.protocol.SummaryManagementSystem` in the exact order the
  imperative API required.

* :class:`NetworkSession` — the façade returned by ``.build()``.  It owns the
  assembled system and exposes the redesigned query surface:
  :meth:`NetworkSession.query` returns a :class:`QueryAnswer` bundling the
  routing result, the approximate (summary-only) answer, the per-query
  staleness snapshot and the traffic deltas in one value, while
  :meth:`NetworkSession.run_until`, :meth:`NetworkSession.maintenance_report`
  and :meth:`NetworkSession.traffic` cover the simulation and reporting side.

The legacy constructor wiring keeps working (the builder delegates to it), but
new code — the experiment drivers, the workload scenarios, the examples and
the CLI all construct networks through this module.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.runtime import ExecutionBackend, RuntimeSpec
    from repro.store.backend import StoreBackend
    from repro.store.lazy import HierarchySource

from repro.core.config import ProtocolConfig
from repro.core.construction import ConstructionReport
from repro.core.content import ContentModel, PlannedContentModel
from repro.core.domain import Domain
from repro.core.protocol import (
    QUERY_MESSAGE_TYPES,
    UPDATE_MESSAGE_TYPES,
    StalenessSnapshot,
    SummaryManagementSystem,
)
from repro.core.routing import QueryRequest, QueryRoutingResult, RoutingPolicy
from repro.database.engine import LocalDatabase
from repro.database.query import SelectionQuery
from repro.exceptions import ConfigurationError, QueryError, ReadOnlySessionError
from repro.fuzzy.background import BackgroundKnowledge
from repro.network.churn import LifetimeDistribution
from repro.network.faults import FaultPlan, FaultStats
from repro.network.metrics import MessageCounter, TrafficReport
from repro.network.overlay import Overlay
from repro.network.simulator import Simulator
from repro.network.topology import TopologyConfig
from repro.querying.aggregation import ApproximateAnswer


@dataclass
class DegradationReport:
    """How incomplete or stale one answer is *known* to be.

    A query posed under adverse conditions (partition, heavy loss, massacre)
    still returns a :class:`QueryAnswer` — but a marked one: this report says
    which domains could not be reached at all and how many of the described
    peers per visited domain were known-stale at answer time.  An empty
    report (``complete`` and not ``degraded``) is the healthy-network case.
    """

    #: Domains whose summary peer was unreachable from the originator.
    unreachable_domains: List[str] = field(default_factory=list)
    #: Per visited domain: how many described partners were known-stale.
    stale_described: Dict[str, int] = field(default_factory=dict)
    #: Query messages burnt probing (and re-probing) unreachable domains.
    probe_messages: int = 0

    @property
    def complete(self) -> bool:
        """True when every domain of the network was reachable."""
        return not self.unreachable_domains

    @property
    def degraded(self) -> bool:
        """True when the answer is known to be partial or partly stale."""
        return bool(self.unreachable_domains) or any(self.stale_described.values())


@dataclass
class QueryAnswer:
    """Everything one posed query produced, in a single typed value.

    Bundles the four things callers previously had to collect by hand from
    four different objects: the :class:`QueryRoutingResult` (who was
    contacted, who answered, at what message cost), the approximate
    summary-only answer (real content only), the staleness snapshot of the
    answer (planned content only) and the query/update traffic deltas the
    call produced on the system-wide counter.
    """

    routing: QueryRoutingResult
    #: Approximate answer computed from the visited domains' global summaries
    #: (Section 5.2.2); ``None`` in planned-content mode or when no visited
    #: domain could answer.
    answer: Optional[ApproximateAnswer] = None
    #: Staleness accounting for this query (planned content only).
    staleness: Optional[StalenessSnapshot] = None
    #: What this answer is known to be missing (always present on session
    #: queries; ``complete`` and un-``degraded`` on a healthy network).
    degradation: Optional[DegradationReport] = None
    #: Query-side messages (query/response/flooding) this call added.
    query_messages: int = 0
    #: Update-side messages (push/reconciliation) this call added — normally 0.
    update_messages: int = 0
    #: Simulated time at which the query was posed.
    posed_at: float = 0.0

    # -- delegation to the routing result -------------------------------------------

    @property
    def query_id(self) -> int:
        return self.routing.query_id

    @property
    def originator(self) -> str:
        return self.routing.originator

    @property
    def results(self) -> int:
        return self.routing.results

    @property
    def total_messages(self) -> int:
        return self.routing.total_messages

    @property
    def domains_visited(self) -> int:
        return self.routing.domains_visited

    @property
    def contacted_peers(self) -> Set[str]:
        return self.routing.contacted_peers

    @property
    def responding_peers(self) -> Set[str]:
        return self.routing.responding_peers

    @property
    def false_positive_rate(self) -> float:
        return self.routing.false_positive_rate

    @property
    def false_negative_rate(self) -> float:
        return self.routing.false_negative_rate

    def satisfied(self) -> bool:
        return self.routing.satisfied()


@dataclass
class MaintenanceReport:
    """Push/reconciliation activity over a simulation window."""

    duration_seconds: float
    push_messages: int
    reconciliations: int
    reconciliation_messages: int
    update_traffic: TrafficReport

    @property
    def update_messages(self) -> int:
        return self.update_traffic.total_messages

    @property
    def messages_per_node(self) -> float:
        return self.update_traffic.messages_per_node

    @property
    def messages_per_node_per_second(self) -> float:
        return self.update_traffic.messages_per_node_per_second


@dataclass
class SessionTraffic:
    """Update- and query-side traffic reports over one window."""

    update: TrafficReport
    query: TrafficReport

    @property
    def total_messages(self) -> int:
        return self.update.total_messages + self.query.total_messages


@dataclass
class _ChurnPlan:
    duration_seconds: float
    lifetime: Optional[LifetimeDistribution] = None
    downtime_seconds: float = 600.0
    graceful_fraction: float = 0.9
    rejoin: bool = True
    include_summary_peers: bool = False


@dataclass
class _ModificationPlan:
    duration_seconds: float
    rate_per_peer_per_second: float


class SystemBuilder:
    """Declarative, validated assembly of a summary-management network.

    Every method returns the builder, so a whole network reads as one
    expression::

        session = (
            SystemBuilder()
            .topology(peer_count=500, average_degree=4)
            .planned_content(hit_rate=0.1)
            .churn(duration_seconds=6 * 3600.0)
            .seed(42)
            .build()
        )

    ``.build()`` validates the configuration up front and raises
    :class:`ConfigurationError` on any inconsistency (missing topology,
    real content without background knowledge, both content modes at once,
    churn without a positive horizon...), then wires the system in the
    canonical order: overlay → system → content → domains → event schedule.
    """

    def __init__(self) -> None:
        self._topology_config: Optional[TopologyConfig] = None
        self._topology_kwargs: Optional[Dict[str, object]] = None
        self._overlay: Optional[Overlay] = None
        self._background: Optional[BackgroundKnowledge] = None
        self._config: Optional[ProtocolConfig] = None
        self._config_kwargs: Dict[str, object] = {}
        self._seed: int = 0
        self._planned: Optional[Tuple[float, Optional[int]]] = None
        self._databases: Optional[Mapping[str, LocalDatabase]] = None
        self._rebuild_summaries: bool = True
        self._build_domains: bool = True
        self._summary_peers: Optional[List[str]] = None
        self._churn: Optional[_ChurnPlan] = None
        self._modifications: Optional[_ModificationPlan] = None
        self._fault_plan: Optional[FaultPlan] = None
        self._observability: Optional["Observability"] = None
        self._runtime: "RuntimeSpec" = None

    # -- declarative configuration -----------------------------------------------------

    def topology(
        self,
        overlay: Optional[Union[Overlay, TopologyConfig]] = None,
        *,
        peer_count: Optional[int] = None,
        average_degree: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> "SystemBuilder":
        """Declare the overlay: an existing one, a config, or generation knobs."""
        if overlay is not None and (
            peer_count is not None or average_degree is not None or seed is not None
        ):
            raise ConfigurationError(
                "topology takes either an overlay/config or generation knobs "
                "(peer_count/average_degree/seed), not both: knobs cannot be "
                "applied to an already-built topology"
            )
        if isinstance(overlay, Overlay):
            self._overlay = overlay
            self._topology_config = None
            self._topology_kwargs = None
        elif isinstance(overlay, TopologyConfig):
            self._topology_config = overlay
            self._overlay = None
            self._topology_kwargs = None
        elif peer_count is not None:
            self._topology_kwargs = {
                "peer_count": peer_count,
                "average_degree": 4.0 if average_degree is None else average_degree,
                "seed": seed,
            }
            self._overlay = None
            self._topology_config = None
        else:
            raise ConfigurationError(
                "topology needs an Overlay, a TopologyConfig or peer_count=..."
            )
        return self

    def background(self, knowledge: BackgroundKnowledge) -> "SystemBuilder":
        """Declare the background knowledge (required for real content)."""
        self._background = knowledge
        return self

    def protocol(
        self, config: Optional[ProtocolConfig] = None, **kwargs: object
    ) -> "SystemBuilder":
        """Declare the protocol configuration (or individual knobs of it)."""
        if config is not None and kwargs:
            raise ConfigurationError(
                "protocol takes either a ProtocolConfig or keyword knobs, not both"
            )
        if config is not None:
            self._config = config
            self._config_kwargs = {}
        else:
            self._config = None
            self._config_kwargs = dict(kwargs)
        return self

    def planned_content(
        self, hit_rate: float = 0.1, seed: Optional[int] = None
    ) -> "SystemBuilder":
        """Use the content-free evaluation mode of Table 3.

        Each query is matched by ``hit_rate`` of the peers; no summaries are
        built, which scales to thousands of peers.
        """
        self._planned = (hit_rate, seed)
        return self

    def real_content(
        self,
        databases: Mapping[str, LocalDatabase],
        rebuild_summaries: bool = True,
    ) -> "SystemBuilder":
        """Attach real per-peer databases (local summaries are built from them)."""
        self._databases = databases
        self._rebuild_summaries = rebuild_summaries
        return self

    def domains(
        self,
        summary_peers: Optional[Sequence[str]] = None,
        build: bool = True,
    ) -> "SystemBuilder":
        """Control domain construction (on by default).

        ``summary_peers`` forces the set of summary peers (e.g. a single hub
        for the one-domain maintenance experiments); ``build=False`` leaves
        the network domain-less.
        """
        self._summary_peers = list(summary_peers) if summary_peers is not None else None
        self._build_domains = build
        return self

    def churn(
        self,
        duration_seconds: float,
        lifetime: Optional[LifetimeDistribution] = None,
        downtime_seconds: float = 600.0,
        graceful_fraction: float = 0.9,
        rejoin: bool = True,
        include_summary_peers: bool = False,
    ) -> "SystemBuilder":
        """Schedule departure/rejoin churn over ``duration_seconds`` of virtual time."""
        self._churn = _ChurnPlan(
            duration_seconds=duration_seconds,
            lifetime=lifetime,
            downtime_seconds=downtime_seconds,
            graceful_fraction=graceful_fraction,
            rejoin=rejoin,
            include_summary_peers=include_summary_peers,
        )
        return self

    def modifications(
        self, duration_seconds: float, rate_per_peer_per_second: float
    ) -> "SystemBuilder":
        """Schedule Poisson local-data modifications per partner peer."""
        self._modifications = _ModificationPlan(
            duration_seconds=duration_seconds,
            rate_per_peer_per_second=rate_per_peer_per_second,
        )
        return self

    def faults(self, plan: FaultPlan) -> "SystemBuilder":
        """Declare a seeded fault plan (partitions, loss, massacres...).

        The plan's scheduled adversities are installed after churn and
        modifications, so the event order at equal timestamps is fixed; its
        link faults activate the retry/backoff machinery of the protocol.
        A plan with no faults changes nothing, byte for byte.
        """
        if not isinstance(plan, FaultPlan):
            raise ConfigurationError("faults(...) takes a FaultPlan")
        self._fault_plan = plan
        return self

    def seed(self, seed: int) -> "SystemBuilder":
        """Master seed: system RNG, and the default for topology/content seeds."""
        self._seed = seed
        return self

    def runtime(self, spec: "RuntimeSpec") -> "SystemBuilder":
        """Pick the execution backend the built system schedules through.

        ``"simulator"`` (the default) is the deterministic single-threaded
        drain; ``"concurrent"`` the asyncio backend with per-actor mailboxes
        and ordered-drain windows.  Pass an
        :class:`~repro.runtime.ExecutionBackend` instance to tune backend
        knobs (``io_model``, fan-out limits).  Both backends produce the
        same answers, counters and RNG states for the same seed; see
        :mod:`repro.runtime`.
        """
        from repro.runtime import create_backend

        # Resolve eagerly so a bad name fails at declaration time, not build.
        self._runtime = create_backend(spec) if isinstance(spec, str) else spec
        return self

    def observability(
        self,
        obs: Optional["Observability"] = None,
        *,
        trace_path: Optional[str] = None,
        ring_capacity: int = 2048,
    ) -> "SystemBuilder":
        """Enable metrics + tracing on the built session.

        Pass an :class:`~repro.obs.Observability` to share one hook across
        sessions, or ``trace_path=...`` to stream spans to a JSONL file;
        the default keeps spans in an in-memory ring of ``ring_capacity``.
        Recording never draws randomness or sends messages, so an observed
        session's answers, counters and RNG state match an unobserved one.
        """
        from repro.obs import Observability

        if obs is not None and trace_path is not None:
            raise ConfigurationError(
                "observability takes either an Observability or trace_path, "
                "not both"
            )
        if obs is None:
            obs = (
                Observability.with_jsonl(trace_path)
                if trace_path is not None
                else Observability.with_ring(ring_capacity)
            )
        self._observability = obs
        return self

    # -- validation -------------------------------------------------------------------

    def _validate(self) -> None:
        if (
            self._overlay is None
            and self._topology_config is None
            and self._topology_kwargs is None
        ):
            raise ConfigurationError(
                "no topology configured: call .topology(peer_count=...) or pass "
                "an Overlay/TopologyConfig"
            )
        if self._planned is not None and self._databases is not None:
            raise ConfigurationError(
                "planned_content and real_content are mutually exclusive: a "
                "network either plans query hits or owns real databases"
            )
        if self._planned is None and self._databases is None:
            raise ConfigurationError(
                "no content configured: call .planned_content(hit_rate=...) "
                "for the evaluation mode or .real_content(databases=...) for "
                "real databases"
            )
        if self._planned is not None:
            hit_rate, _seed = self._planned
            if not 0.0 <= hit_rate <= 1.0:
                raise ConfigurationError("planned_content hit_rate must lie in [0, 1]")
        if self._databases is not None:
            if self._background is None:
                raise ConfigurationError(
                    "real_content requires .background(...): local summaries "
                    "are built against a background knowledge"
                )
            if not self._databases:
                raise ConfigurationError("real_content needs at least one database")
        if self._churn is not None:
            if self._churn.duration_seconds <= 0:
                raise ConfigurationError("churn duration_seconds must be positive")
            if not 0.0 <= self._churn.graceful_fraction <= 1.0:
                raise ConfigurationError("churn graceful_fraction must lie in [0, 1]")
            if self._churn.downtime_seconds < 0:
                raise ConfigurationError("churn downtime_seconds must be non-negative")
        if self._modifications is not None:
            if self._modifications.duration_seconds <= 0:
                raise ConfigurationError(
                    "modifications duration_seconds must be positive"
                )
            if self._modifications.rate_per_peer_per_second < 0:
                raise ConfigurationError(
                    "modifications rate_per_peer_per_second must be non-negative"
                )
        if (self._churn is not None or self._modifications is not None) and (
            not self._build_domains
        ):
            raise ConfigurationError(
                "churn/modifications need domains: remove .domains(build=False)"
            )

    def _resolve_overlay(self) -> Overlay:
        if self._overlay is not None:
            return self._overlay
        if self._topology_config is not None:
            return Overlay.generate(self._topology_config)
        assert self._topology_kwargs is not None
        kwargs = dict(self._topology_kwargs)
        if kwargs.get("seed") is None:
            kwargs["seed"] = self._seed
        config = TopologyConfig(
            peer_count=int(kwargs["peer_count"]),  # type: ignore[arg-type]
            average_degree=float(kwargs["average_degree"]),  # type: ignore[arg-type]
            seed=int(kwargs["seed"]),  # type: ignore[arg-type]
        )
        return Overlay.generate(config)

    def _resolve_config(self) -> ProtocolConfig:
        if self._config is not None:
            return self._config
        return ProtocolConfig(**self._config_kwargs)  # type: ignore[arg-type]

    # -- assembly ---------------------------------------------------------------------

    @staticmethod
    def from_checkpoint(
        target: Union[None, str, "StoreBackend"],
        name: str = "session",
        background: Optional[BackgroundKnowledge] = None,
        runtime: "RuntimeSpec" = None,
    ) -> "NetworkSession":
        """Resume a session checkpointed with :meth:`NetworkSession.checkpoint`.

        ``target`` is a store path (directory of JSON, or a ``.sqlite`` file)
        or an opened :class:`~repro.store.StoreBackend`.  The restored session
        continues byte-identically: subsequent ``query()`` routing, staleness
        snapshots and traffic reports match the never-persisted session.
        Real-content checkpoints additionally need the common ``background``
        knowledge, exactly like the summary wire format.  ``runtime``
        overrides the execution backend (default: the one recorded at
        checkpoint time); both backends continue byte-identically.
        """
        from repro.store.checkpoint import restore_session

        return restore_session(
            target, name=name, background=background, runtime=runtime
        )

    def build(self) -> "NetworkSession":
        """Validate the declared configuration and assemble the session."""
        self._validate()
        overlay = self._resolve_overlay()
        config = self._resolve_config()
        system = SummaryManagementSystem(
            overlay,
            config=config,
            background=self._background,
            seed=self._seed,
            runtime=self._runtime,
        )
        if self._observability is not None:
            # Installed before construction so domain building, churn and the
            # whole maintenance lifecycle are traced from the first event.
            system.install_observability(self._observability)
        if self._databases is not None:
            system.attach_databases(
                self._databases, rebuild_summaries=self._rebuild_summaries
            )
        else:
            assert self._planned is not None
            hit_rate, content_seed = self._planned
            system.use_planned_content(
                matching_fraction=hit_rate,
                seed=self._seed if content_seed is None else content_seed,
            )
        report: Optional[ConstructionReport] = None
        if self._build_domains:
            report = system.build_domains(summary_peers=self._summary_peers)
        horizon: Optional[float] = None
        if self._churn is not None:
            system.schedule_churn(
                self._churn.duration_seconds,
                lifetime=self._churn.lifetime,
                downtime_seconds=self._churn.downtime_seconds,
                graceful_fraction=self._churn.graceful_fraction,
                rejoin=self._churn.rejoin,
                include_summary_peers=self._churn.include_summary_peers,
            )
            horizon = self._churn.duration_seconds
        if self._modifications is not None:
            system.schedule_modifications(
                self._modifications.duration_seconds,
                self._modifications.rate_per_peer_per_second,
            )
            horizon = max(horizon or 0.0, self._modifications.duration_seconds)
        if self._fault_plan is not None:
            # Installed last so fault events at equal timestamps sort after the
            # churn/modification events scheduled above.  The horizon is left
            # alone: adversities only matter inside the window the caller runs.
            system.install_fault_plan(self._fault_plan)
        return NetworkSession(system, construction_report=report, horizon=horizon)


class NetworkSession:
    """Façade owning a fully wired summary-management network.

    Obtained from :meth:`SystemBuilder.build`; wrapping an already-assembled
    :class:`SummaryManagementSystem` directly is supported for migration.
    """

    def __init__(
        self,
        system: SummaryManagementSystem,
        construction_report: Optional[ConstructionReport] = None,
        horizon: Optional[float] = None,
    ) -> None:
        self._system = system
        self._construction_report = construction_report
        self._horizon = horizon

    # -- accessors --------------------------------------------------------------------

    @property
    def system(self) -> SummaryManagementSystem:
        """The underlying protocol engine (escape hatch for legacy code)."""
        return self._system

    @property
    def overlay(self) -> Overlay:
        return self._system.overlay

    @property
    def simulator(self) -> Simulator:
        return self._system.simulator

    @property
    def runtime(self) -> "ExecutionBackend":
        """The execution backend driving the session's event schedule."""
        return self._system.runtime

    @property
    def config(self) -> ProtocolConfig:
        return self._system.config

    @property
    def domains(self) -> Dict[str, Domain]:
        return self._system.domains

    @property
    def content(self) -> Optional[ContentModel]:
        return self._system.content

    @property
    def construction_report(self) -> Optional[ConstructionReport]:
        return self._construction_report

    @property
    def horizon(self) -> Optional[float]:
        """End of the scheduled churn/modification window, if any."""
        return self._horizon

    @property
    def observability(self) -> Optional["Observability"]:
        """The installed metrics+trace hook, or None (uninstrumented)."""
        return self._system.observability

    def install_observability(self, obs: Optional["Observability"]) -> None:
        """Install (or remove, with ``None``) the metrics+trace hook.

        Safe at any point of a session's life — recording reads protocol
        state without mutating it, so installation never changes answers,
        counters or RNG state.
        """
        self._system.install_observability(obs)

    @property
    def now(self) -> float:
        return self._system.simulator.now

    @property
    def planned(self) -> bool:
        """Whether the session runs in planned-content (evaluation) mode."""
        return isinstance(self._system.content, PlannedContentModel)

    def partner_ids(self) -> List[str]:
        """Peers that are not summary peers, in overlay order."""
        domains = self._system.domains
        return [p for p in self._system.overlay.peer_ids if p not in domains]

    def default_originator(self) -> str:
        """A deterministic partner peer used when no originator is given."""
        partners = self.partner_ids()
        if partners:
            return partners[0]
        peer_ids = self._system.overlay.peer_ids
        if not peer_ids:
            raise ConfigurationError("the overlay has no peers to originate queries")
        return peer_ids[0]

    def next_query_id(self) -> int:
        return self._system.next_query_id()

    # -- the query surface -------------------------------------------------------------

    def query(
        self,
        originator: Optional[str] = None,
        query: Optional[SelectionQuery] = None,
        query_id: Optional[int] = None,
        *,
        policy: RoutingPolicy = RoutingPolicy.ALL,
        required_results: Optional[int] = None,
        max_domains: Optional[int] = None,
        include_staleness: Optional[bool] = None,
        include_answer: Optional[bool] = None,
    ) -> QueryAnswer:
        """Pose one query and return everything it produced as a :class:`QueryAnswer`.

        The routing itself is byte-identical to the legacy
        ``system.pose_query(...)`` call: the session only *reads* the routing
        result, the message counter and (in planned mode) the deterministic
        staleness draws, so message counts and RNG state are unaffected.

        ``include_staleness`` defaults to planned-content mode;
        ``include_answer`` defaults to real-content mode with a real query.
        """
        system = self._system
        if originator is None:
            originator = self.default_originator()
        counter = system.counter
        query_before = counter.count_types(list(QUERY_MESSAGE_TYPES))
        update_before = counter.count_types(list(UPDATE_MESSAGE_TYPES))
        routing = system.pose_query(
            originator,
            query=query,
            query_id=query_id,
            policy=policy,
            required_results=required_results,
            max_domains=max_domains,
        )
        query_delta = counter.count_types(list(QUERY_MESSAGE_TYPES)) - query_before
        update_delta = counter.count_types(list(UPDATE_MESSAGE_TYPES)) - update_before

        if include_staleness is None:
            include_staleness = self.planned
        staleness: Optional[StalenessSnapshot] = None
        if include_staleness:
            # An explicit True on a real-content session reaches the engine
            # and raises its ProtocolError rather than silently yielding None.
            staleness = system.staleness_snapshot(query_id=routing.query_id)

        if include_answer is None:
            include_answer = query is not None and not self.planned
        answer: Optional[ApproximateAnswer] = None
        if include_answer and query is not None:
            answer = self._approximate_answer(routing, query)

        return QueryAnswer(
            routing=routing,
            answer=answer,
            staleness=staleness,
            degradation=self._degradation_report(routing),
            query_messages=query_delta,
            update_messages=update_delta,
            posed_at=system.simulator.now,
        )

    def _degradation_report(self, routing: QueryRoutingResult) -> DegradationReport:
        """Derive the completeness report of one answer (pure reads only)."""
        system = self._system
        described_map = system.described
        stale_described: Dict[str, int] = {}
        for outcome in routing.domain_outcomes:
            domain = system.domains.get(outcome.domain_id)
            if domain is None:
                continue
            described = described_map.get(outcome.domain_id, set())
            stale = set(domain.old_partners()) & described
            if stale:
                stale_described[outcome.domain_id] = len(stale)
        return DegradationReport(
            unreachable_domains=list(routing.unreachable_domains),
            stale_described=stale_described,
            probe_messages=routing.unreachable_probe_messages,
        )

    def _approximate_answer(
        self, routing: QueryRoutingResult, query: SelectionQuery
    ) -> Optional[ApproximateAnswer]:
        """Merge the summary-only answers of the domains the query visited."""
        from repro.core.approximate import answer_in_domain
        from repro.querying.reformulation import reformulate

        background = self._system.background
        if background is None:
            return None
        flexible = reformulate(query, background)
        merged: Optional[ApproximateAnswer] = None
        for outcome in routing.domain_outcomes:
            domain = self._system.domains.get(outcome.domain_id)
            if domain is None or not domain.has_global_summary():
                continue
            try:
                result = answer_in_domain(
                    domain,
                    flexible,
                    background,
                    already_flexible=True,
                    use_selection_cache=self._system.query_engine_enabled,
                )
            except QueryError:
                # The query constrains attributes outside the background
                # knowledge: routing degrades gracefully, so does the answer.
                return None
            if merged is None:
                merged = result.answer
            else:
                merged.classes.extend(result.answer.classes)
        return merged

    def query_many(
        self,
        count: Optional[int] = None,
        queries: Optional[Iterable[SelectionQuery]] = None,
        originators: Optional[Sequence[str]] = None,
        *,
        policy: RoutingPolicy = RoutingPolicy.ALL,
        required_results: Optional[int] = None,
        max_domains: Optional[int] = None,
        include_staleness: Optional[bool] = None,
        include_answer: Optional[bool] = None,
    ) -> List[QueryAnswer]:
        """Pose a batch of queries, cycling originators across the population.

        Planned mode poses ``count`` plan-matched queries; real mode iterates
        ``queries``.  Exactly one of the two must be given.
        """
        if (count is None) == (queries is None):
            raise ConfigurationError(
                "query_many takes either count (planned content) or queries "
                "(real content), exactly one"
            )
        pool = list(originators) if originators else self.partner_ids()
        if not pool:
            pool = [self.default_originator()]
        answers: List[QueryAnswer] = []
        if count is not None:
            iterator: Iterable[Optional[SelectionQuery]] = (None for _ in range(count))
        else:
            assert queries is not None
            iterator = iter(queries)
        for index, one_query in enumerate(iterator):
            answers.append(
                self.query(
                    pool[index % len(pool)],
                    query=one_query,
                    policy=policy,
                    required_results=required_results,
                    max_domains=max_domains,
                    include_staleness=include_staleness,
                    include_answer=include_answer,
                )
            )
        return answers

    def query_batch(
        self,
        count: Optional[int] = None,
        queries: Optional[Iterable[SelectionQuery]] = None,
        originators: Optional[Sequence[str]] = None,
        *,
        requests: Optional[Sequence[QueryRequest]] = None,
        policy: RoutingPolicy = RoutingPolicy.ALL,
        required_results: Optional[int] = None,
        max_domains: Optional[int] = None,
        include_staleness: Optional[bool] = None,
        include_answer: Optional[bool] = None,
    ) -> List[QueryAnswer]:
        """Pose a batch of queries through the shared-work fast path.

        The batch shares the per-query derivation work — domain visit orders,
        staleness scaffolding, the hierarchy selection caches — across its
        queries, while producing answers **byte-identical** to posing the
        same queries one by one with :meth:`query` (same routing sets, query
        ids, message counters, staleness figures and RNG state).

        Queries are given either like :meth:`query_many` (``count`` planned
        queries or an iterable of real ``queries``, with originators cycled
        over the population) or as explicit
        :class:`~repro.core.routing.QueryRequest` values via ``requests``
        (each request then carries its own originator/policy/limits).
        """
        if requests is not None:
            if count is not None or queries is not None or originators:
                raise ConfigurationError(
                    "query_batch takes either requests or the query_many-style "
                    "count/queries/originators arguments, not both"
                )
            with self._system.shared_query_state():
                return [
                    self.query(
                        request.originator,
                        query=request.query,
                        query_id=request.query_id,
                        policy=request.policy,
                        required_results=request.required_results,
                        max_domains=request.max_domains,
                        include_staleness=include_staleness,
                        include_answer=include_answer,
                    )
                    for request in requests
                ]
        with self._system.shared_query_state():
            return self.query_many(
                count=count,
                queries=queries,
                originators=originators,
                policy=policy,
                required_results=required_results,
                max_domains=max_domains,
                include_staleness=include_staleness,
                include_answer=include_answer,
            )

    # -- persistence -------------------------------------------------------------------

    def checkpoint(
        self,
        target: Union[None, str, "StoreBackend"],
        name: str = "session",
        base: Optional[str] = None,
    ) -> str:
        """Persist this session's full state into a store.

        Captures the overlay, domains, content model, protocol configuration,
        message counters, the simulator clock and every pending churn or
        modification event; hierarchies are stored content-addressed so
        identical summaries are persisted once.  Resume with
        :meth:`SystemBuilder.from_checkpoint`.  Returns the checkpoint name.

        ``base=<earlier checkpoint name>`` stores a *delta* checkpoint: only
        the structural diff against the base's payload, a small fraction of
        the full document for nearby simulation times.  Delta chains restore
        transparently, but the base checkpoint must stay in the store.
        """
        from repro.store.checkpoint import save_session

        return save_session(self, target, name=name, base=base)

    def attach_store(self, target: Union[None, str, "StoreBackend"]) -> None:
        """Archive reconciliation heads in a store (enables domain cold starts).

        The session keeps using the store until :meth:`detach_store`; detach
        before closing a backend you opened yourself.
        """
        self._system.attach_store(target)

    def detach_store(self) -> None:
        """Stop archiving reconciliation heads (see :meth:`attach_store`)."""
        self._system.detach_store()

    def cold_start_domain(self, sp_id: str):
        """Store-backed cold start of one restarted summary peer's domain.

        Returns the :class:`~repro.core.maintenance.ColdStartRecord` saying
        what was restored by hash lookup and which partners had to re-ship
        their local summaries.
        """
        return self._system.cold_start_domain(sp_id)

    # -- simulation --------------------------------------------------------------------

    def run_until(self, time: Optional[float] = None) -> int:
        """Advance the simulation to ``time`` (default: the scheduled horizon).

        Returns the number of events processed.
        """
        if time is None:
            time = self._horizon
        return self._system.run(until=time)

    def staleness(self, query_id: Optional[int] = None) -> StalenessSnapshot:
        """Sample current answer staleness (planned content only)."""
        return self._system.staleness_snapshot(query_id=query_id)

    def staleness_batch(self, count: int) -> List[StalenessSnapshot]:
        """Sample ``count`` staleness snapshots sharing the per-domain scans.

        Byte-identical to ``[self.staleness() for _ in range(count)]`` (same
        query ids and plan draws); the fig4/fig5 sweeps sample several
        snapshots per simulation tick through this.
        """
        return self._system.staleness_snapshots(count)

    # -- reporting ---------------------------------------------------------------------

    def _window(self, duration_seconds: Optional[float]) -> float:
        if duration_seconds is not None:
            return duration_seconds
        if self._horizon is not None:
            return self._horizon
        return self._system.simulator.now

    def maintenance_report(
        self, duration_seconds: Optional[float] = None
    ) -> MaintenanceReport:
        """Push/reconciliation figures over the given window (default: horizon)."""
        window = self._window(duration_seconds)
        stats = self._system.maintenance.stats
        return MaintenanceReport(
            duration_seconds=window,
            push_messages=stats.push_messages,
            reconciliations=stats.reconciliations,
            reconciliation_messages=stats.reconciliation_messages,
            update_traffic=self._system.update_traffic_report(window),
        )

    def traffic(self, duration_seconds: Optional[float] = None) -> SessionTraffic:
        """Update- and query-side traffic reports over the given window."""
        window = self._window(duration_seconds)
        return SessionTraffic(
            update=self._system.update_traffic_report(window),
            query=self._system.query_traffic_report(window),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"NetworkSession(peers={self._system.overlay.size}, "
            f"domains={len(self._system.domains)}, now={self.now:.0f}s)"
        )


class ReadOnlyNetworkSession(NetworkSession):
    """One restored session shared, read-only, across many worker threads.

    Obtained from :func:`repro.store.checkpoint.open_readonly_session`; it is
    the session shape ``repro serve`` runs on.  Three guarantees:

    * **Shared without copying.**  Every thread answers against the same
      restored system.  Request execution is serialized on an internal lock
      (the protocol engine is single-threaded by design — plan draws,
      message counters and query ids are global state), so concurrency buys
      I/O and encoding overlap, never interleaved protocol state.
    * **Frozen at the checkpoint.**  Posing a query mutates protocol
      bookkeeping (query counter, result history, message counters, plan
      RNG, fault stats).  Each outermost request captures that volatile
      state up front and rolls it back on exit, so every request — from any
      thread, in any order — answers exactly like the first request after a
      fresh :func:`~repro.store.checkpoint.restore_session`.  Derived memo
      caches (hierarchy selection caches, lazily materialized summaries)
      deliberately stay warm: they are content-addressed derived state and
      cannot alter protocol-visible outcomes.
    * **Mutation rejected.**  Simulation, store attachment and cold starts
      raise :class:`~repro.exceptions.ReadOnlySessionError`.

    The session may own the store backend it was opened from (lazy hierarchy
    loads read it on demand); :meth:`close` — or leaving a ``with`` block —
    releases it.
    """

    def __init__(
        self,
        system: SummaryManagementSystem,
        construction_report: Optional[ConstructionReport] = None,
        horizon: Optional[float] = None,
    ) -> None:
        super().__init__(system, construction_report, horizon)
        self._lock = threading.RLock()
        self._frozen_depth = 0
        self._volatile: Optional[Dict[str, Any]] = None
        self._backend: Optional["StoreBackend"] = None
        self._owns_backend = False
        self._hierarchy_source: Optional["HierarchySource"] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------------------

    def bind_store(
        self,
        backend: "StoreBackend",
        owns_backend: bool = False,
        hierarchy_source: Optional["HierarchySource"] = None,
    ) -> None:
        """Tie the session to the backend its lazy loads read from."""
        self._backend = backend
        self._owns_backend = owns_backend
        self._hierarchy_source = hierarchy_source

    @property
    def hierarchy_source(self) -> Optional["HierarchySource"]:
        """The lazy loader (fetch/hit counters), when opened lazily."""
        return self._hierarchy_source

    def install_observability(self, obs: Optional["Observability"]) -> None:
        """Install the hook on the system *and* the lazy hierarchy loader."""
        super().install_observability(obs)
        if self._hierarchy_source is not None:
            self._hierarchy_source.install_observability(obs)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the session (closes the backend it owns). Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._backend is not None and self._owns_backend:
                self._backend.close()
            self._backend = None

    def __enter__(self) -> "ReadOnlyNetworkSession":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the frozen-state discipline ---------------------------------------------------

    @contextmanager
    def _frozen(self) -> Iterator[None]:
        """Serialize a request and roll back its protocol bookkeeping.

        With observability installed, each *outermost* request records how
        long it waited for the session lock and how long it held it — the
        two histograms behind the serve-lock saturation diagnosis.  The
        metrics registry deliberately lives outside the volatile-state
        rollback: accounting survives the rollback of the request it
        measured.
        """
        obs = self._system.observability
        waited_from = time.perf_counter() if obs is not None else 0.0
        with self._lock:
            acquired_at = time.perf_counter() if obs is not None else 0.0
            if self._closed:
                raise ReadOnlySessionError("this read-only session is closed")
            self._frozen_depth += 1
            outermost = self._frozen_depth == 1
            if outermost:
                self._volatile = self._capture_volatile()
                if obs is not None:
                    obs.observe(
                        "repro_session_lock_wait_seconds", acquired_at - waited_from
                    )
            try:
                yield
            finally:
                self._frozen_depth -= 1
                if self._frozen_depth == 0:
                    assert self._volatile is not None
                    self._restore_volatile(self._volatile)
                    self._volatile = None
                if outermost and obs is not None:
                    obs.observe(
                        "repro_session_lock_hold_seconds",
                        time.perf_counter() - acquired_at,
                    )

    def _capture_volatile(self) -> Dict[str, Any]:
        system = self._system
        content = system.content
        saved: Dict[str, Any] = {
            "query_counter": system._query_counter,  # noqa: SLF001
            "results_len": len(system._query_results),  # noqa: SLF001
            "counter": system.counter.state_payload(),
        }
        if isinstance(content, PlannedContentModel):
            saved["content_rng"] = content._rng.getstate()  # noqa: SLF001
            saved["plan_ids"] = set(content._matching)  # noqa: SLF001
        else:
            # Real content: registered queries live in one dict shared by
            # reference between the system and its SummaryContentModel.
            saved["query_ids"] = set(system._queries)  # noqa: SLF001
        faults = system.faults
        if faults is not None:
            saved["faults_rng"] = faults.rng.getstate()
            saved["faults_stats"] = faults.stats.state_payload()
        return saved

    def _restore_volatile(self, saved: Dict[str, Any]) -> None:
        system = self._system
        content = system.content
        system._query_counter = saved["query_counter"]  # noqa: SLF001
        del system._query_results[saved["results_len"]:]  # noqa: SLF001
        counter = system.counter
        counter.reset()
        counter.merge(MessageCounter.from_state(saved["counter"]))
        if isinstance(content, PlannedContentModel):
            for query_id in set(content._matching) - saved["plan_ids"]:  # noqa: SLF001
                del content._matching[query_id]  # noqa: SLF001
            content._rng.setstate(saved["content_rng"])  # noqa: SLF001
        else:
            for query_id in set(system._queries) - saved["query_ids"]:  # noqa: SLF001
                del system._queries[query_id]  # noqa: SLF001
        faults = system.faults
        if faults is not None and "faults_rng" in saved:
            faults.rng.setstate(saved["faults_rng"])
            faults.stats = FaultStats.from_state(saved["faults_stats"])

    # -- read surface (serialized + rolled back) ---------------------------------------

    def query(self, *args: Any, **kwargs: Any) -> QueryAnswer:
        with self._frozen():
            return super().query(*args, **kwargs)

    def query_many(self, *args: Any, **kwargs: Any) -> List[QueryAnswer]:
        with self._frozen():
            return super().query_many(*args, **kwargs)

    def query_batch(self, *args: Any, **kwargs: Any) -> List[QueryAnswer]:
        with self._frozen():
            return super().query_batch(*args, **kwargs)

    def staleness(self, query_id: Optional[int] = None) -> StalenessSnapshot:
        with self._frozen():
            return super().staleness(query_id=query_id)

    def staleness_batch(self, count: int) -> List[StalenessSnapshot]:
        with self._frozen():
            return super().staleness_batch(count)

    # -- mutation surface: rejected ----------------------------------------------------

    def _read_only(self, operation: str) -> ReadOnlySessionError:
        return ReadOnlySessionError(
            f"{operation} is not available on a read-only serving session; "
            "restore the checkpoint with SystemBuilder.from_checkpoint for a "
            "mutable session"
        )

    def run_until(self, time: Optional[float] = None) -> int:
        raise self._read_only("run_until (advancing the simulation)")

    def attach_store(self, target: Union[None, str, "StoreBackend"]) -> None:
        raise self._read_only("attach_store")

    def detach_store(self) -> None:
        raise self._read_only("detach_store")

    def cold_start_domain(self, sp_id: str):
        raise self._read_only("cold_start_domain")

    def next_query_id(self) -> int:
        raise self._read_only(
            "next_query_id (allocating query ids mutates the counter; pass "
            "count=... or queries=... and let each request allocate its own)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "closed" if self._closed else "open"
        return (
            f"ReadOnlyNetworkSession(peers={self._system.overlay.size}, "
            f"domains={len(self._system.domains)}, {state})"
        )
