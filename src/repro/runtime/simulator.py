"""The reference backend: the deterministic single-threaded drain, extracted.

:class:`SimulatorBackend` is a behaviour-preserving extraction of the loop
the protocol engine used to drive directly — :meth:`run` is exactly
``Simulator.run`` (same event order, same clock advances, same processed
counts), so a system built on this backend is byte-identical to the pre-
runtime code: answers, ``MessageCounter`` payloads, simulator clock, content
and fault RNG states.  The identity suite pins that.

The one addition is the optional ``io_model``: when set, the backend charges
each event's modelled I/O cost as a *blocking* ``time.sleep`` before
executing it.  That changes wall-clock only — virtual results are untouched
— and is what the concurrent backend's overlap is benchmarked against
(``benchmarks/bench_runtime.py``).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.runtime.base import ExecutionBackend


class SimulatorBackend(ExecutionBackend):
    """One thread, strict ``(time, sequence)`` order; the default runtime."""

    name = "simulator"

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        if self._io_model is None:
            return self._clock.run(until=until, max_events=max_events)
        return self._run_with_io(until, max_events)

    def _run_with_io(self, until: Optional[float], max_events: Optional[int]) -> int:
        """The same drain loop, paying each event's I/O cost serially."""
        clock = self._clock
        io_model = self._io_model
        processed = 0
        while True:
            if max_events is not None and processed >= max_events:
                return processed
            head = clock.peek()
            if head is None:
                break
            if until is not None and head.time > until:
                break
            cost = io_model(head.label)
            if cost and cost > 0.0:
                time.sleep(cost)
            if not clock.step():  # pragma: no cover - peek guaranteed a head
                break
            processed += 1
        if until is not None and clock.now < until:
            clock.advance_to(until)
        return processed
