"""``repro.runtime`` — pluggable execution backends for the protocol engine.

The protocol, transport and session layers schedule work through one
:class:`ExecutionBackend` surface; which backend executes it is a knob
(``SystemBuilder().runtime(...)``, ``SimulationScenario(runtime=...)``,
``repro run-scenario --runtime ...``), defaulting to the deterministic
simulator.  See :mod:`repro.runtime.base` for the contract,
:mod:`repro.runtime.simulator` for the reference backend and
:mod:`repro.runtime.concurrent` for the asyncio one.

The ``REPRO_RUNTIME`` environment variable overrides the *default* backend
(used when no explicit runtime is configured) — this is how CI runs the full
tier-1 suite under both backends without touching any call site.
"""

from __future__ import annotations

import os
from typing import Optional, Union

from repro.exceptions import ConfigurationError
from repro.runtime.base import ExecutionBackend, IoModel
from repro.runtime.concurrent import ConcurrentBackend
from repro.runtime.simulator import SimulatorBackend

__all__ = [
    "ConcurrentBackend",
    "ExecutionBackend",
    "IoModel",
    "RUNTIME_ENV_VAR",
    "SimulatorBackend",
    "create_backend",
]

#: Environment override for the default runtime (CI's backend matrix).
RUNTIME_ENV_VAR = "REPRO_RUNTIME"

_NAMES = {
    "simulator": SimulatorBackend,
    "sim": SimulatorBackend,
    "concurrent": ConcurrentBackend,
    "async": ConcurrentBackend,
    "asyncio": ConcurrentBackend,
}

RuntimeSpec = Union[None, str, ExecutionBackend]


def create_backend(spec: RuntimeSpec = None) -> ExecutionBackend:
    """Resolve a runtime spec into a fresh :class:`ExecutionBackend`.

    ``None`` resolves to the default — ``$REPRO_RUNTIME`` when set, the
    simulator otherwise.  A string picks a backend by name (``"simulator"``
    or ``"concurrent"``); an :class:`ExecutionBackend` instance is passed
    through unchanged (the way to hand a backend custom knobs such as an
    ``io_model`` or fan-out limits).
    """
    if spec is None:
        spec = os.environ.get(RUNTIME_ENV_VAR) or "simulator"
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        backend = _NAMES.get(spec.strip().lower())
        if backend is not None:
            return backend()
    raise ConfigurationError(
        f"unknown runtime {spec!r}: use 'simulator', 'concurrent', or an "
        "ExecutionBackend instance"
    )
