"""The execution-backend contract: one scheduling/clock/delivery surface.

Before this package existed, ``SummaryManagementSystem``, ``MessageBus`` and
the discrete-event :class:`~repro.network.simulator.Simulator` interleaved
freely: protocol code scheduled callbacks straight onto the simulator and
assumed every delivery executed inline in the calling thread.  An
:class:`ExecutionBackend` draws the line cleanly — the protocol and transport
layers schedule *through* the backend, and the backend decides how events
actually execute:

* :class:`~repro.runtime.simulator.SimulatorBackend` runs them exactly as
  before — one thread, strict ``(time, sequence)`` order — and is the
  default.
* :class:`~repro.runtime.concurrent.ConcurrentBackend` overlaps the
  I/O-shaped cost of a drain window on an asyncio event loop (per-actor
  mailboxes, semaphore-capped fan-out) while draining the *virtual* events in
  the same strict order, so answers stay equal to the simulator's.

Every backend owns a :class:`Simulator` instance as its virtual **clock**:
the event queue, ``now``, sequence numbering, and the checkpoint hooks
(``pending``/``load_state``/``restore_event``) all live there, which keeps
checkpoint payloads and restore byte-identical across backends.

Delivery-shaped events go through :meth:`ExecutionBackend.deliver`, which
adds two things plain scheduling does not have: an ``actor`` tag (which
peer's mailbox the work belongs to, for backends that fan out per actor) and
optional TTL'd duplicate suppression via a ``dedup_key``
(:class:`~repro.network.faults.ExpiringSet` on virtual time, so suppression
is deterministic on every backend).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro.network.faults import ExpiringSet
from repro.network.simulator import Event, EventCallback, Simulator

#: Maps an event label to the I/O-shaped cost (seconds of wall clock) its
#: delivery would spend waiting on the network/disk.  ``None`` means "no
#: modelled I/O": the simulator backend then never sleeps and the concurrent
#: backend has nothing to overlap.
IoModel = Callable[[str], float]


class ExecutionBackend:
    """Base class: owns the virtual clock, defines the scheduling surface.

    Subclasses override :meth:`run` (how a drain actually executes) and may
    extend :meth:`install_observability`.  Everything else — scheduling,
    delivery bookkeeping, duplicate suppression, checkpoint passthroughs —
    is shared, so the two backends cannot drift apart on semantics.
    """

    #: Short identifier recorded in checkpoints (overridden per subclass).
    name = "base"

    def __init__(
        self,
        io_model: Optional[IoModel] = None,
        duplicate_ttl_seconds: float = 30.0,
    ) -> None:
        self._clock = Simulator()
        self._io_model = io_model
        self._dedup = ExpiringSet(ttl_seconds=duplicate_ttl_seconds)
        self._suppressed = 0
        #: Metrics+trace hook; None keeps scheduling on the uninstrumented path.
        self._obs = None

    # -- clock ------------------------------------------------------------------------

    @property
    def clock(self) -> Simulator:
        """The virtual clock (event queue + ``now``) this backend drives."""
        return self._clock

    @property
    def now(self) -> float:
        return self._clock.now

    @property
    def processed_events(self) -> int:
        return self._clock.processed_events

    @property
    def pending_events(self) -> int:
        return self._clock.pending_events

    @property
    def next_sequence(self) -> int:
        return self._clock.next_sequence

    @property
    def io_model(self) -> Optional[IoModel]:
        return self._io_model

    @property
    def suppressed_deliveries(self) -> int:
        """Deliveries dropped by :meth:`deliver`'s duplicate suppression."""
        return self._suppressed

    def create_rng(self, seed: int) -> random.Random:
        """A seeded RNG for protocol content/fault draws.

        Both backends hand out plain ``random.Random`` streams: determinism
        comes from draining events in ``(time, sequence)`` order, never from
        the backend, so a seed produces the same draws everywhere.
        """
        return random.Random(seed)

    # -- scheduling ---------------------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: EventCallback,
        label: str = "",
        spec: Optional[Dict[str, object]] = None,
        actor: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` virtual seconds from now."""
        event = self._clock.schedule(delay, callback, label=label, spec=spec)
        if actor is not None:
            self._tag_actor(event, actor)
        return event

    def schedule_at(
        self,
        time: float,
        callback: EventCallback,
        label: str = "",
        spec: Optional[Dict[str, object]] = None,
        actor: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at an absolute virtual time."""
        event = self._clock.schedule_at(time, callback, label=label, spec=spec)
        if actor is not None:
            self._tag_actor(event, actor)
        return event

    def deliver(
        self,
        delay: float,
        callback: EventCallback,
        label: str = "",
        actor: Optional[str] = None,
        dedup_key: Optional[object] = None,
        spec: Optional[Dict[str, object]] = None,
    ) -> Optional[Event]:
        """Schedule a message delivery; returns ``None`` when suppressed.

        ``actor`` names the receiving peer (or domain): backends that fan
        work out group deliveries by actor, one mailbox each.  A non-``None``
        ``dedup_key`` arms TTL'd duplicate suppression — the second delivery
        with the same live key is dropped before it is ever scheduled.  Both
        behaviours are identical across backends (the suppression window runs
        on virtual time), so switching runtimes never changes what executes.
        """
        if dedup_key is not None and not self._dedup.add_if_new(
            dedup_key, self._clock.now
        ):
            self._suppressed += 1
            if self._obs is not None:
                self._obs.inc("repro_runtime_suppressed_total", label=label or "event")
            return None
        return self.schedule(delay, callback, label=label, spec=spec, actor=actor)

    def _tag_actor(self, event: Event, actor: str) -> None:
        """Remember which actor a scheduled event belongs to (backend hook)."""
        # The reference backend drains one thread in event order and has no
        # per-actor structure to feed; concurrent backends override this.
        del event, actor

    # -- execution ----------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain events (chronological order) up to ``until``; returns the count."""
        raise NotImplementedError

    def step(self) -> bool:
        """Run the single next pending event (debugging/test surface)."""
        return self._clock.step()

    def reset(self) -> None:
        """Drop pending events and rewind the clock to zero."""
        self._clock.reset()

    # -- checkpoint passthroughs --------------------------------------------------------

    def pending(self) -> List[Event]:
        return self._clock.pending()

    def load_state(self, now: float, processed: int, next_sequence: int) -> None:
        self._clock.load_state(now, processed, next_sequence)

    def restore_event(
        self,
        time: float,
        sequence: int,
        callback: EventCallback,
        label: str = "",
        spec: Optional[Dict[str, object]] = None,
    ) -> Event:
        return self._clock.restore_event(
            time, sequence, callback, label=label, spec=spec
        )

    # -- observability -------------------------------------------------------------------

    def install_observability(self, observability: Any) -> None:
        """Attach a metrics/trace hook (``None`` detaches)."""
        self._obs = observability

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"{type(self).__name__}(now={self._clock.now:.1f}, "
            f"pending={self._clock.pending_events})"
        )
