"""The asyncio backend: overlap I/O-shaped waits, drain events in order.

:class:`ConcurrentBackend` executes the same virtual events as the simulator
— that is the point — but organises each drain **window** in two phases:

1. **Fan-out (wall clock).**  The window's due deliveries are grouped by
   receiving actor (peer or domain) into bounded asyncio mailboxes; one task
   per actor drains its mailbox, awaiting each delivery's modelled I/O cost
   under a shared semaphore that caps global fan-out (delta pushes,
   reconciliations and query probes all ride this).  Waits that the
   simulator backend would serve one ``time.sleep`` at a time overlap here.
2. **Ordered drain (virtual clock).**  The window's events then execute via
   the clock's own loop in strict ``(time, sequence)`` order — including any
   events the callbacks schedule *into* the window — so protocol state,
   counters and RNG draws advance exactly as on
   :class:`~repro.runtime.simulator.SimulatorBackend`.

``drain="ordered"`` is the only scheduling mode: it is what makes the
backend seed-deterministic and its answers equal to the simulator's on every
scenario (the ``tests/runtime`` equivalence suite pins the three named
ones).  Duplicate suppression for re-delivered messages reuses
:class:`~repro.network.faults.ExpiringSet` on virtual time via the base
class's :meth:`~repro.runtime.base.ExecutionBackend.deliver`.

Without an ``io_model`` there is nothing to overlap and the drain degenerates
to the simulator loop (no event loop is spun up); with one, the speedup on a
maintenance-heavy multi-domain workload is guarded by
``benchmarks/bench_runtime.py``.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import ConfigurationError
from repro.network.simulator import Event
from repro.obs.registry import DEFAULT_COUNT_BUCKETS
from repro.runtime.base import ExecutionBackend, IoModel

#: Mailbox tag for deliveries that carry no actor (system/maintenance events).
SHARED_ACTOR = "__shared__"


class ConcurrentBackend(ExecutionBackend):
    """One asyncio task per actor, semaphore-capped fan-out, ordered drain."""

    name = "concurrent"

    def __init__(
        self,
        io_model: Optional[IoModel] = None,
        duplicate_ttl_seconds: float = 30.0,
        max_concurrency: int = 8,
        mailbox_capacity: int = 256,
        quantum_seconds: float = 60.0,
        drain: str = "ordered",
    ) -> None:
        if drain != "ordered":
            raise ConfigurationError(
                f"unknown drain mode {drain!r}: 'ordered' is the only mode that "
                "keeps the concurrent backend deterministic"
            )
        if max_concurrency < 1:
            raise ConfigurationError("max_concurrency must be at least 1")
        if mailbox_capacity < 1:
            raise ConfigurationError("mailbox_capacity must be at least 1")
        if quantum_seconds <= 0:
            raise ConfigurationError("quantum_seconds must be positive")
        super().__init__(
            io_model=io_model, duplicate_ttl_seconds=duplicate_ttl_seconds
        )
        self._max_concurrency = max_concurrency
        self._mailbox_capacity = mailbox_capacity
        self._quantum = float(quantum_seconds)
        #: event sequence -> actor tag, for grouping the fan-out phase.
        self._actors: Dict[int, str] = {}
        self._rounds = 0
        self._overlapped = 0

    # -- stats --------------------------------------------------------------------------

    @property
    def fanout_rounds(self) -> int:
        """Windows that actually overlapped at least one I/O wait."""
        return self._rounds

    @property
    def overlapped_events(self) -> int:
        """Deliveries whose I/O cost was paid concurrently."""
        return self._overlapped

    # -- actor bookkeeping --------------------------------------------------------------

    def _tag_actor(self, event: Event, actor: str) -> None:
        self._actors[event.sequence] = actor

    def _prune_actor_tags(self) -> None:
        # Tags of executed events are dead weight; sweep once the map is
        # clearly dominated by them (sweeping every window would be O(n^2)).
        if len(self._actors) <= 4096:
            return
        live = {event.sequence for event in self._clock.pending()}
        self._actors = {
            sequence: actor
            for sequence, actor in self._actors.items()
            if sequence in live
        }

    def reset(self) -> None:
        self._actors.clear()
        super().reset()

    def load_state(self, now: float, processed: int, next_sequence: int) -> None:
        self._actors.clear()
        super().load_state(now, processed, next_sequence)

    # -- execution ----------------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        if max_events is not None:
            # Budgeted stepping is a debugging surface: drain serially (and
            # skip the io model) so the budget maps 1:1 onto events.
            return self._clock.run(until=until, max_events=max_events)
        if self._io_model is None:
            # Nothing to overlap: the ordered drain degenerates to the
            # simulator loop, with no event loop spun up.
            return self._clock.run(until=until)
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.run(self._run_windows(until))
        # Already inside an event loop (a caller's async context): blocking
        # on a nested loop would deadlock, so drain inline without overlap.
        return self._clock.run(until=until)

    async def _run_windows(self, until: Optional[float]) -> int:
        clock = self._clock
        processed = 0
        while True:
            head = clock.peek()
            if head is None:
                break
            if until is not None and head.time > until:
                break
            window_end = head.time + self._quantum
            if until is not None:
                window_end = min(window_end, until)
            await self._overlap_window(clock.due(window_end))
            processed += clock.run(until=window_end)
            self._prune_actor_tags()
        if until is not None and clock.now < until:
            clock.advance_to(until)
        return processed

    async def _overlap_window(self, events: List[Event]) -> None:
        """Phase 1: pay the window's I/O costs concurrently, per-actor."""
        io_model = self._io_model
        assert io_model is not None
        waits: Dict[str, List[float]] = {}
        for event in events:
            cost = io_model(event.label)
            if not cost or cost <= 0.0:
                continue
            actor = self._actors.get(event.sequence, SHARED_ACTOR)
            waits.setdefault(actor, []).append(float(cost))
        if not waits:
            return

        self._rounds += 1
        total = sum(len(costs) for costs in waits.values())
        self._overlapped += total
        obs = self._obs
        if obs is not None:
            obs.inc("repro_runtime_rounds_total")
            obs.inc("repro_runtime_tasks_total", len(waits))
            obs.inc("repro_runtime_io_events_total", total)
            obs.set_gauge(
                "repro_runtime_mailbox_depth",
                max(len(costs) for costs in waits.values()),
            )
            obs.metrics.observe_many(
                "repro_runtime_actor_batch_events",
                [len(costs) for costs in waits.values()],
            )
            for costs in waits.values():
                obs.metrics.observe_many("repro_runtime_delivery_wait_seconds", costs)

        semaphore = asyncio.Semaphore(self._max_concurrency)

        async def drain_mailbox(mailbox: "asyncio.Queue[Optional[float]]") -> None:
            while True:
                cost = await mailbox.get()
                if cost is None:
                    return
                async with semaphore:
                    await asyncio.sleep(cost)

        mailboxes: Dict[str, "asyncio.Queue[Optional[float]]"] = {
            actor: asyncio.Queue(maxsize=self._mailbox_capacity) for actor in waits
        }
        tasks = [
            asyncio.create_task(drain_mailbox(mailbox))
            for mailbox in mailboxes.values()
        ]
        span = (
            obs.span(
                "runtime-fanout-round",
                {"actors": len(waits), "events": total},
            )
            if obs is not None and obs.detail
            else None
        )
        try:
            if span is not None:
                span.__enter__()
            # Feed the mailboxes; a full mailbox blocks the feeder until its
            # task catches up (backpressure instead of unbounded buffering).
            for actor, costs in waits.items():
                mailbox = mailboxes[actor]
                for cost in costs:
                    await mailbox.put(cost)
            for mailbox in mailboxes.values():
                await mailbox.put(None)
            await asyncio.gather(*tasks)
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    # -- observability -------------------------------------------------------------------

    def install_observability(self, observability: Any) -> None:
        super().install_observability(observability)
        if observability is not None:
            observability.metrics.declare_histogram(
                "repro_runtime_actor_batch_events",
                DEFAULT_COUNT_BUCKETS,
                help="deliveries per actor mailbox in one fan-out round",
            )
