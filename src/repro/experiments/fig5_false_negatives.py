"""Figure 5 — false negatives vs. domain size (precision-first routing).

When the query is propagated only to ``P_Q ∩ P_fresh``, false positives
disappear but excluded stale peers whose data still matches the query become
false negatives.  Taking into account the probability that a stale peer's
database actually changed relative to the query, the paper finds the false-
negative fraction limited to ≈3 % for domains below 2000 peers — a ≈4.5×
reduction with respect to the worst-case estimate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import (
    CacheTarget,
    run_maintenance_simulation,
    shared_session_cache,
)
from repro.workloads.registry import default_registry
from repro.workloads.scenarios import DEFAULT_DOMAIN_SIZES

PAPER_EXPECTATION = (
    "false negatives stay small (≈3 % for domains below 2000 peers); the real "
    "staleness estimate is ≈4.5× lower than the worst-case one"
)


def run_figure5(
    domain_sizes: Optional[Sequence[int]] = None,
    alpha: float = 0.3,
    duration_seconds: float = 6 * 3600.0,
    seed: int = 0,
    cache: CacheTarget = None,
) -> ExperimentTable:
    """Reproduce Figure 5: real false-negative fraction vs. domain size."""
    domain_sizes = list(domain_sizes or DEFAULT_DOMAIN_SIZES)
    table = ExperimentTable(
        name="Figure 5 — false negatives vs. domain size",
        columns=[
            "domain_size",
            "alpha",
            "false_negative_fraction",
            "worst_stale_fraction",
            "reduction_factor",
        ],
        expectation=PAPER_EXPECTATION,
        parameters={
            "alpha": alpha,
            "duration_seconds": duration_seconds,
            "seed": seed,
        },
    )
    registry = default_registry()
    # One cache for the whole sweep: every domain size restores from (or
    # fills) the same store, opened and closed exactly once.
    with shared_session_cache(cache) as sweep_cache:
        for size in domain_sizes:
            scenario = registry.scenario(
                "maintenance",
                peer_count=size,
                alpha=alpha,
                duration_seconds=duration_seconds,
                seed=seed,
            )
            run = run_maintenance_simulation(scenario, cache=sweep_cache)
            worst = run.mean_worst_stale_fraction
            false_negatives = run.mean_real_false_negative_fraction
            reduction = (
                worst / false_negatives if false_negatives > 0 else float("inf")
            )
            table.add_row(
                domain_size=size,
                alpha=alpha,
                false_negative_fraction=false_negatives,
                worst_stale_fraction=worst,
                reduction_factor=reduction,
            )
    return table


def main(sizes: Optional[List[int]] = None) -> ExperimentTable:
    table = run_figure5(domain_sizes=sizes or [16, 100, 500])
    print(table.to_text())
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
