"""Tables 1–3 of the paper.

Tables 1 and 2 are the running example (raw Patient tuples and their grid-cell
mapping); Table 3 lists the simulation parameters.  Reproducing them checks
the mapping service end to end and documents the scenario parameter space.
"""

from __future__ import annotations

from repro.database.generator import PatientGenerator
from repro.experiments.reporting import ExperimentTable
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.saintetiq.mapping import MappingService
from repro.workloads.scenarios import table3_parameters

TABLE12_EXPECTATION = (
    "the three tuples of Table 1 map to three grid cells: (young, underweight) "
    "with tuple count 2, (young, normal) with 0.7 and (adult, normal) with 0.3 "
    "(the 20-year-old maps 0.7/young, 0.3/adult)"
)


def run_table1_table2() -> ExperimentTable:
    """Reproduce the Table 1 → Table 2 mapping of the running example."""
    generator = PatientGenerator(seed=0)
    relation = generator.paper_example_relation()
    background = medical_background_knowledge(include_categorical=False)
    mapping = MappingService(background, attributes=["age", "bmi"])
    cells = mapping.map_records(
        [record.as_dict() for record in relation], peer="example-peer"
    )

    table = ExperimentTable(
        name="Tables 1 & 2 — raw Patient tuples mapped to grid cells",
        columns=["cell", "age_label", "bmi_label", "tuple_count"],
        expectation=TABLE12_EXPECTATION,
        parameters={"records": len(relation)},
    )
    for index, cell in enumerate(
        sorted(cells.values(), key=lambda c: -c.tuple_count), start=1
    ):
        description = cell.describe()
        table.add_row(
            cell=f"c{index}",
            age_label=description.get("age", "-"),
            bmi_label=description.get("bmi", "-"),
            tuple_count=round(cell.tuple_count, 3),
        )
    return table


def run_table3() -> ExperimentTable:
    """Render the Table 3 simulation parameters."""
    parameters = table3_parameters()
    table = ExperimentTable(
        name="Table 3 — simulation parameters",
        columns=["parameter", "value"],
        expectation="matches the parameter table of Section 6.2.1",
    )
    for key, value in parameters.items():
        table.add_row(parameter=key, value=value)
    return table


def main() -> None:
    print(run_table1_table2().to_text())
    print()
    print(run_table3().to_text())


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
