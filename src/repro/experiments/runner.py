"""Shared simulation drivers used by the figure experiments.

Figures 4–6 study the maintenance of a *single* domain of varying size under
churn; Figure 7 measures end-to-end query cost over a multi-domain network.
The drivers here run those simulations and return raw measurements; the
figure modules turn them into :class:`ExperimentTable` rows.
"""

from __future__ import annotations

import dataclasses
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.backend import StoreBackend
    from repro.store.cache import SessionCache

from repro.baselines.centralized import CentralizedIndex, centralized_query_cost
from repro.baselines.flooding import FloodingSearch
from repro.core.protocol import UPDATE_MESSAGE_TYPES, StalenessSnapshot
from repro.core.routing import QueryRequest, RoutingPolicy
from repro.core.session import NetworkSession
from repro.costmodel.query_cost import PaperQueryScenario
from repro.workloads.registry import default_registry
from repro.workloads.scenarios import (
    DEFAULT_MODIFICATION_RATE_PER_PEER,
    SimulationScenario,
)

#: A warm-start cache target: a directory/SQLite path, an opened backend, or
#: an existing :class:`~repro.store.cache.SessionCache`.
CacheTarget = Union[None, str, "StoreBackend", "SessionCache"]


def _cached_session(
    cache: CacheTarget,
    key_parameters: Dict[str, object],
    factory: Callable[[], NetworkSession],
) -> NetworkSession:
    """Build a session, or restore it from a warm-start cache when given one.

    The cache key covers every parameter that determines the built session,
    so a repeated sweep with identical parameters skips topology generation,
    domain construction and event scheduling entirely — and, because restore
    is byte-identical, produces exactly the same measurements.
    """
    if cache is None:
        return factory()
    from repro.store.cache import SessionCache

    if isinstance(cache, SessionCache):
        session, _warm = cache.get_or_build(key_parameters, factory)
        return session
    # Opened here, closed here; sweeps should pass one SessionCache (see
    # shared_session_cache) to also amortise the open across points.
    with SessionCache(cache) as session_cache:
        session, _warm = session_cache.get_or_build(key_parameters, factory)
        return session


@contextmanager
def shared_session_cache(cache: CacheTarget) -> Iterator[CacheTarget]:
    """Normalise a cache target to one :class:`SessionCache` for a whole sweep.

    A sweep that passes a path to every simulation would otherwise open (and,
    for SQLite, leak) one backend per swept point; this opens the cache once,
    hands the same instance to every point, and closes it — only if it was
    opened here — when the sweep finishes.  ``None`` and already-open caches
    pass through untouched.
    """
    if cache is None:
        yield None
        return
    from repro.store.cache import SessionCache

    if isinstance(cache, SessionCache):
        yield cache
        return
    opened = SessionCache(cache)
    try:
        yield opened
    finally:
        opened.close()


def _scenario_key(scenario: SimulationScenario, **extra: object) -> Dict[str, object]:
    key: Dict[str, object] = dict(dataclasses.asdict(scenario))
    key.update(extra)
    return key


@dataclass
class MaintenanceRun:
    """Measurements of one single-domain churn/maintenance simulation."""

    scenario: SimulationScenario
    snapshots: List[StalenessSnapshot] = field(default_factory=list)
    update_messages: int = 0
    push_messages: int = 0
    reconciliation_messages: int = 0
    reconciliations: int = 0
    duration_seconds: float = 0.0
    domain_size: int = 0

    @property
    def mean_worst_stale_fraction(self) -> float:
        fractions = [s.worst_stale_fraction for s in self.snapshots if s.relevant_count]
        return sum(fractions) / len(fractions) if fractions else 0.0

    @property
    def mean_real_false_negative_fraction(self) -> float:
        fractions = [
            s.real_false_negative_fraction for s in self.snapshots if s.relevant_count
        ]
        return sum(fractions) / len(fractions) if fractions else 0.0

    @property
    def mean_real_stale_fraction(self) -> float:
        fractions = [s.real_stale_fraction for s in self.snapshots if s.relevant_count]
        return sum(fractions) / len(fractions) if fractions else 0.0

    @property
    def messages_per_node(self) -> float:
        if self.domain_size == 0:
            return 0.0
        return self.update_messages / self.domain_size

    @property
    def messages_per_node_per_second(self) -> float:
        if self.domain_size == 0 or self.duration_seconds <= 0:
            return 0.0
        return self.update_messages / (self.domain_size * self.duration_seconds)


def run_maintenance_simulation(
    scenario: SimulationScenario,
    snapshot_interval_seconds: float = 1200.0,
    snapshots_per_tick: int = 3,
    modification_rate_per_peer: float = DEFAULT_MODIFICATION_RATE_PER_PEER,
    cache: CacheTarget = None,
) -> MaintenanceRun:
    """Simulate churn + maintenance on a single domain and sample staleness.

    Queries are sampled (not charged to traffic) every
    ``snapshot_interval_seconds`` of virtual time, mimicking Table 3's query
    rate of one query per node per 20 minutes.  A low rate of local data
    modifications (one per peer every two hours by default) runs alongside the
    churn, matching the paper's assumption that churn dominates but data does
    change occasionally.

    ``cache`` points a warm-start store at the built (not yet run) session:
    repeated sweeps skip construction and restore it instead.
    """
    session = _cached_session(
        cache,
        _scenario_key(
            scenario,
            driver="single-domain-maintenance",
            modification_rate_per_peer=modification_rate_per_peer,
        ),
        lambda: scenario.apply_dynamics(
            scenario.single_domain_builder(),
            modification_rate_per_peer=modification_rate_per_peer,
        ).build(),
    )
    run = MaintenanceRun(
        scenario=scenario,
        duration_seconds=scenario.duration_seconds,
        domain_size=session.overlay.size,
    )

    baseline_update = session.system.counter.count_types(list(UPDATE_MESSAGE_TYPES))

    time = snapshot_interval_seconds
    while time <= scenario.duration_seconds:
        session.run_until(time)
        # One batched call per tick: the per-domain scans are shared across
        # the tick's samples (byte-identical to sampling one by one).
        run.snapshots.extend(session.staleness_batch(snapshots_per_tick))
        time += snapshot_interval_seconds
    session.run_until(scenario.duration_seconds)

    run.update_messages = (
        session.system.counter.count_types(list(UPDATE_MESSAGE_TYPES))
        - baseline_update
    )
    report = session.maintenance_report(scenario.duration_seconds)
    run.push_messages = report.push_messages
    run.reconciliation_messages = report.reconciliation_messages
    run.reconciliations = report.reconciliations
    return run


@dataclass
class QueryCostRun:
    """Measurements of one multi-domain query-cost comparison."""

    peer_count: int
    queries: int = 0
    summary_querying_messages: float = 0.0
    flooding_messages: float = 0.0
    centralized_messages: float = 0.0
    model_summary_querying_messages: float = 0.0
    model_centralized_messages: float = 0.0

    def as_row(self) -> Dict[str, float]:
        return {
            "peers": self.peer_count,
            "sq_messages": self.summary_querying_messages,
            "flooding_messages": self.flooding_messages,
            "centralized_messages": self.centralized_messages,
            "sq_model": self.model_summary_querying_messages,
            "centralized_model": self.model_centralized_messages,
        }


def run_query_cost_comparison(
    peer_count: int,
    query_count: int = 50,
    hit_rate: float = 0.1,
    alpha: float = 0.3,
    flooding_ttl: int = 3,
    seed: int = 0,
    false_positive_rate: float = 0.0,
    cache: CacheTarget = None,
) -> QueryCostRun:
    """Compare summary querying, pure flooding and a centralized index.

    Every algorithm answers the same planned queries over the same overlay;
    the summary-querying run visits as many domains as needed to gather every
    available result (a total-lookup query, the paper's Figure 7 setting).
    ``cache`` warm-starts the built session (see
    :func:`run_maintenance_simulation`).
    """
    scenario = default_registry().scenario(
        "query-cost",
        peer_count=peer_count,
        alpha=alpha,
        matching_fraction=hit_rate,
        seed=seed,
    )
    session = _cached_session(
        cache,
        _scenario_key(scenario, driver="multi-domain-query-cost"),
        scenario.session,
    )
    overlay = session.overlay
    content = session.content
    assert content is not None

    flooding = FloodingSearch(ttl=flooding_ttl)
    centralized = CentralizedIndex()
    originators = session.partner_ids() or overlay.peer_ids

    run = QueryCostRun(peer_count=peer_count, queries=query_count)
    required = max(1, round(hit_rate * peer_count))
    rng_index = 0
    requests = []
    for _query_index in range(query_count):
        originator = originators[rng_index % len(originators)]
        rng_index += 7  # deterministic, spread over the population
        requests.append(
            QueryRequest(
                originator=originator,
                query_id=session.next_query_id(),
                policy=RoutingPolicy.ALL,
                required_results=required,
            )
        )

    # The SQ leg runs as one batch (byte-identical per-query results, shared
    # derivation work); the baselines keep their own counters, so posing them
    # after the batch leaves every reported figure unchanged.
    answers = session.query_batch(requests=requests, include_staleness=False)
    sq_total = float(sum(answer.total_messages for answer in answers))

    flood_total = 0.0
    central_total = 0.0
    for request in requests:
        flood_outcome = flooding.query(
            overlay,
            request.originator,
            content,
            request.query_id,
            required_results=required,
        )
        flood_total += flood_outcome.total_messages

        central_outcome = centralized.query(
            overlay.peer_ids, request.originator, content, request.query_id
        )
        central_total += central_outcome.total_messages

    run.summary_querying_messages = sq_total / query_count
    run.flooding_messages = flood_total / query_count
    run.centralized_messages = central_total / query_count
    run.model_summary_querying_messages = PaperQueryScenario(
        peer_count=peer_count, false_positive_rate=false_positive_rate
    ).summary_querying_cost()
    run.model_centralized_messages = centralized_query_cost(peer_count, hit_rate)
    return run
