"""Figure 6 — number of update messages vs. domain size, for α ∈ {0.3, 0.8}.

The total number of push + reconciliation messages grows with the domain size
but the number of messages *per node* stays roughly constant; tightening the
threshold from 0.8 to 0.3 costs only ≈1.2× more messages on average while
substantially reducing staleness (Figure 4).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.costmodel.update_cost import UpdateCostModel
from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import (
    CacheTarget,
    run_maintenance_simulation,
    shared_session_cache,
)
from repro.workloads.registry import default_registry
from repro.workloads.scenarios import DEFAULT_DOMAIN_SIZES

PAPER_EXPECTATION = (
    "total messages increase with the domain size, per-node messages stay "
    "roughly flat; moving α from 0.8 to 0.3 increases the cost by only ≈1.2× "
    "on average"
)


def run_figure6(
    domain_sizes: Optional[Sequence[int]] = None,
    alphas: Sequence[float] = (0.3, 0.8),
    duration_seconds: float = 6 * 3600.0,
    seed: int = 0,
    cache: CacheTarget = None,
) -> ExperimentTable:
    """Reproduce Figure 6: update traffic vs. domain size for two α values."""
    domain_sizes = list(domain_sizes or DEFAULT_DOMAIN_SIZES)
    table = ExperimentTable(
        name="Figure 6 — update messages vs. domain size",
        columns=[
            "domain_size",
            "alpha",
            "total_messages",
            "messages_per_node",
            "push_messages",
            "reconciliations",
            "model_messages_per_node",
        ],
        expectation=PAPER_EXPECTATION,
        parameters={"duration_seconds": duration_seconds, "seed": seed},
    )
    registry = default_registry()
    # One cache for the α × size sweep (opened/closed once, shared restores).
    with shared_session_cache(cache) as sweep_cache:
        for alpha in alphas:
            for size in domain_sizes:
                scenario = registry.scenario(
                    "maintenance",
                    peer_count=size,
                    alpha=alpha,
                    duration_seconds=duration_seconds,
                    seed=seed,
                )
                run = run_maintenance_simulation(scenario, cache=sweep_cache)
                model = UpdateCostModel(
                    domain_size=size,
                    lifetime_seconds=scenario.lifetime_mean_seconds,
                    alpha=alpha,
                )
                table.add_row(
                    domain_size=size,
                    alpha=alpha,
                    total_messages=run.update_messages,
                    messages_per_node=run.messages_per_node,
                    push_messages=run.push_messages,
                    reconciliations=run.reconciliations,
                    model_messages_per_node=model.messages_per_node(duration_seconds),
                )
    return table


def cost_increase_factor(table: ExperimentTable, low_alpha: float, high_alpha: float) -> float:
    """Average per-node cost ratio between the low and high α settings."""
    low_rows = table.filter(alpha=low_alpha)
    high_rows = table.filter(alpha=high_alpha)
    ratios: List[float] = []
    for low_row in low_rows:
        for high_row in high_rows:
            if high_row["domain_size"] != low_row["domain_size"]:
                continue
            if high_row["messages_per_node"] > 0:
                ratios.append(
                    low_row["messages_per_node"] / high_row["messages_per_node"]
                )
    return sum(ratios) / len(ratios) if ratios else float("nan")


def main(sizes: Optional[List[int]] = None) -> ExperimentTable:
    table = run_figure6(domain_sizes=sizes or [16, 100, 500])
    print(table.to_text())
    print(
        "cost increase factor (alpha 0.3 vs 0.8): "
        f"{cost_increase_factor(table, 0.3, 0.8):.2f}"
    )
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
