"""Figure 7 — query cost vs. number of peers: SQ vs. flooding vs. central index.

The summary-querying algorithm (SQ) cuts the number of exchanged messages by a
factor of ≈3.5 with respect to TTL-3 flooding at 2000 peers, the gap widening
with network size, while the (idealised) centralized index remains the lower
bound.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import (
    CacheTarget,
    run_query_cost_comparison,
    shared_session_cache,
)
from repro.workloads.scenarios import DEFAULT_NETWORK_SIZES

PAPER_EXPECTATION = (
    "centralized index < summary querying (SQ) < pure flooding; SQ reduces the "
    "query cost by ≈3.5× vs. flooding at 2000 peers and the reduction grows "
    "with the network size"
)


def run_figure7(
    network_sizes: Optional[Sequence[int]] = None,
    queries_per_size: int = 30,
    hit_rate: float = 0.1,
    flooding_ttl: int = 3,
    seed: int = 0,
    cache: CacheTarget = None,
) -> ExperimentTable:
    """Reproduce Figure 7: per-query message counts for the three algorithms."""
    network_sizes = list(network_sizes or DEFAULT_NETWORK_SIZES)
    table = ExperimentTable(
        name="Figure 7 — query cost vs. number of peers",
        columns=[
            "peers",
            "sq_messages",
            "flooding_messages",
            "centralized_messages",
            "sq_model",
            "centralized_model",
            "flooding_over_sq",
        ],
        expectation=PAPER_EXPECTATION,
        parameters={
            "queries_per_size": queries_per_size,
            "hit_rate": hit_rate,
            "flooding_ttl": flooding_ttl,
            "seed": seed,
        },
    )
    # One cache for the whole size sweep (opened/closed once).
    with shared_session_cache(cache) as sweep_cache:
        for size in network_sizes:
            run = run_query_cost_comparison(
                peer_count=size,
                query_count=queries_per_size,
                hit_rate=hit_rate,
                flooding_ttl=flooding_ttl,
                seed=seed,
                cache=sweep_cache,
            )
            ratio = (
                run.flooding_messages / run.summary_querying_messages
                if run.summary_querying_messages > 0
                else float("inf")
            )
            table.add_row(
                peers=size,
                sq_messages=run.summary_querying_messages,
                flooding_messages=run.flooding_messages,
                centralized_messages=run.centralized_messages,
                sq_model=run.model_summary_querying_messages,
                centralized_model=run.model_centralized_messages,
                flooding_over_sq=ratio,
            )
    return table


def main(sizes: Optional[List[int]] = None) -> ExperimentTable:
    table = run_figure7(network_sizes=sizes or [16, 100, 500, 1000])
    print(table.to_text())
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
