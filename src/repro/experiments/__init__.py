"""Experiment harness: one module per table/figure of the paper's evaluation.

Every module exposes a ``run_*`` function returning an
:class:`~repro.experiments.reporting.ExperimentTable` (rows + metadata) and a
``main()`` that prints it, so the benches under ``benchmarks/`` and the
``examples/`` scripts share the exact same code paths.
"""

from repro.experiments.fault_sweep import run_fault_sweep
from repro.experiments.fig4_stale_answers import run_figure4
from repro.experiments.fig5_false_negatives import run_figure5
from repro.experiments.fig6_update_cost import run_figure6
from repro.experiments.fig7_query_cost import run_figure7
from repro.experiments.reporting import ExperimentTable
from repro.experiments.tables import run_table1_table2, run_table3

__all__ = [
    "ExperimentTable",
    "run_fault_sweep",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_table1_table2",
    "run_table3",
]
