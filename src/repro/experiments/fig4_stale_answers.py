"""Figure 4 — fraction of stale answers vs. domain size, for several α.

The paper reports the *worst-case* staleness: every stale (freshness 1)
partner selected in ``P_Q`` counts as a false positive and every stale
matching partner outside ``P_Q`` as a false negative.  The headline number is
≈11 % stale answers for a 500-peer domain at α = 0.3, growing with α.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.reporting import ExperimentTable
from repro.experiments.runner import (
    CacheTarget,
    run_maintenance_simulation,
    shared_session_cache,
)
from repro.workloads.registry import default_registry
from repro.workloads.scenarios import DEFAULT_ALPHAS, DEFAULT_DOMAIN_SIZES

PAPER_EXPECTATION = (
    "stale-answer fraction grows with the threshold α and stays bounded "
    "(≈11 % for a 500-peer domain at α = 0.3); it is roughly flat in the "
    "domain size"
)


def run_figure4(
    domain_sizes: Optional[Sequence[int]] = None,
    alphas: Optional[Sequence[float]] = None,
    duration_seconds: float = 6 * 3600.0,
    seed: int = 0,
    cache: CacheTarget = None,
) -> ExperimentTable:
    """Reproduce Figure 4: worst-case stale answers vs. domain size and α."""
    domain_sizes = list(domain_sizes or DEFAULT_DOMAIN_SIZES)
    alphas = list(alphas or DEFAULT_ALPHAS)

    table = ExperimentTable(
        name="Figure 4 — stale answers vs. domain size",
        columns=["domain_size", "alpha", "stale_fraction", "real_stale_fraction"],
        expectation=PAPER_EXPECTATION,
        parameters={
            "duration_seconds": duration_seconds,
            "seed": seed,
            "lifetime": "log-normal mean 3 h / median 1 h",
        },
    )
    registry = default_registry()
    # One cache for the α × size sweep (opened/closed once, shared restores).
    with shared_session_cache(cache) as sweep_cache:
        for alpha in alphas:
            for size in domain_sizes:
                scenario = registry.scenario(
                    "maintenance",
                    peer_count=size,
                    alpha=alpha,
                    duration_seconds=duration_seconds,
                    seed=seed,
                )
                run = run_maintenance_simulation(scenario, cache=sweep_cache)
                table.add_row(
                    domain_size=size,
                    alpha=alpha,
                    stale_fraction=run.mean_worst_stale_fraction,
                    real_stale_fraction=run.mean_real_stale_fraction,
                )
    return table


def main(sizes: Optional[List[int]] = None) -> ExperimentTable:
    table = run_figure4(domain_sizes=sizes or [16, 100, 500], alphas=[0.3, 0.8])
    print(table.to_text())
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
