"""Fault-intensity sweep — answer quality and overhead vs. injected faults.

The paper's Figures 4/5 plot answer staleness against domain size; this sweep
plots the same quality axes (plus the new degradation report) against the
*fault intensity* of the network: per-link loss probability, with a partition
window whose width grows with the intensity.  The zero-intensity column runs
with no fault plan at all, so it is byte-identical to the pre-fault behaviour
and anchors the sweep.

What the protocol must show: answers stay *marked* (every degraded answer
carries an accurate :class:`~repro.core.session.DegradationReport`), and the
retry/backoff machinery bounds the message overhead instead of letting it grow
unbounded with the loss rate.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.reporting import ExperimentTable
from repro.network.faults import FaultPlan, LinkFaults, PartitionEvent
from repro.workloads.scenarios import SimulationScenario

PAPER_EXPECTATION = (
    "degraded-answer fraction and per-query cost grow smoothly with the fault "
    "intensity; retries/backoff keep the overhead bounded (no cliff), and the "
    "zero-intensity column matches the fault-free run exactly"
)

#: Loss probabilities swept by default (0.0 = no fault plan installed).
DEFAULT_INTENSITIES: List[float] = [0.0, 0.05, 0.1, 0.2]


def _plan_for_intensity(
    intensity: float, duration_seconds: float, seed: int
) -> Optional[FaultPlan]:
    """The fault plan of one sweep column: loss + a partition window.

    Intensity 0 returns ``None`` (no plan, the byte-identical baseline).  The
    partition window opens at one quarter of the horizon and widens with the
    intensity, up to half the horizon at intensity 1.
    """
    if intensity <= 0.0:
        return None
    # The window is centered on the sweep's query point (0.4 × horizon) so
    # queries land mid-partition at every intensity; its width grows with the
    # intensity, up to half the horizon.
    half = duration_seconds * 0.25 * min(1.0, intensity)
    center = duration_seconds * 0.4
    return FaultPlan(
        seed=seed,
        link=LinkFaults(drop_probability=intensity),
        partitions=[
            PartitionEvent(at=center - half, fraction=0.5, heal_at=center + half)
        ],
    )


def run_fault_sweep(
    intensities: Optional[Sequence[float]] = None,
    peer_count: int = 96,
    duration_seconds: float = 2 * 3600.0,
    query_count: int = 30,
    seed: int = 0,
    observability=None,
) -> ExperimentTable:
    """Run the sweep: one full adversity scenario per intensity.

    With ``observability`` the sweep is instrumented: every per-intensity
    session routes its spans and metrics into the given
    :class:`~repro.obs.Observability`, and each session's message counter is
    bridged into the registry when its column completes, so the artifact
    aggregates the whole sweep.
    """
    intensities = list(intensities or DEFAULT_INTENSITIES)
    table = ExperimentTable(
        name="Fault sweep — answer quality and overhead vs. fault intensity",
        columns=[
            "intensity",
            "partial_fraction",
            "worst_stale",
            "real_fn",
            "query_messages_per_query",
            "update_messages_per_node",
            "dropped_messages",
            "retries",
        ],
        expectation=PAPER_EXPECTATION,
        parameters={
            "peer_count": peer_count,
            "duration_seconds": duration_seconds,
            "query_count": query_count,
            "seed": seed,
        },
    )
    for intensity in intensities:
        scenario = SimulationScenario(
            peer_count=peer_count,
            duration_seconds=duration_seconds,
            query_count=query_count,
            seed=seed,
            fault_plan=_plan_for_intensity(intensity, duration_seconds, seed + 1),
        )
        session = scenario.apply_dynamics(scenario.builder()).build()
        if observability is not None:
            session.install_observability(observability)
        # Query mid-window so the partition (when there is one) is open.
        session.run_until(duration_seconds * 0.4)
        answers = session.query_batch(count=query_count)
        session.run_until(duration_seconds)

        partial = sum(
            1
            for answer in answers
            if answer.degradation is not None and not answer.degradation.complete
        )
        worst = [a.staleness.worst_stale_fraction for a in answers if a.staleness]
        real_fn = [
            a.staleness.real_false_negative_fraction for a in answers if a.staleness
        ]
        query_messages = sum(answer.query_messages for answer in answers)
        counter = session.system.counter
        traffic = session.traffic()
        table.add_row(
            intensity=intensity,
            partial_fraction=partial / len(answers) if answers else 0.0,
            worst_stale=sum(worst) / len(worst) if worst else 0.0,
            real_fn=sum(real_fn) / len(real_fn) if real_fn else 0.0,
            query_messages_per_query=(
                query_messages / len(answers) if answers else 0.0
            ),
            update_messages_per_node=traffic.update.messages_per_node,
            dropped_messages=counter.dropped_total,
            retries=counter.retry_total,
        )
        if observability is not None:
            counter.to_metrics(observability.metrics)
    return table


def main(intensities: Optional[List[float]] = None) -> ExperimentTable:
    table = run_fault_sweep(intensities=intensities)
    print(table.to_text())
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
