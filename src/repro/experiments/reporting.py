"""Result tables: the common output format of every experiment."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class ExperimentTable:
    """Rows of results plus metadata identifying the experiment.

    The ``expectation`` field records, in prose, the shape the paper reports
    for the same figure/table so that EXPERIMENTS.md can be generated from the
    harness output alone.
    """

    name: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    expectation: str = ""
    parameters: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ValueError(f"row is missing columns {missing}")
        self.rows.append({column: values[column] for column in self.columns})

    def column(self, name: str) -> List[Any]:
        return [row[name] for row in self.rows]

    def filter(self, **criteria: Any) -> List[Dict[str, Any]]:
        """Rows whose values match every criterion exactly."""
        selected = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                selected.append(row)
        return selected

    # -- rendering ------------------------------------------------------------------

    def to_text(self) -> str:
        """Render as a fixed-width text table."""
        headers = list(self.columns)
        rendered_rows = [
            [self._format(row[column]) for column in headers] for row in self.rows
        ]
        widths = [
            max(len(headers[i]), *(len(r[i]) for r in rendered_rows))
            if rendered_rows
            else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.name]
        if self.parameters:
            lines.append(
                "parameters: "
                + ", ".join(f"{key}={value}" for key, value in self.parameters.items())
            )
        lines.append(
            "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers))
        )
        lines.append("  ".join("-" * width for width in widths))
        for row in rendered_rows:
            lines.append(
                "  ".join(value.ljust(widths[i]) for i, value in enumerate(row))
            )
        if self.expectation:
            lines.append(f"paper expectation: {self.expectation}")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "name": self.name,
                "parameters": self.parameters,
                "columns": list(self.columns),
                "rows": self.rows,
                "expectation": self.expectation,
            },
            indent=2,
            default=str,
        )

    @staticmethod
    def _format(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    def __str__(self) -> str:
        return self.to_text()


def print_table(table: ExperimentTable, header: Optional[str] = None) -> None:
    if header:
        print(header)
    print(table.to_text())
    print()
