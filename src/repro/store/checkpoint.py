"""Session checkpoint/restore: persist a whole :class:`NetworkSession`.

A checkpoint captures everything a running session is made of — overlay graph
and per-peer state, domains with their cooperation lists and global
summaries, protocol configuration, content model (plan + RNG state), message
counters, maintenance statistics, the simulator clock and every pending
churn/modification event — so that a session restored with
:meth:`repro.core.session.SystemBuilder.from_checkpoint` continues *byte
identically*: subsequent query routing, staleness snapshots and traffic
reports match the never-persisted session exactly.

Hierarchies (local summaries, global summaries) are not inlined: they are
filed in the same backend's content-addressed :class:`SnapshotStore` and the
checkpoint references them by hash, so identical hierarchies are stored once
across peers, checkpoints and runs.

Delta checkpoints
-----------------
``save_session(..., base=<name>)`` persists a *delta*: a structural patch
(:mod:`repro.store.deltas`) against the resolved payload of the ``base``
checkpoint, instead of the full document.  Between two nearby simulation
times most of a checkpoint — the overlay adjacency, peer states, domains —
is unchanged, so the delta is a small fraction of the full size.  Restoring
a delta resolves its base chain first (a delta may build on another delta)
and replays the patches; the resolved payload is byte-identical to what a
full checkpoint at the same moment would have stored, so every continuation
guarantee below applies unchanged.

Determinism notes
-----------------
* Pending simulator events carry declarative specs (see
  :meth:`SummaryManagementSystem.schedule_event_from_spec`); their original
  sequence numbers are preserved so same-timestamp ties break as in the
  uninterrupted run.
* The overlay's per-node adjacency *order* is serialized and re-imposed on
  the rebuilt graph: neighbour order feeds the selective walk's tie-breaking
  RNG, so byte-identical continuation needs the exact order, which plain
  edge-list reconstruction cannot guarantee.
* Dict insertion orders that are protocol-visible (domain visit order,
  cooperation-list partner order, partner distances) are serialized as
  ordered lists.

The diagnostic ``query_results`` history of the engine is *not* part of a
checkpoint: it records the past, which the restored session does not replay.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple, Union

import networkx as nx

from repro.core.config import ProtocolConfig
from repro.core.content import PlannedContentModel, SummaryContentModel
from repro.core.cooperation import CooperationList
from repro.core.domain import Domain
from repro.core.freshness import Freshness, FreshnessMode
from repro.core.maintenance import ReconciliationRecord
from repro.core.protocol import SummaryManagementSystem
from repro.core.service import LocalSummaryService
from repro.database.engine import LocalDatabase
from repro.database.query import (
    AttributeIn,
    Comparison,
    DescriptorPredicate,
    Predicate,
    SelectionQuery,
)
from repro.database.schema import Attribute, AttributeType, Schema
from repro.exceptions import StoreError
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import Descriptor
from repro.network.faults import FaultInjector
from repro.network.metrics import MessageCounter
from repro.network.overlay import Overlay
from repro.network.peer import PeerRole
from repro.saintetiq.clustering import ClusteringParameters
from repro.store.backend import StoreBackend, open_store, owns_backend
from repro.store.deltas import apply_patch, diff_documents
from repro.store.lazy import DEFAULT_CACHE_SIZE, HierarchySource
from repro.store.snapshots import SnapshotStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.session import NetworkSession, ReadOnlyNetworkSession
    from repro.runtime import RuntimeSpec

#: The namespace checkpoints are filed under in any backend.
CHECKPOINT_KIND = "checkpoint"
#: Default checkpoint name when the caller does not pick one.
DEFAULT_CHECKPOINT_NAME = "session"

_CHECKPOINT_FORMAT = 1


# -- small codec helpers ----------------------------------------------------------


def _rng_payload(rng: random.Random) -> List[object]:
    version, internal, position = rng.getstate()
    return [version, list(internal), position]


def _rng_restore(rng: random.Random, payload: List[object]) -> None:
    version, internal, position = payload
    rng.setstate((version, tuple(internal), position))


def _finite(value: float) -> Optional[float]:
    return None if value == float("inf") else value


def _or_inf(value: Optional[float]) -> float:
    return float("inf") if value is None else float(value)


# -- overlay ----------------------------------------------------------------------


def _overlay_payload(overlay: Overlay) -> Dict[str, Any]:
    graph = overlay.graph
    return {
        "nodes": list(graph.nodes),
        # The overlay's own tie-breaking RNG (used when a selective walk is
        # invoked without an explicit one): its state must survive restore or
        # post-restore default walks would diverge from the live session.
        "rng": _rng_payload(overlay.rng),
        # Per-node adjacency in its exact iteration order (see module notes).
        "adjacency": [
            [node, [[nbr, graph.edges[node, nbr]["latency"]] for nbr in graph.adj[node]]]
            for node in graph.nodes
        ],
        "peers": [
            {
                "peer_id": peer.peer_id,
                "role": peer.role.value,
                "online": peer.online,
                "summary_peer_id": peer.summary_peer_id,
                "summary_peer_distance": _finite(peer.summary_peer_distance),
                "known_summary_peers": sorted(peer.known_summary_peers),
            }
            for peer in overlay.peers()
        ],
    }


def _overlay_from_payload(payload: Dict[str, Any]) -> Overlay:
    graph = nx.Graph()
    graph.add_nodes_from(payload["nodes"])
    for node, neighbours in payload["adjacency"]:
        for neighbour, latency in neighbours:
            if not graph.has_edge(node, neighbour):
                graph.add_edge(node, neighbour, latency=float(latency))
    # Re-impose the serialized adjacency order: the edge-attribute dicts are
    # shared between both endpoints, so reordering the keys keeps them aliased.
    for node, neighbours in payload["adjacency"]:
        adjacency = graph._adj[node]  # noqa: SLF001 - order restoration
        graph._adj[node] = {  # noqa: SLF001
            neighbour: adjacency[neighbour] for neighbour, _latency in neighbours
        }
    overlay = Overlay(graph)
    if "rng" in payload:
        _rng_restore(overlay.rng, payload["rng"])
    for state in payload["peers"]:
        peer = overlay.peer(state["peer_id"])
        peer.role = PeerRole(state["role"])
        peer.online = bool(state["online"])
        peer.summary_peer_id = state["summary_peer_id"]
        peer.summary_peer_distance = _or_inf(state["summary_peer_distance"])
        peer.known_summary_peers = set(state["known_summary_peers"])
    return overlay


# -- protocol configuration -------------------------------------------------------


def _config_payload(config: ProtocolConfig) -> Dict[str, Any]:
    return {
        "construction_ttl": config.construction_ttl,
        "freshness_threshold": config.freshness_threshold,
        "freshness_mode": config.freshness_mode.value,
        "drift_threshold": config.drift_threshold,
        "flooding_ttl": config.flooding_ttl,
        "selective_walk_max_hops": config.selective_walk_max_hops,
        "query_rate_per_peer": config.query_rate_per_peer,
        "modification_probability": config.modification_probability,
        "superpeer_fraction": config.superpeer_fraction,
        "count_reconciliation_ring_hops": config.count_reconciliation_ring_hops,
        "push_max_retries": config.push_max_retries,
        "reconciliation_max_retries": config.reconciliation_max_retries,
        "query_max_retries": config.query_max_retries,
        "retry_backoff_seconds": config.retry_backoff_seconds,
        "retry_backoff_factor": config.retry_backoff_factor,
    }


def _config_from_payload(payload: Dict[str, Any]) -> ProtocolConfig:
    fields = dict(payload)
    fields["freshness_mode"] = FreshnessMode(fields["freshness_mode"])
    return ProtocolConfig(**fields)


# -- domains ----------------------------------------------------------------------


def _domain_payload(domain: Domain, snapshots: SnapshotStore) -> Dict[str, Any]:
    summary_hash: Optional[str] = None
    if domain.global_summary is not None:
        summary_hash = snapshots.put_hierarchy(domain.global_summary)
    return {
        "summary_peer_id": domain.summary_peer_id,
        "mode": domain.cooperation.mode.value,
        "entries": [
            [entry.peer_id, int(entry.freshness), entry.updated_at]
            for entry in domain.cooperation
        ],
        "distances": [
            [peer_id, distance]
            for peer_id, distance in domain.partner_distances.items()
        ],
        "global_summary": summary_hash,
    }


def _domain_from_payload(
    payload: Dict[str, Any],
    snapshots: SnapshotStore,
    background: Optional[BackgroundKnowledge],
    lazy: Optional[HierarchySource] = None,
) -> Domain:
    cooperation = CooperationList(FreshnessMode(payload["mode"]))
    for peer_id, freshness, updated_at in payload["entries"]:
        entry = cooperation.add_partner(peer_id, now=float(updated_at))
        entry.freshness = Freshness(int(freshness))
    domain = Domain(
        summary_peer_id=payload["summary_peer_id"],
        cooperation=cooperation,
        partner_distances={
            peer_id: float(distance) for peer_id, distance in payload["distances"]
        },
    )
    summary_hash = payload.get("global_summary")
    if summary_hash is not None:
        if background is None:
            raise StoreError(
                "this checkpoint carries global summaries: restoring it needs "
                "the common background knowledge (pass background=...)"
            )
        if lazy is not None:
            domain.bind_summary_loader(lazy.loader(summary_hash))
        else:
            domain.global_summary = snapshots.get_hierarchy(summary_hash, background)
    return domain


# -- queries ----------------------------------------------------------------------


def _predicate_payload(predicate: Predicate) -> Dict[str, Any]:
    if isinstance(predicate, Comparison):
        return {"type": "comparison", "attr": predicate.attr, "op": predicate.op,
                "value": predicate.value}
    if isinstance(predicate, AttributeIn):
        return {
            "type": "in",
            "attr": predicate.attr,
            "values": sorted(predicate.values, key=repr),
        }
    if isinstance(predicate, DescriptorPredicate):
        return {
            "type": "descriptor",
            "attr": predicate.attr,
            "descriptors": [[d.attribute, d.label] for d in predicate.descriptors],
            "alpha_cut": predicate.alpha_cut,
        }
    raise StoreError(f"cannot checkpoint predicate type {type(predicate).__name__}")


def _predicate_from_payload(payload: Dict[str, Any]) -> Predicate:
    kind = payload["type"]
    if kind == "comparison":
        return Comparison(payload["attr"], payload["op"], payload["value"])
    if kind == "in":
        return AttributeIn(payload["attr"], payload["values"])
    if kind == "descriptor":
        return DescriptorPredicate(
            payload["attr"],
            [Descriptor(attribute, label) for attribute, label in payload["descriptors"]],
            alpha_cut=float(payload["alpha_cut"]),
        )
    raise StoreError(f"unknown checkpointed predicate type {kind!r}")


def _query_payload(query: SelectionQuery) -> Dict[str, Any]:
    return {
        "relation": query.relation,
        "predicates": [_predicate_payload(p) for p in query.predicates],
        "select": list(query.select),
    }


def _query_from_payload(payload: Dict[str, Any]) -> SelectionQuery:
    return SelectionQuery(
        payload["relation"],
        [_predicate_from_payload(p) for p in payload["predicates"]],
        payload["select"],
    )


# -- databases and services (real content) ----------------------------------------


def _database_payload(database: LocalDatabase) -> Dict[str, Any]:
    relations = []
    for name in database.relation_names:
        relation = database.relation(name)
        relations.append(
            {
                "name": name,
                "schema": [
                    [a.name, a.type.value, a.nullable] for a in relation.schema.attributes
                ],
                "records": [record.as_dict() for record in relation],
                "version": relation.version,
            }
        )
    return {"relations": relations}


def _database_from_payload(
    payload: Dict[str, Any], background: Optional[BackgroundKnowledge]
) -> LocalDatabase:
    database = LocalDatabase(background=background)
    for spec in payload["relations"]:
        schema = Schema(
            [
                Attribute(name, AttributeType(type_value), nullable)
                for name, type_value, nullable in spec["schema"]
            ]
        )
        relation = database.create_relation(spec["name"], schema, spec["records"])
        relation._version = int(spec["version"])  # noqa: SLF001 - exact restore
    return database


def _service_payload(
    service: LocalSummaryService, snapshots: SnapshotStore
) -> Dict[str, Any]:
    return {
        "summary": snapshots.put_hierarchy(service.summary),
        "published_signature": sorted(
            [d.attribute, d.label] for d in service._published_signature  # noqa: SLF001
        ),
        "database_version_summarized": service._database_version_summarized,  # noqa: SLF001
    }


# -- capture ----------------------------------------------------------------------


def capture_session(session: "NetworkSession") -> Tuple[Dict[str, Any], SnapshotStore]:
    """Encode a session into a checkpoint payload (hierarchies kept aside).

    Returns the payload and a staging in-memory snapshot store holding the
    referenced hierarchies; :func:`save_session` copies both into the target
    backend.
    """
    system = session.system
    snapshots = SnapshotStore(None)

    simulator = system.simulator
    events = []
    for event in simulator.pending():
        if event.spec is None:
            raise StoreError(
                f"pending simulator event {event.label or '<unlabelled>'!r} at "
                f"t={event.time:.0f}s carries no declarative spec and cannot "
                "be checkpointed; schedule protocol events through "
                "schedule_event_from_spec"
            )
        events.append(
            {
                "time": event.time,
                "sequence": event.sequence,
                "label": event.label,
                "spec": event.spec,
            }
        )

    content = system.content
    if content is None:
        raise StoreError("cannot checkpoint a session with no content configured")
    planned = isinstance(content, PlannedContentModel)

    payload: Dict[str, Any] = {
        "format": _CHECKPOINT_FORMAT,
        "mode": "planned" if planned else "real",
        "horizon": session.horizon,
        "config": _config_payload(system.config),
        "system_rng": _rng_payload(system.rng),
        "counter": system.counter.state_payload(),
        "simulator": {
            "now": simulator.now,
            "processed": simulator.processed_events,
            "next_sequence": simulator.next_sequence,
            "events": events,
        },
        "overlay": _overlay_payload(system.overlay),
        "domains": [
            _domain_payload(domain, snapshots) for domain in system.domains.values()
        ],
        "assignment": [[peer, sp] for peer, sp in system.assignment.items()],
        "described": [
            [sp_id, sorted(peers)] for sp_id, peers in system.described.items()
        ],
        "maintenance": {
            "push_messages": system.maintenance.stats.push_messages,
            "reconciliations": system.maintenance.stats.reconciliations,
            "reconciliation_messages": system.maintenance.stats.reconciliation_messages,
            "cold_starts": system.maintenance.stats.cold_starts,
            "history": [
                {
                    "summary_peer_id": record.summary_peer_id,
                    "time": record.time,
                    "participants": list(record.participants),
                    "removed_partners": list(record.removed_partners),
                    "messages": record.messages,
                }
                for record in system.maintenance.stats.history
            ],
        },
        "query_counter": system._query_counter,  # noqa: SLF001 - exact restore
    }
    if system.runtime.name != "simulator":
        # Only non-default runtimes are recorded, so checkpoints taken on the
        # default backend stay byte-identical to pre-runtime ones (the delta
        # and identity suites depend on that).
        payload["runtime"] = system.runtime.name
    if system.faults is not None:
        # The injector travels whole: plan, RNG mid-stream state, current
        # partition and accumulated statistics.  Its *scheduled* adversities
        # need no re-scheduling — they ride in the pending-event specs above.
        payload["faults"] = system.faults.state_payload()
    if planned:
        payload["content"] = content.state_payload()
    else:
        payload["databases"] = [
            [peer_id, _database_payload(database)]
            for peer_id, database in system.databases.items()
        ]
        payload["services"] = [
            [peer_id, _service_payload(service, snapshots)]
            for peer_id, service in system.services.items()
        ]
        payload["queries"] = [
            [query_id, _query_payload(query)]
            for query_id, query in system._queries.items()  # noqa: SLF001
        ]
    return payload, snapshots


def save_session(
    session: "NetworkSession",
    target: Union[None, str, StoreBackend],
    name: str = DEFAULT_CHECKPOINT_NAME,
    base: Optional[str] = None,
) -> str:
    """Checkpoint ``session`` into ``target`` under ``name``; returns the name.

    ``target`` is a backend or a path (see :func:`repro.store.open_store`).
    Hierarchies are stored content-addressed alongside the checkpoint, so
    checkpoints sharing hierarchies share their storage.

    With ``base=<existing checkpoint name>`` a *delta* checkpoint is stored
    instead: only the structural patch against the base's resolved payload
    (plus whatever new snapshots the session references).  The base — and,
    transitively, its own base chain — must stay in the store for the delta
    to restore; :func:`repro.store.gc.collect_garbage` treats the whole chain
    as live.
    """
    backend = open_store(target)
    try:
        payload, staging = capture_session(session)
        destination = SnapshotStore(backend)
        for digest in staging.hashes():
            if not destination.contains(digest):
                destination.put_payload(staging.get_payload(digest))
        if base is not None:
            if base == name:
                raise StoreError(
                    f"a delta checkpoint cannot use itself as base ({name!r})"
                )
            # Guard indirect cycles too: overwriting a checkpoint with a
            # delta whose base chain runs back through it (a → b → a) would
            # destroy the full payload and leave both unrestorable.
            base_chain = checkpoint_base_chain(backend, base)
            if name in base_chain:
                raise StoreError(
                    f"a delta checkpoint cannot use itself as base: {base!r} "
                    f"resolves through {name!r} "
                    f"({' -> '.join(base_chain)})"
                )
            base_payload = resolve_checkpoint_payload(backend, base)
            patch = diff_documents(base_payload, payload)
            backend.put(
                CHECKPOINT_KIND,
                name,
                {"format": _CHECKPOINT_FORMAT, "base": base, "patch": patch},
            )
        else:
            backend.put(CHECKPOINT_KIND, name, payload)
        return name
    finally:
        if owns_backend(target):
            backend.close()


# -- delta-chain resolution --------------------------------------------------------


def _get_link(
    backend: StoreBackend, name: str, referrer: Optional[str] = None
) -> Dict[str, Any]:
    """Fetch one chain link, turning a miss into a chain-context error.

    One ``get`` per link on the common path; ``contains`` runs only on the
    error path to distinguish a missing document from a corrupt one.
    """
    try:
        return backend.get(CHECKPOINT_KIND, name)
    except StoreError:
        if backend.contains(CHECKPOINT_KIND, name):
            raise  # stored but unreadable: surface the original error
        suffix = "" if referrer is None else f" (base of {referrer!r})"
        known = ", ".join(backend.keys(CHECKPOINT_KIND)) or "<none>"
        raise StoreError(
            f"no checkpoint {name!r}{suffix} in {backend.location()} "
            f"(stored checkpoints: {known})"
        ) from None


def _walk_chain(
    backend: StoreBackend,
    name: str,
    _cache: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Tuple[List[Tuple[str, Dict[str, Any]]], Optional[Dict[str, Any]]]:
    """Fetch the chain links from ``name`` down, each document exactly once.

    Returns ``(links, seed)`` where ``links`` is ``[(name, document), ...]``
    ordered from ``name`` toward its base, and ``seed`` is the already
    resolved payload of the first cached link met (the walk stops there), or
    ``None`` when the walk reached the full base.
    """
    links: List[Tuple[str, Dict[str, Any]]] = []
    seen: set = set()
    current, referrer = name, None
    while True:
        if current in seen:
            raise StoreError(
                f"cyclic delta-checkpoint chain at {current!r}: "
                f"{' -> '.join([link for link, _doc in links] + [current])}"
            )
        if _cache is not None and current in _cache:
            return links, _cache[current]
        document = _get_link(backend, current, referrer)
        _check_format(document, current)
        seen.add(current)
        links.append((current, document))
        base = document.get("base")
        if base is None:
            return links, None
        referrer, current = current, base


def checkpoint_base_chain(
    target: Union[None, str, StoreBackend], name: str
) -> List[str]:
    """The chain ``[name, base, base-of-base, ...]`` ending at a full checkpoint.

    A full checkpoint is its own one-element chain.  Raises :class:`StoreError`
    on a missing link or a cyclic chain.
    """
    backend = open_store(target)
    try:
        links, _seed = _walk_chain(backend, name)
        return [link for link, _document in links]
    finally:
        if owns_backend(target):
            backend.close()


def resolve_checkpoint_payload(
    backend: StoreBackend,
    name: str,
    _cache: Optional[Dict[str, Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """The full payload of a checkpoint, replaying its delta chain if any.

    ``_cache`` (name → resolved payload) lets a caller resolving *many*
    checkpoints — the GC resolves every stored one — replay each chain link
    once instead of re-resolving shared prefixes per checkpoint; treat the
    cached payloads as read-only.
    """
    if _cache is not None and name in _cache:
        return _cache[name]
    links, payload = _walk_chain(backend, name, _cache)
    for link, document in reversed(links):
        if "base" in document:
            payload = apply_patch(payload, document["patch"])
        else:
            payload = document
        if _cache is not None:
            _cache[link] = payload
    assert payload is not None  # a chain always ends in a full checkpoint
    return payload


def compact_checkpoint(
    target: Union[None, str, StoreBackend], name: str = DEFAULT_CHECKPOINT_NAME
) -> bool:
    """Fold a delta checkpoint's chain into a fresh full checkpoint.

    A long ``full → delta → … → delta`` chain keeps every link restore-time
    relevant (and GC-live).  Compaction resolves ``name`` through its chain
    and overwrites it with the resolved payload — byte-identical to what a
    full checkpoint taken at the same moment would have stored, so restores
    are unaffected while the chain's earlier links become reclaimable (once
    no *other* delta still bases on them).

    Returns ``True`` when the checkpoint was a delta and got compacted,
    ``False`` when it already was a full checkpoint (a no-op).
    """
    backend = open_store(target)
    try:
        document = _get_link(backend, name)
        _check_format(document, name)
        if "base" not in document:
            return False
        payload = resolve_checkpoint_payload(backend, name)
        backend.put(CHECKPOINT_KIND, name, payload)
        return True
    finally:
        if owns_backend(target):
            backend.close()


def compact_checkpoints(target: Union[None, str, StoreBackend]) -> List[str]:
    """Compact every delta checkpoint of a store; returns the compacted names.

    Each chain link is resolved at most once (shared resolution cache), so
    compacting a store full of stacked deltas costs one chain replay.
    """
    backend = open_store(target)
    try:
        compacted: List[str] = []
        resolved_cache: Dict[str, Dict[str, Any]] = {}
        for name in backend.keys(CHECKPOINT_KIND):
            document = _get_link(backend, name)
            _check_format(document, name)
            if "base" not in document:
                continue
            payload = resolve_checkpoint_payload(backend, name, _cache=resolved_cache)
            backend.put(CHECKPOINT_KIND, name, payload)
            compacted.append(name)
        return compacted
    finally:
        if owns_backend(target):
            backend.close()


def _check_format(document: Dict[str, Any], name: str) -> None:
    if document.get("format") != _CHECKPOINT_FORMAT:
        raise StoreError(
            f"unsupported checkpoint format in {name!r}: {document.get('format')!r}"
        )


# -- restore ----------------------------------------------------------------------


def restore_session(
    target: Union[None, str, StoreBackend],
    name: str = DEFAULT_CHECKPOINT_NAME,
    background: Optional[BackgroundKnowledge] = None,
    runtime: "RuntimeSpec" = None,
) -> "NetworkSession":
    """Rebuild the checkpointed session from ``target``.

    Real-content checkpoints (databases + summaries) need the common
    ``background`` knowledge, exactly like the summary wire format; planned
    content restores without one.  Delta checkpoints are resolved through
    their base chain transparently.

    ``runtime`` overrides the execution backend the restored session runs
    on; the default resumes on the backend recorded at checkpoint time (the
    simulator, for checkpoints predating the runtime layer).  Both backends
    continue byte-identically, so switching at restore is safe.
    """
    backend = open_store(target)
    try:
        return _restore_session(backend, name, background, runtime=runtime)
    finally:
        if owns_backend(target):
            backend.close()


def open_readonly_session(
    target: Union[None, str, StoreBackend],
    name: str = DEFAULT_CHECKPOINT_NAME,
    background: Optional[BackgroundKnowledge] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> "ReadOnlyNetworkSession":
    """Open a checkpoint as a shared, read-only serving session.

    Differences from :func:`restore_session`:

    * **Lazy hierarchy loading** — global summaries and per-peer local
      summaries are *not* materialized up front; each is pulled from the
      content-addressed snapshot store on first touch through a
      :class:`~repro.store.lazy.HierarchySource` (LRU keyed by snapshot hash,
      shared across all consumers).  Opening a large checkpoint therefore
      costs the structural payload only, and a query workload materializes
      exactly the hierarchies it touches.
    * **Read-only** — the returned
      :class:`~repro.core.session.ReadOnlyNetworkSession` answers queries and
      staleness requests (concurrently, from many threads) but rejects every
      mutating operation with
      :class:`~repro.exceptions.ReadOnlySessionError`, and rolls back all
      protocol-visible query bookkeeping after each request so answers stay
      byte-identical to a fresh restore regardless of request order.
    * **Backend lifetime** — when ``target`` is a path the opened backend
      stays open for the session's lifetime (lazy loads need it); the session
      owns it and closes it in :meth:`ReadOnlyNetworkSession.close` (or on
      ``with`` exit).  A caller-provided backend is left open as usual.
    """
    from repro.core.session import ReadOnlyNetworkSession

    # check_same_thread=False: server worker threads fetch lazy hierarchies
    # and close the session; the HierarchySource and session locks serialize
    # every post-open touch of the connection.
    backend = open_store(target, check_same_thread=False, exclusive=False)
    owns = owns_backend(target)
    try:
        source = HierarchySource(
            SnapshotStore(backend), background, cache_size=cache_size
        )
        session = _restore_session(
            backend,
            name,
            background,
            lazy=source,
            session_cls=ReadOnlyNetworkSession,
        )
        assert isinstance(session, ReadOnlyNetworkSession)
        session.bind_store(backend, owns_backend=owns, hierarchy_source=source)
        return session
    except Exception:
        if owns:
            backend.close()
        raise


def open_readonly_session_pool(
    target: Union[None, str, StoreBackend],
    size: int,
    name: str = DEFAULT_CHECKPOINT_NAME,
    background: Optional[BackgroundKnowledge] = None,
    cache_size: int = DEFAULT_CACHE_SIZE,
) -> List["ReadOnlyNetworkSession"]:
    """Open ``size`` independent read-only restores of one checkpoint.

    All members share one store backend and one lazy
    :class:`~repro.store.lazy.HierarchySource` (hierarchies are materialized
    once, pool-wide), but each carries its own protocol state and request
    lock — so up to ``size`` requests execute concurrently where a single
    read-only session serializes them.  Every member answers byte-identically
    to :func:`open_readonly_session` of the same checkpoint.

    The first member owns the backend (when ``target`` is a path): close the
    others first and it last, or wrap the list in
    :class:`repro.serve.server.SessionPool` whose ``close()`` does exactly
    that.
    """
    from repro.core.session import ReadOnlyNetworkSession

    if size < 1:
        raise StoreError(f"a session pool needs at least one member, got {size}")
    backend = open_store(target, check_same_thread=False, exclusive=False)
    owns = owns_backend(target)
    sessions: List["ReadOnlyNetworkSession"] = []
    try:
        source = HierarchySource(
            SnapshotStore(backend), background, cache_size=cache_size
        )
        for index in range(size):
            session = _restore_session(
                backend,
                name,
                background,
                lazy=source,
                session_cls=ReadOnlyNetworkSession,
            )
            assert isinstance(session, ReadOnlyNetworkSession)
            session.bind_store(
                backend,
                owns_backend=owns and index == 0,
                hierarchy_source=source,
            )
            sessions.append(session)
        return sessions
    except Exception:
        if owns:
            backend.close()
        raise


def _restore_session(
    backend: StoreBackend,
    name: str,
    background: Optional[BackgroundKnowledge],
    lazy: Optional[HierarchySource] = None,
    session_cls: Optional[type] = None,
    runtime: "RuntimeSpec" = None,
) -> "NetworkSession":
    from repro.core.session import NetworkSession

    if session_cls is None:
        session_cls = NetworkSession

    payload = resolve_checkpoint_payload(backend, name)
    snapshots = SnapshotStore(backend)
    planned = payload["mode"] == "planned"

    overlay = _overlay_from_payload(payload["overlay"])
    config = _config_from_payload(payload["config"])
    if runtime is None:
        runtime = payload.get("runtime", "simulator")
    system = SummaryManagementSystem(
        overlay, config=config, background=background, seed=0, runtime=runtime
    )
    _rng_restore(system.rng, payload["system_rng"])

    # Message accounting: the counter instance is shared with the maintenance
    # engine, churn handler and router, so it is rebuilt in place.
    restored_counter = MessageCounter.from_state(payload["counter"])
    counter = system.counter
    counter.reset()
    counter.merge(restored_counter)

    # Maintenance statistics.
    stats = system.maintenance.stats
    maintenance_payload = payload["maintenance"]
    stats.push_messages = int(maintenance_payload["push_messages"])
    stats.reconciliations = int(maintenance_payload["reconciliations"])
    stats.reconciliation_messages = int(maintenance_payload["reconciliation_messages"])
    stats.cold_starts = int(maintenance_payload.get("cold_starts", 0))
    stats.history = [
        ReconciliationRecord(
            summary_peer_id=record["summary_peer_id"],
            time=float(record["time"]),
            participants=list(record["participants"]),
            removed_partners=list(record["removed_partners"]),
            messages=int(record["messages"]),
        )
        for record in maintenance_payload["history"]
    ]

    # Content model, databases and services.
    if planned:
        system._content = PlannedContentModel.from_state(  # noqa: SLF001
            payload["content"]
        )
    else:
        if background is None:
            raise StoreError(
                "this checkpoint was taken from a real-content session: "
                "restoring it needs the common background knowledge "
                "(pass background=...)"
            )
        for peer_id, database_payload in payload["databases"]:
            database = _database_from_payload(database_payload, background)
            system._databases[peer_id] = database  # noqa: SLF001
            overlay.peer(peer_id).attach_database(database)
        for peer_id, service_payload in payload["services"]:
            if lazy is not None:
                # Lazy open: the service learns attributes/parameters from the
                # hierarchy when (if ever) it is materialized; the peer's
                # cosmetic ``local_summary`` reference is skipped entirely.
                service = LocalSummaryService(
                    peer_id,
                    background,
                    database=system._databases.get(peer_id),  # noqa: SLF001
                )
                service.bind_summary_loader(lazy.loader(service_payload["summary"]))
            else:
                summary = snapshots.get_hierarchy(
                    service_payload["summary"], background
                )
                service = LocalSummaryService(
                    peer_id,
                    background,
                    database=system._databases.get(peer_id),  # noqa: SLF001
                    attributes=summary.attributes,
                    parameters=summary._builder.parameters,  # noqa: SLF001
                )
                service._summary = summary  # noqa: SLF001 - exact restore
                overlay.peer(peer_id).attach_summary(summary)
            service._published_signature = frozenset(  # noqa: SLF001
                Descriptor(attribute, label)
                for attribute, label in service_payload["published_signature"]
            )
            service._database_version_summarized = int(  # noqa: SLF001
                service_payload["database_version_summarized"]
            )
            system._services[peer_id] = service  # noqa: SLF001
        for query_id, query_payload in payload.get("queries", []):
            system._queries[int(query_id)] = _query_from_payload(  # noqa: SLF001
                query_payload
            )
        system._content = SummaryContentModel(  # noqa: SLF001
            system._queries, system._databases  # noqa: SLF001
        )
    system._query_counter = int(payload["query_counter"])  # noqa: SLF001
    if payload.get("faults") is not None:
        system.attach_fault_state(FaultInjector.from_state(payload["faults"]))

    # Domains, assignment and described sets (insertion order preserved).
    for domain_payload in payload["domains"]:
        domain = _domain_from_payload(domain_payload, snapshots, background, lazy)
        system._domains[domain.summary_peer_id] = domain  # noqa: SLF001
    system._assignment.update(  # noqa: SLF001
        {peer: sp for peer, sp in payload["assignment"]}
    )
    for sp_id, peers in payload["described"]:
        system._described[sp_id] = set(peers)  # noqa: SLF001

    # Simulator clock and pending events (original sequence numbers kept).
    simulator_payload = payload["simulator"]
    system.simulator.load_state(
        now=float(simulator_payload["now"]),
        processed=int(simulator_payload["processed"]),
        next_sequence=int(simulator_payload["next_sequence"]),
    )
    for event in simulator_payload["events"]:
        system.simulator.restore_event(
            time=float(event["time"]),
            sequence=int(event["sequence"]),
            callback=system.event_callback_from_spec(event["spec"]),
            label=event["label"],
            spec=event["spec"],
        )

    return session_cls(
        system, construction_report=None, horizon=payload["horizon"]
    )


def list_checkpoints(target: Union[None, str, StoreBackend]) -> List[str]:
    """Names of the checkpoints stored in ``target``, sorted."""
    backend = open_store(target)
    try:
        return backend.keys(CHECKPOINT_KIND)
    finally:
        if owns_backend(target):
            backend.close()
