"""Pluggable persistence backends for the ``repro.store`` subsystem.

A backend is a tiny namespaced document store: JSON-compatible payloads are
filed under a ``(kind, key)`` pair, where ``kind`` groups objects of one type
("snapshot", "checkpoint", ...) and ``key`` identifies one object — typically
a content hash or a user-chosen name.  Three implementations ship:

* :class:`InMemoryBackend` — a dict; the default for tests and throwaway runs.
* :class:`JsonDirectoryBackend` — one ``<kind>/<key>.json`` file per object;
  greppable, diffable, rsync-friendly.
* :class:`SqliteBackend` — a single SQLite file; the compact choice for large
  stores (thousands of snapshots) and the one that travels as one artifact.

:func:`open_store` picks a backend from a path: ``None`` → memory, a
``.sqlite``/``.db``/``.sqlite3`` suffix → SQLite, anything else → directory.

Lifecycle: every backend is a context manager.  ``close()`` releases held
resources (the SQLite connection, most importantly) and flips the backend
into a closed state in which **every** operation raises :class:`StoreError`
— uniformly across the three implementations, so code that accidentally uses
a store after closing it fails the same way everywhere instead of only under
SQLite.
"""

from __future__ import annotations

import abc
import json
import os
import re
import sqlite3
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

from repro.exceptions import StoreError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.gc import GcReport

#: Payloads are canonicalised on write: sorted keys, compact separators.
_ENCODER = {"sort_keys": True, "separators": (",", ":")}

_KEY_PATTERN = re.compile(r"^[A-Za-z0-9._@+-]{1,200}$")


def _check_names(kind: str, key: str) -> None:
    for name, value in (("kind", kind), ("key", key)):
        if not _KEY_PATTERN.match(value):
            raise StoreError(
                f"invalid store {name} {value!r}: use 1-200 characters from "
                "[A-Za-z0-9._@+-]"
            )


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - platform dependent
        return True  # exists, owned by someone else
    except OSError:  # pragma: no cover - platform dependent
        return False
    return True


def _pid_start_token(pid: int) -> Optional[str]:
    """A token identifying this *incarnation* of ``pid``.

    On Linux this is the kernel's process start time (field 22 of
    ``/proc/<pid>/stat``, in clock ticks since boot) — two processes that
    recycle the same pid get different tokens.  Where ``/proc`` is not
    available the token is unknown (``None``) and pid-recycling cannot be
    detected; callers must then fall back to the plain liveness check.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            data = handle.read()
        # The comm field (2) may itself contain spaces and parentheses, so
        # split on the *last* ')': what follows are fields 3, 4, ... and the
        # start time is overall field 22 (index 19 after the state field).
        fields = data.rsplit(b")", 1)[1].split()
        return fields[19].decode("ascii")
    except (OSError, IndexError, UnicodeDecodeError):
        return None


class _WriteLock:
    """Sidecar lock file marking the one live writer of an on-disk store.

    Two backends writing the same SQLite file corrupt each other silently
    (last ``put`` wins, mid-transaction reads see torn state); two JSON
    directory writers race their atomic renames.  The lock turns that data
    race into one typed :class:`StoreError` at *open* time: the second
    exclusive open of a path fails while the first backend is alive.

    The lock records the holder's ``(pid, start-time token)`` as JSON.  It is
    considered **stale** — and stolen — when the recorded process no longer
    exists, or when a process with that pid exists but its start-time token
    differs from the recorded one (the pid was recycled by an unrelated
    process after the writer crashed).  A torn or empty sidecar (the writer
    crashed between creating and stamping the file) is likewise stale, not an
    error.  Only an *unreadable* file (permissions, I/O) is treated as held,
    erring on the safe side.

    Stealing is race-safe: a contender first claims the stale file with an
    atomic :func:`os.rename` — exactly one concurrent contender wins that
    rename — and only the winner retries the exclusive create.  Losers see a
    fresh, live lock and fail with the usual typed :class:`StoreError`.
    """

    def __init__(self, path: Path, store: str) -> None:
        self._path = path
        self._store = store
        self._acquired = False

    def acquire(self) -> None:
        for attempt in (1, 2, 3):
            try:
                handle = os.open(
                    self._path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                holder_pid, stale = self._holder_state()
                if not stale or attempt == 3:
                    raise StoreError(
                        f"store {self._store} is already open for write "
                        f"(lock {self._path} held by pid {holder_pid}): close "
                        "the other backend first, or open read-only with "
                        "exclusive=False"
                    ) from None
                # The recorded writer is gone (crashed without close()) or
                # its pid was recycled: claim the stale file atomically —
                # rename succeeds for exactly one concurrent contender — and
                # retry the exclusive create.  A loser's rename fails, and
                # its next create attempt finds the winner's live lock.
                claim = self._path.with_name(
                    f"{self._path.name}.steal.{os.getpid()}"
                )
                try:
                    os.rename(self._path, claim)
                except OSError:
                    continue
                try:
                    os.unlink(claim)
                except OSError:  # pragma: no cover - filesystem dependent
                    pass
                continue
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                pid = os.getpid()
                stream.write(
                    json.dumps({"pid": pid, "token": _pid_start_token(pid)})
                )
            self._acquired = True
            return

    def _holder_state(self) -> "tuple[Optional[int], bool]":
        """The recorded holder pid and whether the lock is stale."""
        try:
            raw = self._path.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            # Another contender already stole and released (or is mid-steal):
            # treat as stale so the create is simply retried.
            return None, True
        except OSError:
            return None, False  # unreadable: assume held, err on the safe side
        if not raw:
            return None, True  # torn write: crashed before stamping
        token: Optional[str] = None
        try:
            document = json.loads(raw)
        except ValueError:
            document = None
        if isinstance(document, dict):
            try:
                pid = int(document["pid"])
            except (KeyError, TypeError, ValueError):
                return None, True  # malformed stamp: stale
            token = document.get("token") or None
        elif isinstance(document, int):
            pid = document  # legacy bare-pid stamp (pre-token lockers)
        else:
            return None, True  # torn/garbage JSON: stale
        if not _pid_alive(pid):
            return pid, True
        # A live process holds that pid — but is it the same incarnation?
        # Steal only when both recorded and current tokens are known and
        # disagree; an unknown token on either side means "cannot tell",
        # which must read as held.
        current = _pid_start_token(pid)
        if token is not None and current is not None and token != current:
            return pid, True
        return pid, False

    def release(self) -> None:
        if not self._acquired:
            return
        self._acquired = False
        try:
            os.unlink(self._path)
        except OSError:  # pragma: no cover - filesystem dependent
            pass


class StoreBackend(abc.ABC):
    """The persistence contract: a namespaced JSON document store."""

    def __init__(self) -> None:
        self._closed = False

    @abc.abstractmethod
    def put(self, kind: str, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``(kind, key)``, overwriting any previous value."""

    @abc.abstractmethod
    def get(self, kind: str, key: str) -> Dict[str, Any]:
        """Load the payload stored under ``(kind, key)``.

        Raises :class:`StoreError` when the object does not exist.
        """

    @abc.abstractmethod
    def contains(self, kind: str, key: str) -> bool:
        """Whether an object is stored under ``(kind, key)``."""

    @abc.abstractmethod
    def keys(self, kind: str) -> List[str]:
        """All keys stored under ``kind``, sorted."""

    @abc.abstractmethod
    def kinds(self) -> List[str]:
        """All kinds with at least one stored object, sorted."""

    @abc.abstractmethod
    def delete(self, kind: str, key: str) -> None:
        """Remove one object; raises :class:`StoreError` when absent."""

    @abc.abstractmethod
    def size_bytes(self, kind: str, key: str) -> int:
        """Encoded size of one stored object, in bytes."""

    @abc.abstractmethod
    def location(self) -> str:
        """Human-readable description of where the data lives."""

    # -- lifecycle ---------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise StoreError(
                f"store {self.location()} is closed: reopen it before use"
            )

    def close(self) -> None:
        """Release any held resources; further operations raise :class:`StoreError`."""
        self._closed = True

    def __enter__(self) -> "StoreBackend":
        self._ensure_open()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # -- conveniences ------------------------------------------------------------

    def gc(self, dry_run: bool = False) -> "GcReport":
        """Collect content-addressed snapshots unreachable from any checkpoint.

        Delegates to :func:`repro.store.gc.collect_garbage`; see there for the
        reachability rules (retained checkpoints, delta chains and recorded
        domain heads all pin their snapshots).
        """
        from repro.store.gc import collect_garbage

        return collect_garbage(self, dry_run=dry_run)

    def __contains__(self, kind_key: object) -> bool:
        if not (isinstance(kind_key, tuple) and len(kind_key) == 2):
            raise StoreError("membership tests take a (kind, key) pair")
        kind, key = kind_key
        return self.contains(str(kind), str(key))


class InMemoryBackend(StoreBackend):
    """Objects live in a process-local dict (no durability)."""

    def __init__(self) -> None:
        super().__init__()
        self._objects: Dict[str, Dict[str, str]] = {}

    def put(self, kind: str, key: str, payload: Dict[str, Any]) -> None:
        self._ensure_open()
        _check_names(kind, key)
        try:
            encoded = json.dumps(payload, **_ENCODER)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"payload for {kind}/{key} is not JSON-compatible: {exc}")
        self._objects.setdefault(kind, {})[key] = encoded

    def get(self, kind: str, key: str) -> Dict[str, Any]:
        self._ensure_open()
        _check_names(kind, key)
        try:
            return json.loads(self._objects[kind][key])
        except KeyError:
            raise StoreError(f"no stored object {kind}/{key}") from None

    def contains(self, kind: str, key: str) -> bool:
        self._ensure_open()
        _check_names(kind, key)
        return key in self._objects.get(kind, {})

    def keys(self, kind: str) -> List[str]:
        self._ensure_open()
        return sorted(self._objects.get(kind, {}))

    def kinds(self) -> List[str]:
        self._ensure_open()
        return sorted(kind for kind, objects in self._objects.items() if objects)

    def delete(self, kind: str, key: str) -> None:
        self._ensure_open()
        _check_names(kind, key)
        try:
            del self._objects[kind][key]
        except KeyError:
            raise StoreError(f"no stored object {kind}/{key}") from None

    def size_bytes(self, kind: str, key: str) -> int:
        self._ensure_open()
        _check_names(kind, key)
        try:
            return len(self._objects[kind][key].encode("utf-8"))
        except KeyError:
            raise StoreError(f"no stored object {kind}/{key}") from None

    def location(self) -> str:
        return "memory"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        total = sum(len(objects) for objects in self._objects.values())
        return f"InMemoryBackend({total} objects)"


class JsonDirectoryBackend(StoreBackend):
    """One ``<root>/<kind>/<key>.json`` file per object.

    ``exclusive=True`` (the default) takes a ``.write.lock`` sidecar in the
    root directory; a second exclusive open of the same root then raises
    :class:`StoreError` while this backend is alive.  Read-only consumers
    (``open_readonly_session``) open with ``exclusive=False`` and coexist
    with one writer.
    """

    def __init__(self, root: Union[str, Path], exclusive: bool = True) -> None:
        super().__init__()
        self._root = Path(root)
        if self._root.exists() and not self._root.is_dir():
            raise StoreError(
                f"JSON store root {self._root} exists and is not a directory"
            )
        self._root.mkdir(parents=True, exist_ok=True)
        self._lock: Optional[_WriteLock] = None
        if exclusive:
            self._lock = _WriteLock(self._root / ".write.lock", str(self._root))
            self._lock.acquire()

    @property
    def root(self) -> Path:
        return self._root

    def close(self) -> None:
        if not self._closed and self._lock is not None:
            self._lock.release()
        super().close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass

    def _path(self, kind: str, key: str) -> Path:
        _check_names(kind, key)
        return self._root / kind / f"{key}.json"

    def put(self, kind: str, key: str, payload: Dict[str, Any]) -> None:
        self._ensure_open()
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        try:
            encoded = json.dumps(payload, **_ENCODER)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"payload for {kind}/{key} is not JSON-compatible: {exc}")
        # Atomic publish: the document is written to a uniquely named temp
        # file in the same directory, then renamed over the target.  Readers
        # (and the `*.json` key listing) never observe a half-written file —
        # a crash mid-write leaves only an orphaned `*.tmp` the next `put`
        # ignores, and the previously stored document stays intact.
        handle, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key}.", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as stream:
                stream.write(encoded)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def get(self, kind: str, key: str) -> Dict[str, Any]:
        self._ensure_open()
        path = self._path(kind, key)
        if not path.is_file():
            raise StoreError(f"no stored object {kind}/{key} under {self._root}")
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt stored object {kind}/{key}: {exc}") from exc

    def contains(self, kind: str, key: str) -> bool:
        self._ensure_open()
        return self._path(kind, key).is_file()

    def keys(self, kind: str) -> List[str]:
        self._ensure_open()
        directory = self._root / kind
        if not directory.is_dir():
            return []
        return sorted(path.stem for path in directory.glob("*.json"))

    def kinds(self) -> List[str]:
        self._ensure_open()
        return sorted(
            path.name
            for path in self._root.iterdir()
            if path.is_dir() and any(path.glob("*.json"))
        )

    def delete(self, kind: str, key: str) -> None:
        self._ensure_open()
        path = self._path(kind, key)
        if not path.is_file():
            raise StoreError(f"no stored object {kind}/{key} under {self._root}")
        path.unlink()

    def size_bytes(self, kind: str, key: str) -> int:
        self._ensure_open()
        path = self._path(kind, key)
        if not path.is_file():
            raise StoreError(f"no stored object {kind}/{key} under {self._root}")
        return path.stat().st_size

    def location(self) -> str:
        return str(self._root)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"JsonDirectoryBackend({self._root})"


class SqliteBackend(StoreBackend):
    """All objects in one SQLite file (table ``objects(kind, key, payload)``).

    ``exclusive=True`` (the default) takes a ``<path>.lock`` sidecar; a
    second exclusive open of the same file raises :class:`StoreError` while
    this backend is alive, instead of the two connections corrupting each
    other's writes.  Read-only consumers open with ``exclusive=False``.
    """

    def __init__(
        self,
        path: Union[str, Path],
        check_same_thread: bool = True,
        exclusive: bool = True,
    ) -> None:
        super().__init__()
        self._path = Path(path)
        if self._path.parent and not self._path.parent.exists():
            self._path.parent.mkdir(parents=True, exist_ok=True)
        self._lock: Optional[_WriteLock] = None
        if exclusive:
            self._lock = _WriteLock(
                Path(str(self._path) + ".lock"), str(self._path)
            )
            self._lock.acquire()
        try:
            # check_same_thread=False lets the read-only serving path touch
            # the connection from worker threads; every such caller must
            # serialize access itself (sqlite connections are not re-entrant).
            self._connection = sqlite3.connect(
                str(self._path), check_same_thread=check_same_thread
            )
        except sqlite3.Error as exc:  # pragma: no cover - filesystem dependent
            if self._lock is not None:
                self._lock.release()
            raise StoreError(f"cannot open SQLite store {self._path}: {exc}") from exc
        self._connection.execute(
            "CREATE TABLE IF NOT EXISTS objects ("
            " kind TEXT NOT NULL,"
            " key TEXT NOT NULL,"
            " payload TEXT NOT NULL,"
            " PRIMARY KEY (kind, key))"
        )
        self._connection.commit()

    @property
    def path(self) -> Path:
        return self._path

    def put(self, kind: str, key: str, payload: Dict[str, Any]) -> None:
        self._ensure_open()
        _check_names(kind, key)
        try:
            encoded = json.dumps(payload, **_ENCODER)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"payload for {kind}/{key} is not JSON-compatible: {exc}")
        with self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO objects (kind, key, payload) VALUES (?, ?, ?)",
                (kind, key, encoded),
            )

    def _fetch(self, kind: str, key: str) -> Optional[str]:
        self._ensure_open()
        _check_names(kind, key)
        row = self._connection.execute(
            "SELECT payload FROM objects WHERE kind = ? AND key = ?", (kind, key)
        ).fetchone()
        return None if row is None else row[0]

    def get(self, kind: str, key: str) -> Dict[str, Any]:
        encoded = self._fetch(kind, key)
        if encoded is None:
            raise StoreError(f"no stored object {kind}/{key} in {self._path}")
        try:
            return json.loads(encoded)
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt stored object {kind}/{key}: {exc}") from exc

    def contains(self, kind: str, key: str) -> bool:
        return self._fetch(kind, key) is not None

    def keys(self, kind: str) -> List[str]:
        self._ensure_open()
        rows = self._connection.execute(
            "SELECT key FROM objects WHERE kind = ? ORDER BY key", (kind,)
        ).fetchall()
        return [row[0] for row in rows]

    def kinds(self) -> List[str]:
        self._ensure_open()
        rows = self._connection.execute(
            "SELECT DISTINCT kind FROM objects ORDER BY kind"
        ).fetchall()
        return [row[0] for row in rows]

    def delete(self, kind: str, key: str) -> None:
        self._ensure_open()
        _check_names(kind, key)
        with self._connection:
            cursor = self._connection.execute(
                "DELETE FROM objects WHERE kind = ? AND key = ?", (kind, key)
            )
        if cursor.rowcount == 0:
            raise StoreError(f"no stored object {kind}/{key} in {self._path}")

    def size_bytes(self, kind: str, key: str) -> int:
        encoded = self._fetch(kind, key)
        if encoded is None:
            raise StoreError(f"no stored object {kind}/{key} in {self._path}")
        return len(encoded.encode("utf-8"))

    def location(self) -> str:
        return str(self._path)

    def close(self) -> None:
        if not self._closed:
            self._connection.close()
            if self._lock is not None:
                self._lock.release()
        super().close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            if hasattr(self, "_connection"):
                self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SqliteBackend({self._path})"


_SQLITE_SUFFIXES = {".sqlite", ".sqlite3", ".db"}


def open_store(
    target: Union[None, str, Path, StoreBackend],
    check_same_thread: bool = True,
    exclusive: bool = True,
) -> StoreBackend:
    """Open (or pass through) a store backend.

    ``None`` opens an in-memory store; a path with a ``.sqlite``/``.sqlite3``/
    ``.db`` suffix opens the single-file SQLite backend; any other path opens
    a JSON directory; an existing backend is returned unchanged.

    ``check_same_thread=False`` opens a SQLite backend whose connection may be
    used from threads other than the opening one (the caller must serialize
    access); other backends are thread-agnostic and ignore the flag.

    ``exclusive=True`` (the default) claims the path's write lock: a second
    exclusive open of the same path raises :class:`StoreError` while the
    first backend is alive.  Pass ``exclusive=False`` for read-only sharing
    (the read-only serving path does).  In-memory backends ignore the flag.
    """
    if target is None:
        return InMemoryBackend()
    if isinstance(target, StoreBackend):
        return target
    path = Path(target)
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        return SqliteBackend(
            path, check_same_thread=check_same_thread, exclusive=exclusive
        )
    return JsonDirectoryBackend(path, exclusive=exclusive)


def owns_backend(target: Union[None, str, Path, StoreBackend]) -> bool:
    """Whether :func:`open_store` on ``target`` would *create* a backend.

    Callers that open a store from a path are responsible for closing it;
    callers handed an already-open :class:`StoreBackend` must leave its
    lifecycle to whoever opened it.
    """
    return not isinstance(target, StoreBackend)
