"""``repro.store`` — pluggable persistence for summaries and whole sessions.

The paper's super-peers hold materialized summary hierarchies that outlive
any single query or churn event; this subsystem gives the reproduction the
matching persistence layer:

* **Backends** (:mod:`repro.store.backend`) — one tiny namespaced document
  contract, three implementations: in-memory, directory-of-JSON, SQLite
  single-file.  :func:`open_store` picks one from a path.
* **Snapshots** (:mod:`repro.store.snapshots`) — content-addressed storage of
  :class:`~repro.saintetiq.hierarchy.SummaryHierarchy` objects; identical
  hierarchies share one stored object across peers, checkpoints and runs.
* **Checkpoints** (:mod:`repro.store.checkpoint`) — capture/restore of a full
  :class:`~repro.core.session.NetworkSession`; the restored session's query
  routing, staleness and traffic output is byte-identical to the original.
* **Warm-start cache** (:mod:`repro.store.cache`) — experiment drivers reuse
  built sessions across sweeps instead of reconstructing them.

The high-level entry points live on the session façade:
``NetworkSession.checkpoint(target)`` and
``SystemBuilder.from_checkpoint(target)``.
"""

from repro.store.backend import (
    InMemoryBackend,
    JsonDirectoryBackend,
    SqliteBackend,
    StoreBackend,
    open_store,
)
from repro.store.cache import SessionCache
from repro.store.checkpoint import (
    CHECKPOINT_KIND,
    DEFAULT_CHECKPOINT_NAME,
    list_checkpoints,
    restore_session,
    save_session,
)
from repro.store.snapshots import SNAPSHOT_KIND, SnapshotStore

__all__ = [
    "StoreBackend",
    "InMemoryBackend",
    "JsonDirectoryBackend",
    "SqliteBackend",
    "open_store",
    "SnapshotStore",
    "SNAPSHOT_KIND",
    "SessionCache",
    "save_session",
    "restore_session",
    "list_checkpoints",
    "CHECKPOINT_KIND",
    "DEFAULT_CHECKPOINT_NAME",
]
