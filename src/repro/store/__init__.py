"""``repro.store`` — pluggable persistence for summaries and whole sessions.

The paper's super-peers hold materialized summary hierarchies that outlive
any single query or churn event; this subsystem gives the reproduction the
matching persistence layer:

* **Backends** (:mod:`repro.store.backend`) — one tiny namespaced document
  contract, three implementations: in-memory, directory-of-JSON, SQLite
  single-file.  :func:`open_store` picks one from a path.
* **Snapshots** (:mod:`repro.store.snapshots`) — content-addressed storage of
  :class:`~repro.saintetiq.hierarchy.SummaryHierarchy` objects; identical
  hierarchies share one stored object across peers, checkpoints and runs.
* **Checkpoints** (:mod:`repro.store.checkpoint`) — capture/restore of a full
  :class:`~repro.core.session.NetworkSession`; the restored session's query
  routing, staleness and traffic output is byte-identical to the original.
  ``save_session(..., base=...)`` stores *delta* checkpoints — structural
  patches (:mod:`repro.store.deltas`) against an earlier checkpoint — that
  restore transparently through their base chain; ``compact_checkpoint``
  folds a long chain back into a fresh full checkpoint.
* **Read-only serving** (:func:`open_readonly_session`) — open a checkpoint
  as one shared :class:`~repro.core.session.ReadOnlyNetworkSession` with
  lazy, content-addressed hierarchy loading (:mod:`repro.store.lazy`); this
  is the session mode behind the ``repro serve`` daemon.
* **Garbage collection** (:mod:`repro.store.gc`) — ``collect_garbage`` (also
  reachable as ``backend.gc()``) reclaims snapshots no retained checkpoint,
  delta chain or domain head references.
* **Domain heads** (:class:`~repro.store.snapshots.DomainHeadArchive`) — the
  per-domain summary state the maintenance engine archives at each
  reconciliation, enabling store-backed summary-peer cold starts.
* **Warm-start cache** (:mod:`repro.store.cache`) — experiment drivers reuse
  built sessions across sweeps instead of reconstructing them.

The high-level entry points live on the session façade:
``NetworkSession.checkpoint(target, base=...)``,
``SystemBuilder.from_checkpoint(target)``,
``NetworkSession.attach_store(target)`` / ``cold_start_domain(sp_id)``.
"""

from repro.store.backend import (
    InMemoryBackend,
    JsonDirectoryBackend,
    SqliteBackend,
    StoreBackend,
    open_store,
)
from repro.store.cache import SessionCache
from repro.store.checkpoint import (
    CHECKPOINT_KIND,
    DEFAULT_CHECKPOINT_NAME,
    checkpoint_base_chain,
    compact_checkpoint,
    compact_checkpoints,
    list_checkpoints,
    open_readonly_session,
    restore_session,
    save_session,
)
from repro.store.deltas import apply_patch, diff_documents
from repro.store.gc import GcReport, collect_garbage, snapshot_refcounts
from repro.store.lazy import HierarchySource
from repro.store.snapshots import (
    DOMAIN_HEAD_KIND,
    SNAPSHOT_KIND,
    DomainHeadArchive,
    SnapshotStore,
)

__all__ = [
    "StoreBackend",
    "InMemoryBackend",
    "JsonDirectoryBackend",
    "SqliteBackend",
    "open_store",
    "SnapshotStore",
    "SNAPSHOT_KIND",
    "DomainHeadArchive",
    "DOMAIN_HEAD_KIND",
    "SessionCache",
    "save_session",
    "restore_session",
    "open_readonly_session",
    "HierarchySource",
    "list_checkpoints",
    "checkpoint_base_chain",
    "compact_checkpoint",
    "compact_checkpoints",
    "CHECKPOINT_KIND",
    "DEFAULT_CHECKPOINT_NAME",
    "diff_documents",
    "apply_patch",
    "collect_garbage",
    "snapshot_refcounts",
    "GcReport",
]
