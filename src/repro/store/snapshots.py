"""Content-addressed snapshots of summary hierarchies.

A snapshot is the canonical encoding of a :class:`SummaryHierarchy`, filed
under its SHA-256 content hash.  Addressing by content gives deduplication
for free: identical hierarchies — the same local summary held by a peer and
shipped to its summary peer, or the same global summary reached by two
simulation runs — occupy exactly one stored object, however many sessions or
checkpoints reference them.  This mirrors how Υ-DB treats managed synopses as
first-class stored objects rather than transient in-memory state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.exceptions import StoreError
from repro.fuzzy.background import BackgroundKnowledge
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.serialization import (
    content_hash,
    hierarchy_from_dict,
    hierarchy_to_dict,
)
from repro.store.backend import StoreBackend, open_store

#: The namespace snapshots are filed under in any backend.
SNAPSHOT_KIND = "snapshot"
#: The namespace per-domain head records are filed under (see
#: :class:`DomainHeadArchive`).
DOMAIN_HEAD_KIND = "domain-head"


class SnapshotStore:
    """Content-addressed hierarchy storage over any :class:`StoreBackend`."""

    def __init__(self, backend: Union[None, str, StoreBackend] = None) -> None:
        self._backend = open_store(backend)
        #: Metrics+trace hook; None keeps every operation uninstrumented.
        self.observability = None

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    # -- writing ------------------------------------------------------------------

    def put_hierarchy(self, hierarchy: SummaryHierarchy) -> str:
        """Store a hierarchy; returns its content hash.

        Re-storing an identical hierarchy is a no-op (dedup by address), so
        callers can snapshot aggressively — per peer, per checkpoint, per
        sweep iteration — and pay for each distinct hierarchy once.
        """
        payload = hierarchy_to_dict(hierarchy)
        digest = content_hash(payload)
        if not self._backend.contains(SNAPSHOT_KIND, digest):
            self._backend.put(SNAPSHOT_KIND, digest, payload)
            if self.observability is not None:
                self.observability.inc("repro_store_puts_total", kind=SNAPSHOT_KIND)
        elif self.observability is not None:
            self.observability.inc("repro_store_dedup_hits_total", kind=SNAPSHOT_KIND)
        return digest

    def put_payload(self, payload: Dict[str, object]) -> str:
        """Store an already-encoded hierarchy payload (checkpoint internals)."""
        digest = content_hash(payload)
        if not self._backend.contains(SNAPSHOT_KIND, digest):
            self._backend.put(SNAPSHOT_KIND, digest, payload)
            if self.observability is not None:
                self.observability.inc("repro_store_puts_total", kind=SNAPSHOT_KIND)
        elif self.observability is not None:
            self.observability.inc("repro_store_dedup_hits_total", kind=SNAPSHOT_KIND)
        return digest

    # -- reading ------------------------------------------------------------------

    def get_hierarchy(
        self, digest: str, background: BackgroundKnowledge
    ) -> SummaryHierarchy:
        """Rehydrate the hierarchy stored under ``digest``.

        The caller supplies the (common) background knowledge, exactly as for
        the wire format; the restored hierarchy is byte-identical to the
        stored one (its re-encoding hashes back to ``digest``).
        """
        payload = self._backend.get(SNAPSHOT_KIND, digest)
        hierarchy = hierarchy_from_dict(payload, background)
        if self.observability is not None:
            self.observability.inc("repro_store_gets_total", kind=SNAPSHOT_KIND)
        return hierarchy

    def get_payload(self, digest: str) -> Dict[str, object]:
        if self.observability is not None:
            self.observability.inc("repro_store_gets_total", kind=SNAPSHOT_KIND)
        return self._backend.get(SNAPSHOT_KIND, digest)

    def contains(self, digest: str) -> bool:
        return self._backend.contains(SNAPSHOT_KIND, digest)

    def delete(self, digest: str) -> None:
        """Remove one snapshot (the GC's reclamation primitive)."""
        self._backend.delete(SNAPSHOT_KIND, digest)

    def hashes(self) -> List[str]:
        """All stored snapshot hashes, sorted."""
        return self._backend.keys(SNAPSHOT_KIND)

    def verify(self, digest: str) -> None:
        """Check that the stored payload still hashes to its address."""
        actual = content_hash(self._backend.get(SNAPSHOT_KIND, digest))
        if actual != digest:
            raise StoreError(
                f"snapshot {digest} is corrupt: stored payload hashes to {actual}"
            )

    def size_bytes(self, digest: Optional[str] = None) -> int:
        """Encoded size of one snapshot, or of every stored snapshot."""
        if digest is not None:
            return self._backend.size_bytes(SNAPSHOT_KIND, digest)
        return sum(
            self._backend.size_bytes(SNAPSHOT_KIND, stored)
            for stored in self.hashes()
        )

    def __len__(self) -> int:
        return len(self.hashes())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SnapshotStore({len(self)} snapshots @ {self._backend.location()})"


class DomainHeadArchive:
    """Last-known summary state of each domain, keyed by summary peer.

    The maintenance engine records a *head* whenever a reconciliation installs
    a new global summary: the snapshot hash of the installed summary, the
    snapshot hash of every participant's local summary at that moment, and
    the reconciliation time.  A summary peer that restarts later *cold-starts*
    from its head — it installs the archived global summary by hash lookup
    and re-merges only the partners that changed since — instead of pulling
    every partner's local summary through a full ring reconciliation (see
    :meth:`repro.core.maintenance.MaintenanceEngine.cold_start`).

    Heads are GC roots: every snapshot a head references stays live (see
    :mod:`repro.store.gc`).
    """

    def __init__(self, backend: Union[None, str, StoreBackend] = None) -> None:
        self._backend = open_store(backend)

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    def record_head(
        self,
        summary_peer_id: str,
        global_summary_hash: str,
        partner_hashes: List[List[str]],
        time: float,
    ) -> None:
        """File the domain's post-reconciliation state under its summary peer.

        ``partner_hashes`` is an *ordered* ``[[peer_id, snapshot_hash], ...]``
        list — merge order is part of the head, because merging the same
        local summaries in a different order can produce a different (if
        equivalent) hierarchy and the cold-start fast path relies on exact
        reproducibility.
        """
        self._backend.put(
            DOMAIN_HEAD_KIND,
            summary_peer_id,
            {
                "global_summary": global_summary_hash,
                "partners": [list(pair) for pair in partner_hashes],
                "time": float(time),
            },
        )

    def head(self, summary_peer_id: str) -> Optional[Dict[str, object]]:
        """The recorded head of one domain, or ``None`` when never recorded."""
        if not self._backend.contains(DOMAIN_HEAD_KIND, summary_peer_id):
            return None
        return self._backend.get(DOMAIN_HEAD_KIND, summary_peer_id)

    def summary_peer_ids(self) -> List[str]:
        """Summary peers with a recorded head, sorted."""
        return self._backend.keys(DOMAIN_HEAD_KIND)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"DomainHeadArchive({len(self.summary_peer_ids())} heads @ "
            f"{self._backend.location()})"
        )
