"""Snapshot garbage collection: reclaim unreachable content-addressed objects.

Content addressing makes writes cheap — re-storing an identical hierarchy is
a no-op — but it also means nothing ever *deletes* a snapshot: overwriting a
checkpoint, re-running a sweep with a new seed, or letting a session cache
churn all leave dead hierarchies behind.  This module implements the matching
collector.

Reachability is computed from scratch on every collection (no persistent
refcounts to corrupt): the roots are

* every retained checkpoint — delta checkpoints are resolved through their
  whole base chain first, so a delta pins the snapshots of every checkpoint
  it builds on;
* every recorded domain head (:class:`~repro.store.snapshots.DomainHeadArchive`)
  — both its global summary and the archived per-partner local summaries,
  which the cold-start path rehydrates by hash.

A snapshot referenced by no root is garbage.  :func:`collect_garbage` deletes
it (or only reports it with ``dry_run=True``); :func:`snapshot_refcounts`
exposes the per-hash reference counts for diagnostics and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Union

from repro.store.backend import StoreBackend, open_store, owns_backend
from repro.store.snapshots import DOMAIN_HEAD_KIND, SNAPSHOT_KIND


@dataclass
class GcReport:
    """What one collection saw and did."""

    location: str
    dry_run: bool
    #: Snapshots present before the collection.
    scanned: int = 0
    #: Snapshots reachable from at least one root (never deleted).
    live: int = 0
    #: Hashes that were (or, under ``dry_run``, would be) deleted, sorted.
    deleted: List[str] = field(default_factory=list)
    #: Encoded bytes those deletions reclaim.
    reclaimed_bytes: int = 0
    #: References per snapshot hash, summed over every root document.
    refcounts: Dict[str, int] = field(default_factory=dict)

    @property
    def deleted_count(self) -> int:
        return len(self.deleted)


def _checkpoint_snapshot_hashes(payload: Dict[str, Any]) -> List[str]:
    """Every snapshot hash a resolved (full) checkpoint payload references."""
    hashes: List[str] = []
    for domain in payload.get("domains", []):
        digest = domain.get("global_summary")
        if digest is not None:
            hashes.append(digest)
    for _peer_id, service in payload.get("services", []):
        hashes.append(service["summary"])
    return hashes


def _head_snapshot_hashes(head: Dict[str, Any]) -> List[str]:
    hashes = [head["global_summary"]]
    hashes.extend(digest for _peer_id, digest in head.get("partners", []))
    return hashes


def snapshot_refcounts(
    target: Union[None, str, StoreBackend]
) -> Dict[str, int]:
    """Reference counts over stored snapshots, from every root document.

    Keys are snapshot hashes that exist in the store; hashes referenced by a
    root but missing from the store are *not* invented (a dangling reference
    is a store-integrity problem, not a refcount of a stored object).  Stored
    snapshots nothing references count zero.
    """
    from repro.store.checkpoint import CHECKPOINT_KIND, resolve_checkpoint_payload

    backend = open_store(target)
    try:
        counts: Dict[str, int] = {digest: 0 for digest in backend.keys(SNAPSHOT_KIND)}
        # One shared resolution cache: every delta-chain link is replayed at
        # most once per collection, however many checkpoints build on it.
        resolved_cache: Dict[str, Dict[str, Any]] = {}
        for name in backend.keys(CHECKPOINT_KIND):
            payload = resolve_checkpoint_payload(backend, name, _cache=resolved_cache)
            for digest in _checkpoint_snapshot_hashes(payload):
                if digest in counts:
                    counts[digest] += 1
        for sp_id in backend.keys(DOMAIN_HEAD_KIND):
            for digest in _head_snapshot_hashes(backend.get(DOMAIN_HEAD_KIND, sp_id)):
                if digest in counts:
                    counts[digest] += 1
        return counts
    finally:
        if owns_backend(target):
            backend.close()


def collect_garbage(
    target: Union[None, str, StoreBackend],
    dry_run: bool = False,
    observability: Any = None,
) -> GcReport:
    """Delete every snapshot unreachable from a checkpoint or domain head.

    Anything reachable from a retained checkpoint — including through a delta
    chain — or from a recorded domain head is never touched.  With
    ``dry_run=True`` the report lists what a collection would reclaim without
    deleting anything.  ``observability`` (a :class:`repro.obs.Observability`)
    records the collection's counters without changing its outcome.
    """
    backend = open_store(target)
    close_after = owns_backend(target)
    try:
        counts = snapshot_refcounts(backend)
        report = GcReport(location=backend.location(), dry_run=dry_run)
        report.scanned = len(counts)
        report.refcounts = counts
        for digest in sorted(counts):
            if counts[digest] > 0:
                report.live += 1
                continue
            report.reclaimed_bytes += backend.size_bytes(SNAPSHOT_KIND, digest)
            report.deleted.append(digest)
            if not dry_run:
                backend.delete(SNAPSHOT_KIND, digest)
        if observability is not None:
            observability.inc("repro_store_gc_runs_total")
            observability.inc("repro_store_gc_scanned_total", report.scanned)
            if not dry_run and report.deleted:
                observability.inc("repro_store_gc_removed_total", report.deleted_count)
                observability.inc(
                    "repro_store_gc_reclaimed_bytes_total", report.reclaimed_bytes
                )
        return report
    finally:
        if close_after:
            backend.close()
