"""Structural JSON diff/patch: the encoding of delta checkpoints.

The paper's maintenance protocol is incremental — peers push summary *deltas*,
not full rebuilds — and checkpoints follow suit: a delta checkpoint persists
only what changed since a *base* checkpoint.  Because summary hierarchies are
already content-addressed (identical snapshots are stored once, see
:mod:`repro.store.snapshots`), the remaining redundancy between two nearby
checkpoints lives in the checkpoint *document* itself: the overlay adjacency,
the per-peer states, the protocol configuration and most domain entries are
unchanged between two nearby simulation times, while the RNG state, the
message counters and the pending event queue differ.

:func:`diff_documents` computes a structural patch between two JSON-compatible
documents and :func:`apply_patch` replays it; the round trip is exact::

    apply_patch(base, diff_documents(base, new)) == new

Patch encoding (one node per changed subtree):

* ``{"$set": value}`` — replace the subtree wholesale (type changes,
  different-length lists, scalars);
* ``{"$dict": {key: patch, ...}, "$drop": [removed keys]}`` — merge into a
  dict: patch changed keys, drop removed ones, keep the rest;
* ``{"$list": [[index, patch], ...]}`` — sparse per-index patches into a
  same-length list (the common case for the 2000-entry overlay peer list
  where a handful of peers flipped online state);
* ``{"$splice": [[start, delete_count, [items...]], ...]}`` — sequence edits
  into a length-changed list, aligned with :class:`difflib.SequenceMatcher`
  (the pending-event queue between two checkpoint times is mostly the same
  events with a consumed prefix and a few insertions; the reconciliation
  history is append-only).

Unchanged subtrees produce no entry at all, which is where the size win
comes from.
"""

from __future__ import annotations

import difflib
import json
from typing import Any, Dict, List

from repro.exceptions import StoreError

#: Patches never pay for a sparse list encoding when more than this fraction
#: of the entries changed — a wholesale ``$set`` is smaller and simpler.
_SPARSE_LIST_THRESHOLD = 0.75


def canonical_roundtrip(payload: Any) -> Any:
    """Normalise a payload to its stored (JSON round-tripped) form.

    Diffing itself never needs this — :func:`diff_documents` compares nodes
    by their canonical *text*, so an in-memory payload diffs correctly
    against a parsed stored document (a tuple that encodes like an equal
    stored list simply produces a ``$set`` whose stored form is that list).
    Tests use it to phrase exact stored-form expectations.
    """
    return json.loads(json.dumps(payload, sort_keys=True, separators=(",", ":")))


def diff_documents(base: Any, new: Any) -> Dict[str, Any]:
    """A patch turning ``base`` into ``new`` (see module docstring).

    Both documents must already be in stored form (plain dict/list/scalar
    trees as returned by a backend); run :func:`canonical_roundtrip` first
    when diffing freshly captured payloads.
    """
    if isinstance(base, dict) and isinstance(new, dict):
        changed: Dict[str, Any] = {}
        dropped: List[str] = []
        for key in base:
            if key not in new:
                dropped.append(key)
        for key, value in new.items():
            if key not in base:
                changed[key] = {"$set": value}
            elif not _equal(base[key], value):
                changed[key] = diff_documents(base[key], value)
        patch: Dict[str, Any] = {"$dict": changed}
        if dropped:
            patch["$drop"] = sorted(dropped)
        return patch
    if isinstance(base, list) and isinstance(new, list):
        if len(base) == len(new):
            edits = [
                [index, diff_documents(base[index], new[index])]
                for index in range(len(new))
                if not _equal(base[index], new[index])
            ]
            if len(edits) <= _SPARSE_LIST_THRESHOLD * len(new):
                return {"$list": edits}
        else:
            patch = _splice_patch(base, new)
            if patch is not None:
                return patch
    return {"$set": new}


def _splice_patch(base: List[Any], new: List[Any]) -> Dict[str, Any] | None:
    """Sequence-align two lists; ``None`` when a wholesale ``$set`` is cheaper.

    Common prefix/suffix runs are trimmed first (append-only lists like the
    reconciliation history then need no alignment at all); only the differing
    middle goes through :class:`difflib.SequenceMatcher`.  Alignment keys are
    the canonical JSON encodings of the items, so matcher equality is exactly
    stored-text equality (1 vs 1.0 and True vs 1 stay distinct).
    """
    prefix = 0
    limit = min(len(base), len(new))
    while prefix < limit and _equal(base[prefix], new[prefix]):
        prefix += 1
    suffix = 0
    while (
        suffix < limit - prefix
        and _equal(base[len(base) - 1 - suffix], new[len(new) - 1 - suffix])
    ):
        suffix += 1
    base_middle = base[prefix : len(base) - suffix]
    new_middle = new[prefix : len(new) - suffix]

    matcher = difflib.SequenceMatcher(
        a=[_encode(item) for item in base_middle],
        b=[_encode(item) for item in new_middle],
        autojunk=False,
    )
    operations: List[List[Any]] = []
    inserted = 0
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            continue
        items = new_middle[j1:j2]
        inserted += len(items)
        operations.append([prefix + i1, i2 - i1, items])
    if new and inserted > _SPARSE_LIST_THRESHOLD * len(new):
        return None
    return {"$splice": operations}


#: A single reusable encoder: ``json.dumps`` pays an encoder construction per
#: call, and the diff encodes tens of thousands of small nodes.
_CANONICAL_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))
_encode = _CANONICAL_ENCODER.encode


def _equal(left: Any, right: Any) -> bool:
    """Stored-form equality: the canonical JSON texts must match exactly.

    Python's ``==`` is a fast C-level pre-check but too lax for stored text
    (``1 == True`` and ``1 == 1.0`` yet they serialize differently), so an
    ``==``-equal pair is confirmed against its canonical encoding.
    """
    if left is right:
        return True
    if left != right:
        return False
    return _encode(left) == _encode(right)


def apply_patch(base: Any, patch: Dict[str, Any]) -> Any:
    """Replay a :func:`diff_documents` patch onto ``base``.

    ``base`` is not mutated; shared unchanged subtrees are referenced, not
    copied (callers treat resolved checkpoint payloads as read-only).
    """
    if not isinstance(patch, dict):
        raise StoreError(f"malformed checkpoint patch node: {patch!r}")
    if "$set" in patch:
        return patch["$set"]
    if "$dict" in patch:
        if not isinstance(base, dict):
            raise StoreError(
                "checkpoint patch expects an object but the base holds "
                f"{type(base).__name__}"
            )
        result = dict(base)
        for key in patch.get("$drop", []):
            result.pop(key, None)
        for key, child in patch["$dict"].items():
            result[key] = apply_patch(base.get(key), child)
        return result
    if "$list" in patch:
        if not isinstance(base, list):
            raise StoreError(
                "checkpoint patch expects an array but the base holds "
                f"{type(base).__name__}"
            )
        result = list(base)
        for entry in patch["$list"]:
            try:
                index, child = entry
                result[index] = apply_patch(base[index], child)
            except (ValueError, TypeError, IndexError) as exc:
                raise StoreError(f"malformed list patch entry {entry!r}") from exc
        return result
    if "$splice" in patch:
        if not isinstance(base, list):
            raise StoreError(
                "checkpoint patch expects an array but the base holds "
                f"{type(base).__name__}"
            )
        result = list(base)
        # Operations come in ascending, non-overlapping base order; applying
        # them back-to-front keeps earlier offsets valid.
        for entry in reversed(patch["$splice"]):
            try:
                start, delete_count, items = entry
                result[start : start + delete_count] = items
            except (ValueError, TypeError) as exc:
                raise StoreError(f"malformed splice patch entry {entry!r}") from exc
        return result
    raise StoreError(
        f"unknown checkpoint patch operation: {sorted(patch)!r} "
        "(expected $set, $dict, $list or $splice)"
    )
