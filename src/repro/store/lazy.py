"""Lazy, content-addressed hierarchy loading for read-only sessions.

A restored session normally materializes every peer's summary hierarchy up
front, which makes opening a large checkpoint pay for peers a query workload
may never touch.  :class:`HierarchySource` defers that work: domains and
summary services are given loader callables bound to a snapshot hash, and the
hierarchy is rehydrated from the :class:`~repro.store.snapshots.SnapshotStore`
only on first touch.

Because snapshots are content-addressed, two peers whose hierarchies hash to
the same digest share one materialized object.  That sharing is only safe for
sessions that never mutate hierarchies, which is why lazy loading is reserved
for the read-only open mode (see :func:`repro.store.checkpoint.open_readonly_session`).

The source keeps an LRU keyed by snapshot hash so a long-running server's
working set stays bounded; consumers (``Domain``/``LocalSummaryService``)
hold strong references to whatever they have already materialized, so
eviction only bounds the *source's* dedup window, never invalidates a
hierarchy in use.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.saintetiq.hierarchy import SummaryHierarchy
    from repro.saintetiq.knowledge import BackgroundKnowledge
    from repro.store.snapshots import SnapshotStore

DEFAULT_CACHE_SIZE = 256


class HierarchySource:
    """Pull summary hierarchies from a snapshot store on first touch.

    Thread-safe: a read-only server has many worker threads racing to
    materialize the same digest; the lock guarantees one fetch per digest
    (while cached) and consistent counters.
    """

    def __init__(
        self,
        snapshots: "SnapshotStore",
        background: Optional["BackgroundKnowledge"],
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        self._snapshots = snapshots
        self._background = background
        self._cache_size = int(cache_size)
        self._cache: "OrderedDict[str, SummaryHierarchy]" = OrderedDict()
        self._lock = threading.Lock()
        self._fetches = 0
        self._hits = 0
        self._evictions = 0
        #: Metrics+trace hook; None keeps ``get`` on the uninstrumented path.
        self.observability = None

    # -- observability -----------------------------------------------------

    @property
    def fetches(self) -> int:
        """Number of hierarchies rehydrated from the snapshot store."""
        return self._fetches

    @property
    def hits(self) -> int:
        """Number of ``get`` calls served from the LRU without a fetch."""
        return self._hits

    @property
    def evictions(self) -> int:
        """Number of hierarchies the LRU has pushed out to stay bounded."""
        return self._evictions

    @property
    def cached(self) -> int:
        """Number of hierarchies currently held in the LRU."""
        return len(self._cache)

    @property
    def cache_size(self) -> int:
        return self._cache_size

    def stats_payload(self) -> dict:
        return {
            "fetches": self.fetches,
            "hits": self.hits,
            "evictions": self.evictions,
            "cached": self.cached,
            "cache_size": self.cache_size,
        }

    # -- loading -----------------------------------------------------------

    def get(self, digest: str) -> "SummaryHierarchy":
        """Return the hierarchy for ``digest``, fetching it on first touch."""
        obs = self.observability
        with self._lock:
            try:
                hierarchy = self._cache[digest]
            except KeyError:
                pass
            else:
                self._cache.move_to_end(digest)
                self._hits += 1
                if obs is not None:
                    obs.inc("repro_lazy_hits_total")
                return hierarchy
            hierarchy = self._snapshots.get_hierarchy(digest, self._background)
            self._fetches += 1
            if obs is not None:
                obs.inc("repro_lazy_fetches_total")
            self._cache[digest] = hierarchy
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
                self._evictions += 1
                if obs is not None:
                    obs.inc("repro_lazy_evictions_total")
            return hierarchy

    def install_observability(self, obs) -> None:
        """Wire the hook through this source and its snapshot store."""
        self.observability = obs
        self._snapshots.observability = obs

    def loader(self, digest: str) -> Callable[[], "SummaryHierarchy"]:
        """A zero-argument callable materializing ``digest`` on invocation."""
        return lambda: self.get(digest)
