"""Warm-start session cache: skip construction on repeated sweeps.

Building a session — generating the topology, electing summary peers, running
the construction protocol, scheduling churn — dominates the wall-clock of
repeated experiment sweeps.  A :class:`SessionCache` checkpoints each freshly
built session under a key derived from its full parameter set; the next run
with the same parameters restores the checkpoint instead of rebuilding.
Because restore is byte-identical (see :mod:`repro.store.checkpoint`), warm
and cold sweeps produce exactly the same figures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple, Union

from repro.fuzzy.background import BackgroundKnowledge
from repro.saintetiq.serialization import content_hash
from repro.store.backend import StoreBackend, open_store, owns_backend
from repro.store.checkpoint import CHECKPOINT_KIND, restore_session, save_session

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.session import NetworkSession
    from repro.store.gc import GcReport


class SessionCache:
    """Content-keyed cache of built sessions over any store backend.

    A cache opened from a path owns its backend: ``close()`` (or leaving a
    ``with SessionCache(...) as cache:`` block) releases it.  A cache wrapped
    around an already-open backend leaves that backend's lifecycle to whoever
    opened it.
    """

    def __init__(
        self,
        target: Union[None, str, StoreBackend],
        compact_every: Optional[int] = None,
    ) -> None:
        self._backend = open_store(target)
        self._owns_backend = owns_backend(target)
        self._hits = 0
        self._misses = 0
        if compact_every is not None and compact_every <= 0:
            raise ValueError("compact_every must be positive (or None)")
        #: Optional cadence: every ``compact_every``-th save also folds any
        #: delta-checkpoint chains living in the backend into full
        #: checkpoints (relevant when callers stack ``base=...`` deltas into
        #: the same store the cache uses).
        self._compact_every = compact_every
        self._saves_since_compaction = 0

    @property
    def backend(self) -> StoreBackend:
        return self._backend

    def close(self) -> None:
        """Release the backend if this cache opened it."""
        if self._owns_backend:
            self._backend.close()

    def __enter__(self) -> "SessionCache":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def gc(self, dry_run: bool = False) -> "GcReport":
        """Reclaim snapshots no cached checkpoint references any more."""
        from repro.store.gc import collect_garbage

        return collect_garbage(self._backend, dry_run=dry_run)

    def compact(self) -> list:
        """Fold every delta-checkpoint chain in the backend into full form.

        Returns the names that were compacted (see
        :func:`repro.store.checkpoint.compact_checkpoints`).
        """
        from repro.store.checkpoint import compact_checkpoints

        self._saves_since_compaction = 0
        return compact_checkpoints(self._backend)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @staticmethod
    def key_for(parameters: Dict[str, Any]) -> str:
        """A deterministic cache key for a JSON-compatible parameter set."""
        return "warm-" + content_hash(parameters)[:32]

    def get_or_build(
        self,
        parameters: Dict[str, Any],
        factory: Callable[[], "NetworkSession"],
        background: Optional[BackgroundKnowledge] = None,
    ) -> Tuple["NetworkSession", bool]:
        """Restore the session cached under ``parameters``, or build and cache it.

        Returns ``(session, warm)`` where ``warm`` says whether construction
        was skipped.  The factory must be deterministic in ``parameters`` —
        the cache trusts the key, it does not fingerprint the session.
        """
        key = self.key_for(parameters)
        if self._backend.contains(CHECKPOINT_KIND, key):
            self._hits += 1
            return restore_session(self._backend, key, background=background), True
        self._misses += 1
        session = factory()
        save_session(session, self._backend, key)
        if self._compact_every is not None:
            self._saves_since_compaction += 1
            if self._saves_since_compaction >= self._compact_every:
                self.compact()
        # Hand out a restored copy, not the freshly built session: both paths
        # then return an identical object graph (and the first run doubles as
        # a roundtrip check of its own checkpoint).
        return restore_session(self._backend, key, background=background), False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SessionCache({self._backend.location()}, "
            f"hits={self._hits}, misses={self._misses})"
        )
