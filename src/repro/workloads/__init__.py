"""Workload and scenario generation for the experiments.

* :mod:`repro.workloads.patients` — per-peer medical databases matching the
  paper's running example,
* :mod:`repro.workloads.queries` — selection-query workloads over those
  databases,
* :mod:`repro.workloads.scenarios` — the simulation scenarios of Table 3
  (network sizes, query rates, churn model, α sweep),
* :mod:`repro.workloads.registry` — the named-scenario registry the drivers,
  examples and CLI build their sessions from.
"""

from repro.workloads.patients import MedicalWorkload, build_peer_databases
from repro.workloads.queries import QueryWorkload, paper_example_query
from repro.workloads.registry import ScenarioRegistry, default_registry
from repro.workloads.scenarios import SimulationScenario, table3_parameters

__all__ = [
    "MedicalWorkload",
    "build_peer_databases",
    "QueryWorkload",
    "paper_example_query",
    "SimulationScenario",
    "table3_parameters",
    "ScenarioRegistry",
    "default_registry",
]
