"""Simulation scenarios: the parameter space of Table 3.

A :class:`SimulationScenario` bundles every knob of one simulation run —
network size, topology, churn model, query workload, protocol configuration —
and turns it into a ready-to-run
:class:`~repro.core.session.NetworkSession` (planned-content mode) through
the declarative :class:`~repro.core.session.SystemBuilder`:
:meth:`SimulationScenario.session` for the multi-domain network,
:meth:`SimulationScenario.single_domain_session` for the one-domain setting
of Figures 4–6.  The legacy ``build_system`` / ``build_single_domain_system``
methods remain as deprecated shims returning the bare engine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import ProtocolConfig
from repro.core.protocol import SummaryManagementSystem
from repro.core.session import NetworkSession, SystemBuilder
from repro.exceptions import ConfigurationError
from repro.network.churn import LifetimeDistribution
from repro.network.faults import FaultPlan
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig


def table3_parameters() -> Dict[str, object]:
    """The simulation parameters of the paper's Table 3, as a plain dict."""
    return {
        "local_summary_lifetime": {
            "distribution": "skewed (log-normal)",
            "mean_seconds": 3 * 3600.0,
            "median_seconds": 3600.0,
        },
        "number_of_peers": (16, 5000),
        "number_of_queries": 200,
        "matching_nodes_fraction": 0.10,
        "freshness_threshold_alpha": (0.1, 0.8),
        "query_rate_per_node_per_second": 1.0 / 1200.0,
        "average_degree": 4,
        "flooding_ttl": 3,
    }


#: Default local-data modification rate: one modification per peer every
#: three hours, the paper's "churn dominates but data does change" regime.
DEFAULT_MODIFICATION_RATE_PER_PEER: float = 1.0 / 10800.0

#: Network sizes swept by the experiments (the paper spans 16–5000 peers).
DEFAULT_NETWORK_SIZES: List[int] = [16, 100, 500, 1000, 2000, 3500, 5000]
#: Domain sizes swept by Figures 4–6.
DEFAULT_DOMAIN_SIZES: List[int] = [16, 100, 500, 1000, 2000, 5000]
#: α values swept by Figure 4.
DEFAULT_ALPHAS: List[float] = [0.1, 0.3, 0.5, 0.8]


@dataclass
class SimulationScenario:
    """One fully specified simulation run."""

    peer_count: int = 500
    alpha: float = 0.3
    matching_fraction: float = 0.1
    query_count: int = 200
    duration_seconds: float = 6 * 3600.0
    average_degree: float = 4.0
    superpeer_fraction: float = 1.0 / 16.0
    lifetime_mean_seconds: float = 3 * 3600.0
    lifetime_median_seconds: float = 3600.0
    downtime_seconds: float = 600.0
    graceful_fraction: float = 0.9
    seed: int = 0
    extra_config: Dict[str, object] = field(default_factory=dict)
    #: Optional adversity: a seeded fault plan (partitions, loss, massacres).
    #: ``None`` keeps the scenario byte-identical to its pre-fault behaviour.
    fault_plan: Optional[FaultPlan] = None
    #: Execution backend the built session schedules through: ``"simulator"``
    #: (default) or ``"concurrent"``; both yield identical answers per seed.
    runtime: str = "simulator"

    def __post_init__(self) -> None:
        if self.peer_count < 2:
            raise ConfigurationError("peer_count must be at least 2")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("alpha must lie in (0, 1]")
        if self.duration_seconds <= 0:
            raise ConfigurationError("duration_seconds must be positive")

    # -- factories -------------------------------------------------------------------

    def protocol_config(self) -> ProtocolConfig:
        return ProtocolConfig(
            freshness_threshold=self.alpha,
            superpeer_fraction=self.superpeer_fraction,
            **self.extra_config,  # type: ignore[arg-type]
        )

    def topology_config(self) -> TopologyConfig:
        return TopologyConfig(
            peer_count=self.peer_count,
            average_degree=self.average_degree,
            seed=self.seed,
        )

    def lifetime_distribution(self) -> LifetimeDistribution:
        return LifetimeDistribution(
            mean_seconds=self.lifetime_mean_seconds,
            median_seconds=self.lifetime_median_seconds,
        )

    def builder(self, summary_peers: Optional[List[str]] = None) -> SystemBuilder:
        """A :class:`SystemBuilder` declaring this scenario (multi-domain).

        The builder is returned unfinished so callers can add churn or
        modification schedules before ``.build()``.
        """
        builder = (
            SystemBuilder()
            .topology(self.topology_config())
            .protocol(self.protocol_config())
            .planned_content(hit_rate=self.matching_fraction, seed=self.seed)
            .seed(self.seed)
        )
        if self.runtime != "simulator":
            builder.runtime(self.runtime)
        if summary_peers is not None:
            builder.domains(summary_peers=summary_peers)
        if self.fault_plan is not None:
            builder.faults(self.fault_plan)
        return builder

    def single_domain_builder(self) -> SystemBuilder:
        """A builder for the single-domain setting of Figures 4–6.

        Figures 4–6 study *one* domain of varying size; forcing the best-
        connected peer as the only summary peer makes the domain size equal
        to the network size.
        """
        overlay = Overlay.generate(self.topology_config())
        config = ProtocolConfig(
            freshness_threshold=self.alpha,
            superpeer_fraction=1.0 / max(2, self.peer_count),
            construction_ttl=max(
                2, _diameter_upper_bound(self.peer_count, self.average_degree)
            ),
            **self.extra_config,  # type: ignore[arg-type]
        )
        hub = max(overlay.peer_ids, key=overlay.degree)
        builder = (
            SystemBuilder()
            .topology(overlay)
            .protocol(config)
            .planned_content(hit_rate=self.matching_fraction, seed=self.seed)
            .domains(summary_peers=[hub])
            .seed(self.seed)
        )
        if self.runtime != "simulator":
            builder.runtime(self.runtime)
        if self.fault_plan is not None:
            builder.faults(self.fault_plan)
        return builder

    def apply_dynamics(
        self,
        builder: SystemBuilder,
        modification_rate_per_peer: float = DEFAULT_MODIFICATION_RATE_PER_PEER,
    ) -> SystemBuilder:
        """Declare this scenario's churn + modification schedule on ``builder``.

        The single place the churn knobs (lifetime distribution, downtime,
        graceful fraction) and the default modification rate are turned into
        builder calls — shared by the experiment drivers and the CLI.
        """
        builder.churn(
            self.duration_seconds,
            lifetime=self.lifetime_distribution(),
            downtime_seconds=self.downtime_seconds,
            graceful_fraction=self.graceful_fraction,
        )
        if modification_rate_per_peer > 0:
            builder.modifications(self.duration_seconds, modification_rate_per_peer)
        return builder

    def session(self, summary_peers: Optional[List[str]] = None) -> NetworkSession:
        """The ready-to-run multi-domain session for this scenario."""
        return self.builder(summary_peers=summary_peers).build()

    def single_domain_session(self) -> NetworkSession:
        """The ready-to-run single-domain session (Figures 4–6 setting)."""
        return self.single_domain_builder().build()

    # -- deprecated imperative shims -------------------------------------------------

    def build_system(
        self, summary_peers: Optional[List[str]] = None
    ) -> SummaryManagementSystem:
        """Deprecated: use :meth:`session` (or :meth:`builder`) instead."""
        warnings.warn(
            "SimulationScenario.build_system is deprecated; use "
            "SimulationScenario.session(...).system instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.session(summary_peers=summary_peers).system

    def build_single_domain_system(self) -> SummaryManagementSystem:
        """Deprecated: use :meth:`single_domain_session` instead."""
        warnings.warn(
            "SimulationScenario.build_single_domain_system is deprecated; use "
            "SimulationScenario.single_domain_session().system instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.single_domain_session().system

    def query_interval_seconds(self) -> float:
        """Average time between two consecutive queries in the whole network."""
        rate = self.peer_count / 1200.0  # one query per node per 20 minutes
        return 1.0 / rate if rate > 0 else float("inf")


def _diameter_upper_bound(peer_count: int, average_degree: float) -> int:
    """A generous TTL that reaches the whole network (log_k(n) + slack)."""
    import math

    if average_degree <= 1:
        return peer_count
    return int(math.ceil(math.log(max(peer_count, 2), average_degree))) + 2
