"""Simulation scenarios: the parameter space of Table 3.

A :class:`SimulationScenario` bundles every knob of one simulation run —
network size, topology, churn model, query workload, protocol configuration —
and knows how to instantiate a ready-to-run
:class:`~repro.core.protocol.SummaryManagementSystem` in planned-content mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import ProtocolConfig
from repro.core.protocol import SummaryManagementSystem
from repro.exceptions import ConfigurationError
from repro.network.churn import LifetimeDistribution
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig


def table3_parameters() -> Dict[str, object]:
    """The simulation parameters of the paper's Table 3, as a plain dict."""
    return {
        "local_summary_lifetime": {
            "distribution": "skewed (log-normal)",
            "mean_seconds": 3 * 3600.0,
            "median_seconds": 3600.0,
        },
        "number_of_peers": (16, 5000),
        "number_of_queries": 200,
        "matching_nodes_fraction": 0.10,
        "freshness_threshold_alpha": (0.1, 0.8),
        "query_rate_per_node_per_second": 1.0 / 1200.0,
        "average_degree": 4,
        "flooding_ttl": 3,
    }


#: Network sizes swept by the experiments (the paper spans 16–5000 peers).
DEFAULT_NETWORK_SIZES: List[int] = [16, 100, 500, 1000, 2000, 3500, 5000]
#: Domain sizes swept by Figures 4–6.
DEFAULT_DOMAIN_SIZES: List[int] = [16, 100, 500, 1000, 2000, 5000]
#: α values swept by Figure 4.
DEFAULT_ALPHAS: List[float] = [0.1, 0.3, 0.5, 0.8]


@dataclass
class SimulationScenario:
    """One fully specified simulation run."""

    peer_count: int = 500
    alpha: float = 0.3
    matching_fraction: float = 0.1
    query_count: int = 200
    duration_seconds: float = 6 * 3600.0
    average_degree: float = 4.0
    superpeer_fraction: float = 1.0 / 16.0
    lifetime_mean_seconds: float = 3 * 3600.0
    lifetime_median_seconds: float = 3600.0
    downtime_seconds: float = 600.0
    graceful_fraction: float = 0.9
    seed: int = 0
    extra_config: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.peer_count < 2:
            raise ConfigurationError("peer_count must be at least 2")
        if not 0.0 < self.alpha <= 1.0:
            raise ConfigurationError("alpha must lie in (0, 1]")
        if self.duration_seconds <= 0:
            raise ConfigurationError("duration_seconds must be positive")

    # -- factories -------------------------------------------------------------------

    def protocol_config(self) -> ProtocolConfig:
        return ProtocolConfig(
            freshness_threshold=self.alpha,
            superpeer_fraction=self.superpeer_fraction,
            **self.extra_config,  # type: ignore[arg-type]
        )

    def topology_config(self) -> TopologyConfig:
        return TopologyConfig(
            peer_count=self.peer_count,
            average_degree=self.average_degree,
            seed=self.seed,
        )

    def lifetime_distribution(self) -> LifetimeDistribution:
        return LifetimeDistribution(
            mean_seconds=self.lifetime_mean_seconds,
            median_seconds=self.lifetime_median_seconds,
        )

    def build_system(
        self, summary_peers: Optional[List[str]] = None
    ) -> SummaryManagementSystem:
        """Instantiate overlay + system in planned-content mode and build domains."""
        overlay = Overlay.generate(self.topology_config())
        system = SummaryManagementSystem(
            overlay, config=self.protocol_config(), seed=self.seed
        )
        system.use_planned_content(
            matching_fraction=self.matching_fraction, seed=self.seed
        )
        system.build_domains(summary_peers=summary_peers)
        return system

    def build_single_domain_system(self) -> SummaryManagementSystem:
        """A system with a single domain covering the whole network.

        Figures 4–6 study *one* domain of varying size; forcing a single
        summary peer makes the domain size equal to the network size.
        """
        overlay = Overlay.generate(self.topology_config())
        config = ProtocolConfig(
            freshness_threshold=self.alpha,
            superpeer_fraction=1.0 / max(2, self.peer_count),
            construction_ttl=max(
                2, _diameter_upper_bound(self.peer_count, self.average_degree)
            ),
            **self.extra_config,  # type: ignore[arg-type]
        )
        system = SummaryManagementSystem(overlay, config=config, seed=self.seed)
        system.use_planned_content(
            matching_fraction=self.matching_fraction, seed=self.seed
        )
        hub = max(overlay.peer_ids, key=overlay.degree)
        system.build_domains(summary_peers=[hub])
        return system

    def query_interval_seconds(self) -> float:
        """Average time between two consecutive queries in the whole network."""
        rate = self.peer_count / 1200.0  # one query per node per 20 minutes
        return 1.0 / rate if rate > 0 else float("inf")


def _diameter_upper_bound(peer_count: int, average_degree: float) -> int:
    """A generous TTL that reaches the whole network (log_k(n) + slack)."""
    import math

    if average_degree <= 1:
        return peer_count
    return int(math.ceil(math.log(max(peer_count, 2), average_degree))) + 2
