"""Query workloads.

The paper's workload has 200 selection queries posed at a rate of one query
per node per 20 minutes, each matched by 10 % of the peers (Table 3).  This
module provides both the paper's running-example query and a generator of
random selection queries over the medical background knowledge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.database.query import Comparison, DescriptorPredicate, SelectionQuery
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import Descriptor
from repro.fuzzy.vocabularies import medical_background_knowledge


def paper_example_query() -> SelectionQuery:
    """The crisp query of Section 5.1.

    ``select age from patient where sex = 'female' and bmi < 19 and
    disease = 'anorexia'``
    """
    return SelectionQuery(
        "patient",
        predicates=[
            Comparison("sex", "=", "female"),
            Comparison("bmi", "<", 19),
            Comparison("disease", "=", "anorexia"),
        ],
        select=["age"],
    )


def paper_example_flexible_query() -> SelectionQuery:
    """The already-reformulated version of the paper's example query.

    ``bmi in {underweight, normal}`` replaces ``bmi < 19``; the paper assumes
    in its evaluation that users formulate queries directly with descriptors.
    """
    return SelectionQuery(
        "patient",
        predicates=[
            DescriptorPredicate("sex", [Descriptor("sex", "female")]),
            DescriptorPredicate(
                "bmi",
                [Descriptor("bmi", "underweight"), Descriptor("bmi", "normal")],
            ),
            DescriptorPredicate("disease", [Descriptor("disease", "anorexia")]),
        ],
        select=["age"],
    )


@dataclass
class QueryWorkload:
    """A reproducible stream of selection queries (Table 3: 200 queries).

    Queries constrain one to three attributes of the background knowledge with
    randomly chosen descriptor sets and project one other attribute.
    """

    query_count: int = 200
    seed: int = 0
    background: Optional[BackgroundKnowledge] = None
    relation: str = "patient"
    min_predicates: int = 1
    max_predicates: int = 3

    def __post_init__(self) -> None:
        if self.background is None:
            self.background = medical_background_knowledge()
        if not 1 <= self.min_predicates <= self.max_predicates:
            raise ValueError("predicate bounds must satisfy 1 <= min <= max")

    def generate(self) -> List[SelectionQuery]:
        return list(self.iter_queries())

    def iter_queries(self) -> Iterator[SelectionQuery]:
        rng = random.Random(self.seed)
        background = self.background
        assert background is not None
        attributes = background.attributes
        for _index in range(self.query_count):
            predicate_count = rng.randint(
                self.min_predicates, min(self.max_predicates, len(attributes))
            )
            constrained = rng.sample(attributes, predicate_count)
            predicates = []
            for attribute in constrained:
                labels = background.labels(attribute)
                chosen = rng.sample(labels, rng.randint(1, max(1, len(labels) // 2)))
                predicates.append(
                    DescriptorPredicate(
                        attribute,
                        [Descriptor(attribute, label) for label in chosen],
                    )
                )
            projection_candidates = [a for a in attributes if a not in constrained]
            select: Sequence[str]
            if projection_candidates:
                select = [rng.choice(projection_candidates)]
            else:
                select = [rng.choice(attributes)]
            yield SelectionQuery(self.relation, predicates, select)

    @property
    def query_rate_per_peer_per_second(self) -> float:
        """Table 3: one query per node per 20 minutes."""
        return 1.0 / 1200.0
