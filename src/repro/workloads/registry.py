"""Named simulation scenarios: one registry, many entry points.

Every experiment driver, example and CLI command used to re-declare its
parameter set inline; the :class:`ScenarioRegistry` gives those parameter sets
names.  A registered scenario is a *factory* returning a
:class:`~repro.workloads.scenarios.SimulationScenario`; callers override
individual fields at lookup time::

    registry = default_registry()
    scenario = registry.scenario("maintenance", peer_count=500, alpha=0.8)
    session = registry.session("table3-default", seed=7)

The module registers the paper's canonical settings (Table 3 defaults, the
single-domain maintenance setting of Figures 4–6, the multi-domain query-cost
setting of Figure 7, plus a few stress variants); projects can register their
own on the default registry or keep private registries.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterator, List, Optional

from repro.core.session import NetworkSession
from repro.exceptions import ConfigurationError
from repro.network.faults import (
    DomainFailureEvent,
    FaultPlan,
    FlashCrowdEvent,
    LinkFaults,
    MassacreEvent,
    PartitionEvent,
)
from repro.workloads.scenarios import SimulationScenario

#: A registered scenario is a zero-argument factory of its base parameters.
ScenarioFactory = Callable[[], SimulationScenario]


@dataclasses.dataclass
class _RegistryEntry:
    factory: ScenarioFactory
    description: str


class ScenarioRegistry:
    """A name → scenario-factory mapping with per-lookup overrides."""

    def __init__(self) -> None:
        self._entries: Dict[str, _RegistryEntry] = {}

    # -- registration ------------------------------------------------------------------

    def register(
        self,
        name: str,
        factory: Optional[ScenarioFactory] = None,
        *,
        description: str = "",
    ) -> Callable[[ScenarioFactory], ScenarioFactory]:
        """Register a scenario factory, directly or as a decorator.

        Re-registering a name replaces the previous entry (latest wins), so
        applications can shadow the built-in scenarios.
        """

        def _register(fn: ScenarioFactory) -> ScenarioFactory:
            self._entries[name] = _RegistryEntry(
                factory=fn, description=description or (fn.__doc__ or "").strip()
            )
            return fn

        if factory is not None:
            return _register(factory)
        return _register

    # -- lookup ------------------------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._entries)

    def describe(self, name: str) -> str:
        return self._entry(name).description

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def _entry(self, name: str) -> _RegistryEntry:
        entry = self._entries.get(name)
        if entry is None:
            known = ", ".join(self.names()) or "<none>"
            raise ConfigurationError(
                f"unknown scenario {name!r}; registered scenarios: {known}"
            )
        return entry

    def scenario(self, name: str, **overrides: object) -> SimulationScenario:
        """Instantiate a named scenario, overriding individual fields."""
        base = self._entry(name).factory()
        if not overrides:
            return base
        field_names = {f.name for f in dataclasses.fields(base)}
        unknown = sorted(set(overrides) - field_names)
        if unknown:
            raise ConfigurationError(
                f"scenario {name!r} has no fields {unknown}; "
                f"overridable fields: {sorted(field_names)}"
            )
        return dataclasses.replace(base, **overrides)  # type: ignore[arg-type]

    # -- session construction ----------------------------------------------------------

    def session(self, name: str, **overrides: object) -> NetworkSession:
        """Build a multi-domain :class:`NetworkSession` for a named scenario."""
        return self.scenario(name, **overrides).session()

    def single_domain_session(self, name: str, **overrides: object) -> NetworkSession:
        """Build the single-domain session variant (Figures 4–6 setting)."""
        return self.scenario(name, **overrides).single_domain_session()


_DEFAULT_REGISTRY: Optional[ScenarioRegistry] = None


def default_registry() -> ScenarioRegistry:
    """The process-wide registry, pre-populated with the paper's scenarios."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = ScenarioRegistry()
        _register_builtin_scenarios(_DEFAULT_REGISTRY)
    return _DEFAULT_REGISTRY


def _register_builtin_scenarios(registry: ScenarioRegistry) -> None:
    registry.register(
        "table3-default",
        lambda: SimulationScenario(),
        description="The evaluation defaults of Table 3: 500 peers, α=0.3, "
        "10 % query hit rate, 6 h horizon.",
    )
    registry.register(
        "smoke",
        lambda: SimulationScenario(
            peer_count=32, duration_seconds=3600.0, query_count=20
        ),
        description="A 32-peer, 1 h miniature for quick end-to-end checks.",
    )
    registry.register(
        "maintenance",
        lambda: SimulationScenario(peer_count=100),
        description="Single-domain maintenance base of Figures 4–6 "
        "(use single_domain_session; sweep peer_count/alpha).",
    )
    registry.register(
        "query-cost",
        lambda: SimulationScenario(peer_count=500, query_count=50),
        description="Multi-domain query-cost base of Figure 7 "
        "(sweep peer_count; SQ vs flooding vs centralized).",
    )
    registry.register(
        "churn-heavy",
        lambda: SimulationScenario(
            lifetime_mean_seconds=3600.0,
            lifetime_median_seconds=1200.0,
            downtime_seconds=300.0,
            graceful_fraction=0.7,
        ),
        description="Short skewed lifetimes (mean 1 h, median 20 min), many "
        "silent failures: stresses reconciliation.",
    )
    registry.register(
        "high-freshness",
        lambda: SimulationScenario(alpha=0.1),
        description="Aggressive reconciliation (α=0.1): fresh answers at a "
        "higher maintenance cost.",
    )
    registry.register(
        "lazy-maintenance",
        lambda: SimulationScenario(alpha=0.8),
        description="Lazy reconciliation (α=0.8): cheap maintenance, more "
        "stale answers.",
    )
    _register_adversity_scenarios(registry)


#: Shared sizing of the named adversity scenarios: big enough for several
#: domains, small enough for CI's chaos matrix.
_ADVERSITY_PEERS = 96
_ADVERSITY_DURATION = 2 * 3600.0
_ADVERSITY_QUERIES = 30


def _adversity_scenario(plan: FaultPlan) -> SimulationScenario:
    return SimulationScenario(
        peer_count=_ADVERSITY_PEERS,
        duration_seconds=_ADVERSITY_DURATION,
        query_count=_ADVERSITY_QUERIES,
        fault_plan=plan,
    )


def _register_adversity_scenarios(registry: ScenarioRegistry) -> None:
    """The named adversity scenarios of the robustness evaluation.

    Each bundles the Table 3 style workload with one seeded
    :class:`~repro.network.faults.FaultPlan`; the protocol must keep returning
    (possibly degraded, always *marked*) answers under every one of them.
    """
    registry.register(
        "partition-heal",
        lambda: _adversity_scenario(
            FaultPlan(
                seed=1,
                partitions=[PartitionEvent(at=1800.0, fraction=0.5, heal_at=4800.0)],
            )
        ),
        description="The network splits in half after 30 min and re-merges "
        "50 min later: queries on either side must come back marked partial.",
    )
    registry.register(
        "flash-crowd",
        lambda: _adversity_scenario(
            FaultPlan(seed=2, flash_crowds=[FlashCrowdEvent(at=3600.0)])
        ),
        description="Every offline peer rejoins at once after 1 h: stresses "
        "join handling and domain (re)construction.",
    )
    registry.register(
        "massacre",
        lambda: _adversity_scenario(
            FaultPlan(
                seed=3,
                massacres=[
                    MassacreEvent(at=1800.0, fraction=0.5, rejoin_after=1200.0)
                ],
            )
        ),
        description="Half the summary peers fail silently at 30 min and "
        "rejoin 20 min later: exercises store-backed domain reclamation.",
    )
    registry.register(
        "lossy-network",
        lambda: _adversity_scenario(
            FaultPlan(
                seed=4,
                link=LinkFaults(
                    drop_probability=0.1,
                    duplicate_probability=0.02,
                    delay_jitter_ms=25.0,
                ),
            )
        ),
        description="Every link drops 10 % of messages (plus duplicates and "
        "jitter): retries/backoff must bound the overhead.",
    )
    registry.register(
        "domain-collapse",
        lambda: _adversity_scenario(
            FaultPlan(seed=5, domain_failures=[DomainFailureEvent(at=1800.0, count=2)])
        ),
        description="Two whole domains fail at 30 min (summary peer and "
        "partners together): correlated failure, not independent churn.",
    )


#: Names of the built-in adversity scenarios (the CI chaos matrix runs these).
ADVERSITY_SCENARIOS = [
    "partition-heal",
    "flash-crowd",
    "massacre",
    "lossy-network",
    "domain-collapse",
]
