"""Medical (Patient) workload: per-peer databases with controllable selectivity.

The evaluation fixes the fraction of peers matching each query at 10 %
(Table 3).  With real content, that fraction is realised by giving "matching"
peers at least one record inside the query's target region of the descriptor
space and keeping every other peer's records outside it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.database.engine import LocalDatabase
from repro.database.generator import PatientGenerator, PatientProfile
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.vocabularies import medical_background_knowledge


@dataclass
class MedicalWorkload:
    """Configuration for generating a population of peer medical databases.

    Attributes
    ----------
    records_per_peer:
        Number of patient records per peer database.
    matching_fraction:
        Fraction of peers that must hold data matching the *target query*
        (anorexic underweight young female patients, the paper's example).
    seed:
        Random seed for reproducibility.
    """

    records_per_peer: int = 20
    matching_fraction: float = 0.1
    seed: int = 0
    background: BackgroundKnowledge = field(default_factory=medical_background_knowledge)

    #: Profile generating records that match the paper's example query.
    matching_profile: PatientProfile = field(
        default_factory=lambda: PatientProfile(
            age_range=(13.0, 17.0),
            bmi_range=(15.0, 17.4),
            sexes=("female",),
            diseases=("anorexia",),
        )
    )
    #: Profile generating records that do not match it (older, normal+ BMI,
    #: other diseases).
    non_matching_profile: PatientProfile = field(
        default_factory=lambda: PatientProfile(
            age_range=(30.0, 80.0),
            bmi_range=(22.0, 38.0),
            sexes=("female", "male"),
            diseases=("malaria", "diabetes", "influenza", "hypertension"),
        )
    )


def build_peer_databases(
    peer_ids: Sequence[str],
    workload: Optional[MedicalWorkload] = None,
    matching_peers: Optional[Sequence[str]] = None,
) -> Dict[str, LocalDatabase]:
    """Build one database per peer, honouring the workload's matching fraction.

    ``matching_peers`` forces the exact set of peers holding matching data;
    when omitted it is drawn at random from ``peer_ids`` according to
    ``workload.matching_fraction``.
    """
    workload = workload or MedicalWorkload()
    rng = random.Random(workload.seed)
    generator = PatientGenerator(seed=workload.seed, background=workload.background)

    if matching_peers is None:
        target = round(workload.matching_fraction * len(peer_ids))
        if workload.matching_fraction > 0:
            target = max(1, target)
        target = min(target, len(peer_ids))
        matching_peers = rng.sample(list(peer_ids), target) if target else []
    matching_set = set(matching_peers)

    databases: Dict[str, LocalDatabase] = {}
    for peer_id in peer_ids:
        database = LocalDatabase(background=workload.background)
        if peer_id in matching_set:
            # A few matching records plus background noise.
            matching_count = max(1, workload.records_per_peer // 5)
            records = generator.records(
                matching_count, profile=workload.matching_profile, id_prefix=f"{peer_id}_m"
            )
            records += generator.records(
                workload.records_per_peer - matching_count,
                profile=workload.non_matching_profile,
                id_prefix=f"{peer_id}_n",
            )
        else:
            records = generator.records(
                workload.records_per_peer,
                profile=workload.non_matching_profile,
                id_prefix=f"{peer_id}_n",
            )
        from repro.database.schema import patient_schema

        database.create_relation("patient", patient_schema(), records)
        databases[peer_id] = database
    return databases


def matching_peer_plan(
    peer_ids: Sequence[str], matching_fraction: float, seed: int = 0
) -> List[str]:
    """Draw the set of peers that should match a query (10 % by default)."""
    rng = random.Random(seed)
    target = round(matching_fraction * len(peer_ids))
    if matching_fraction > 0:
        target = max(1, target)
    target = min(target, len(peer_ids))
    return rng.sample(list(peer_ids), target) if target else []
