"""Pure flooding baseline (no index).

The query is broadcast from the originator to all its neighbours, which
forward it to their own neighbours (excluding the sender), and so on until the
TTL expires (the paper limits it to 3).  Every peer holding matching data
answers with one response message.  This is the "very used in real life"
baseline whose cost Figure 7 compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Set

from repro.core.content import ContentModel
from repro.network.messages import MessageType
from repro.network.metrics import MessageCounter
from repro.network.overlay import Overlay


@dataclass
class FloodingOutcome:
    """Result and cost of one flooded query."""

    originator: str
    ttl: int
    reached_peers: Set[str] = field(default_factory=set)
    responding_peers: Set[str] = field(default_factory=set)
    query_messages: int = 0
    response_messages: int = 0

    @property
    def total_messages(self) -> int:
        return self.query_messages + self.response_messages

    @property
    def recall_peers(self) -> int:
        return len(self.responding_peers)


class FloodingSearch:
    """Runs TTL-bounded flooding over an overlay and accounts for its traffic."""

    def __init__(
        self, ttl: int = 3, counter: Optional[MessageCounter] = None
    ) -> None:
        if ttl < 1:
            raise ValueError("flooding TTL must be at least 1")
        self._ttl = ttl
        self._counter = counter if counter is not None else MessageCounter()

    @property
    def ttl(self) -> int:
        return self._ttl

    @property
    def counter(self) -> MessageCounter:
        return self._counter

    def query(
        self,
        overlay: Overlay,
        originator: str,
        content: ContentModel,
        query_id: int,
        required_results: Optional[int] = None,
    ) -> FloodingOutcome:
        """Flood one query from ``originator`` and collect the responses.

        Without ``required_results`` this is a plain TTL-bounded flood.  With
        it, the flood keeps expanding ring after ring (the "broadcast until a
        stop condition is satisfied" behaviour of the paper's baseline) until
        enough matching peers have been reached or the network is exhausted —
        the stop condition the summary-querying algorithm also uses for
        partial/total-lookup queries, which makes the message counts directly
        comparable.
        """
        outcome = FloodingOutcome(originator=originator, ttl=self._ttl)

        visited: Set[str] = {originator}
        frontier = [(originator, None)]
        hop = 0
        results = 0
        while frontier:
            if required_results is None and hop >= self._ttl:
                break
            if required_results is not None and results >= required_results:
                break
            hop += 1
            next_frontier = []
            for node, received_from in frontier:
                for neighbour in overlay.neighbors(node):
                    if neighbour == received_from:
                        continue
                    outcome.query_messages += 1
                    if neighbour not in visited:
                        visited.add(neighbour)
                        next_frontier.append((neighbour, node))
                        if content.truly_matching(query_id, neighbour):
                            results += 1
            frontier = next_frontier

        outcome.reached_peers = visited - {originator}
        for peer_id in outcome.reached_peers:
            if content.truly_matching(query_id, peer_id):
                outcome.responding_peers.add(peer_id)
        outcome.response_messages = len(outcome.responding_peers)

        self._counter.record_type(MessageType.FLOOD_QUERY, outcome.query_messages)
        self._counter.record_type(MessageType.QUERY_RESPONSE, outcome.response_messages)
        return outcome


def flooding_query_cost(
    average_degree: float, ttl: int, responders: int = 0
) -> float:
    """Analytical flooding cost: ``sum_{i=1..TTL} k^i`` query messages + responses.

    This is the expression the paper's cost model uses for the flooding
    component (with ``k`` the average degree, e.g. 3.5 for Gnutella-like
    graphs).
    """
    if ttl < 1:
        return float(responders)
    queries = sum(average_degree**i for i in range(1, ttl + 1))
    return queries + responders
