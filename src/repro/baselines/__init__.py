"""Baseline query-processing algorithms the paper compares against.

* :mod:`repro.baselines.flooding` — pure Gnutella-style flooding with a TTL of
  3 (no index, no summaries),
* :mod:`repro.baselines.centralized` — a complete, consistent centralized
  index (the best case any routing algorithm can hope for).
"""

from repro.baselines.centralized import CentralizedIndex, centralized_query_cost
from repro.baselines.flooding import FloodingSearch, flooding_query_cost

__all__ = [
    "FloodingSearch",
    "flooding_query_cost",
    "CentralizedIndex",
    "centralized_query_cost",
]
