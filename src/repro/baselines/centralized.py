"""Centralized-index baseline.

A single server indexes every peer's content; a query costs one message to the
index, one message to each relevant peer and one response from each of them:
``C_Q = 1 + 2 * (hit_rate * n)``.  The paper treats this as the lower bound
"that can be expected from any query processing algorithm, when the index is
complete and consistent", while noting its vulnerability and maintenance cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.content import ContentModel
from repro.network.messages import MessageType
from repro.network.metrics import MessageCounter


@dataclass
class CentralizedOutcome:
    """Result and cost of one centrally indexed query."""

    originator: str
    relevant_peers: Set[str] = field(default_factory=set)
    responding_peers: Set[str] = field(default_factory=set)
    total_messages: int = 0


class CentralizedIndex:
    """A complete, always-consistent central index over the whole network."""

    def __init__(self, counter: Optional[MessageCounter] = None) -> None:
        self._counter = counter if counter is not None else MessageCounter()
        #: peer -> set of query ids it matches (kept implicitly consistent by
        #: delegating the ground truth to the content model).
        self._registrations: Dict[str, Set[int]] = {}

    @property
    def counter(self) -> MessageCounter:
        return self._counter

    def query(
        self,
        peer_ids,
        originator: str,
        content: ContentModel,
        query_id: int,
    ) -> CentralizedOutcome:
        """Answer one query through the central index.

        The index is complete and consistent, so the relevant peers are
        exactly the truly matching ones: no false positives, no false
        negatives, and the minimum possible number of messages.
        """
        outcome = CentralizedOutcome(originator=originator)
        outcome.relevant_peers = {
            peer_id
            for peer_id in peer_ids
            if content.truly_matching(query_id, peer_id)
        }
        outcome.responding_peers = set(outcome.relevant_peers)

        # 1 query to the index + 1 query per relevant peer + 1 response each.
        outcome.total_messages = 1 + 2 * len(outcome.relevant_peers)
        self._counter.record_type(MessageType.QUERY, 1 + len(outcome.relevant_peers))
        self._counter.record_type(
            MessageType.QUERY_RESPONSE, len(outcome.responding_peers)
        )
        return outcome


def centralized_query_cost(peer_count: int, hit_rate: float = 0.1) -> float:
    """Analytical centralized-index cost: ``1 + 2 * hit_rate * n`` messages."""
    return 1.0 + 2.0 * hit_rate * peer_count
