"""Membership functions over attribute domains.

A membership function maps a raw attribute value to a membership grade in
``[0, 1]`` telling how well a linguistic label (e.g. ``young``) describes the
value.  The paper's running example maps ``age = 20`` to
``{0.3/adult, 0.7/young}`` using trapezoidal functions such as the one shown in
its Figure 2.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import FrozenSet, Iterable


class MembershipFunction(abc.ABC):
    """Abstract membership function ``mu : value -> [0, 1]``."""

    @abc.abstractmethod
    def grade(self, value: object) -> float:
        """Return the membership grade of ``value`` in ``[0, 1]``."""

    def __call__(self, value: object) -> float:
        return self.grade(value)

    def supports(self, value: object) -> bool:
        """Return True when ``value`` has a strictly positive grade."""
        return self.grade(value) > 0.0


@dataclass(frozen=True)
class TrapezoidalMembership(MembershipFunction):
    """Trapezoidal membership function defined by ``a <= b <= c <= d``.

    The grade is 0 outside ``[a, d]``, 1 inside the core ``[b, c]`` and varies
    linearly on the two slopes.  Open-ended shoulders (e.g. the ``old`` label)
    are expressed by making ``a == b`` (left shoulder) or ``c == d`` (right
    shoulder) equal to +/- infinity-like sentinels; here we simply allow
    ``a == b`` and ``c == d``, which degenerates the slope to a step.
    """

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if not (self.a <= self.b <= self.c <= self.d):
            raise ValueError(
                f"trapezoid breakpoints must be ordered a<=b<=c<=d, "
                f"got ({self.a}, {self.b}, {self.c}, {self.d})"
            )

    def grade(self, value: object) -> float:
        try:
            x = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return 0.0
        if x < self.a or x > self.d:
            return 0.0
        if self.b <= x <= self.c:
            return 1.0
        if x < self.b:
            # Rising slope.  a == b is handled by the core test above when
            # x == a == b; otherwise x < b implies a < b here.
            return (x - self.a) / (self.b - self.a)
        # Falling slope (c < x <= d and c < d).
        return (self.d - x) / (self.d - self.c)

    @property
    def core(self) -> tuple:
        """The interval of values with grade exactly 1."""
        return (self.b, self.c)

    @property
    def support(self) -> tuple:
        """The interval of values with a strictly positive grade."""
        return (self.a, self.d)


@dataclass(frozen=True)
class TriangularMembership(MembershipFunction):
    """Triangular membership function: a trapezoid with an empty core."""

    a: float
    peak: float
    d: float

    def __post_init__(self) -> None:
        if not (self.a <= self.peak <= self.d):
            raise ValueError(
                f"triangle breakpoints must be ordered a<=peak<=d, "
                f"got ({self.a}, {self.peak}, {self.d})"
            )

    def grade(self, value: object) -> float:
        return TrapezoidalMembership(self.a, self.peak, self.peak, self.d).grade(value)

    @property
    def support(self) -> tuple:
        return (self.a, self.d)


class CrispSetMembership(MembershipFunction):
    """Crisp (boolean) membership over a finite set of categorical values.

    Used for categorical attributes such as ``sex`` or ``disease`` where a
    label either matches exactly (grade 1) or not at all (grade 0).
    """

    def __init__(self, values: Iterable[object]) -> None:
        self._values: FrozenSet[object] = frozenset(values)
        if not self._values:
            raise ValueError("a crisp membership needs at least one value")

    @property
    def values(self) -> FrozenSet[object]:
        return self._values

    def grade(self, value: object) -> float:
        return 1.0 if value in self._values else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CrispSetMembership({sorted(map(str, self._values))})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CrispSetMembership) and self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)
