"""Background Knowledge (BK) — the user-provided vocabulary over attributes.

The Background Knowledge drives the SaintEtiQ mapping service: it decides
which attributes take part in the summarization and how raw values translate
into linguistic descriptors.  A *Common Background Knowledge* (CBK), shared by
all peers of a collaboration (e.g. SNOMED CT in a medical setting), makes the
summaries produced by different peers directly mergeable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import BackgroundKnowledgeError
from repro.fuzzy.linguistic import Descriptor, LinguisticVariable
from repro.fuzzy.membership import CrispSetMembership


class BackgroundKnowledge:
    """A set of linguistic variables, one per summarized attribute.

    The BK behaves like a read-only mapping from attribute name to
    :class:`LinguisticVariable`.  Attribute order is preserved and defines the
    dimension order of the multidimensional grid used by the mapping service.
    """

    def __init__(self, variables: Iterable[LinguisticVariable]) -> None:
        self._variables: Dict[str, LinguisticVariable] = {}
        for variable in variables:
            if variable.attribute in self._variables:
                raise BackgroundKnowledgeError(
                    f"duplicate linguistic variable for attribute "
                    f"{variable.attribute!r}"
                )
            self._variables[variable.attribute] = variable
        if not self._variables:
            raise BackgroundKnowledgeError(
                "background knowledge needs at least one linguistic variable"
            )

    # -- mapping-like access -------------------------------------------------

    @property
    def attributes(self) -> List[str]:
        """Attributes covered by this BK, in dimension order."""
        return list(self._variables)

    def variable(self, attribute: str) -> LinguisticVariable:
        try:
            return self._variables[attribute]
        except KeyError as exc:
            raise BackgroundKnowledgeError(
                f"attribute {attribute!r} is not described by the background "
                f"knowledge (known: {self.attributes})"
            ) from exc

    def __contains__(self, attribute: object) -> bool:
        return attribute in self._variables

    def __len__(self) -> int:
        return len(self._variables)

    def __iter__(self):
        return iter(self._variables.values())

    # -- descriptor helpers --------------------------------------------------

    def descriptors(self, attribute: Optional[str] = None) -> List[Descriptor]:
        """All descriptors of one attribute, or of the whole BK."""
        if attribute is not None:
            return self.variable(attribute).descriptors
        result: List[Descriptor] = []
        for variable in self._variables.values():
            result.extend(variable.descriptors)
        return result

    def has_descriptor(self, descriptor: Descriptor) -> bool:
        return (
            descriptor.attribute in self._variables
            and self._variables[descriptor.attribute].has_label(descriptor.label)
        )

    def labels(self, attribute: str) -> List[str]:
        return self.variable(attribute).labels

    def grade(self, descriptor: Descriptor, value: object) -> float:
        """Membership grade of a raw value in a descriptor's fuzzy set."""
        return self.variable(descriptor.attribute).grade(descriptor.label, value)

    def fuzzify_value(
        self, attribute: str, value: object, threshold: float = 0.0
    ) -> Dict[Descriptor, float]:
        """Fuzzify one attribute value into descriptor/grade pairs."""
        return self.variable(attribute).fuzzify(value, threshold=threshold)

    def fuzzify_record(
        self, record: Mapping[str, object], threshold: float = 0.0
    ) -> Dict[str, Dict[Descriptor, float]]:
        """Fuzzify every BK attribute present in ``record``.

        Attributes of the record that are not covered by the BK are ignored —
        they simply do not take part in the summarization (the paper keeps
        ``age`` and ``bmi`` and drops the rest in its running example only for
        exposition; categorical attributes can be covered with crisp sets).
        """
        mapped: Dict[str, Dict[Descriptor, float]] = {}
        for attribute in self.attributes:
            if attribute not in record:
                continue
            mapped[attribute] = self.fuzzify_value(
                attribute, record[attribute], threshold=threshold
            )
        return mapped

    def grid_size(self) -> int:
        """Number of cells of the full grid (product of vocabulary sizes).

        This bounds the number of leaves of any summary hierarchy built from
        this BK, which in turn bounds the size of a global summary (Section
        6.1.1 of the paper).
        """
        size = 1
        for variable in self._variables.values():
            size *= len(variable)
        return size

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_categorical(
        cls,
        categorical: Mapping[str, Iterable[object]],
    ) -> "BackgroundKnowledge":
        """Build a purely categorical BK: one crisp label per distinct value."""
        variables = []
        for attribute, values in categorical.items():
            terms = {str(value): CrispSetMembership([value]) for value in values}
            variables.append(LinguisticVariable(attribute, terms))
        return cls(variables)

    def merged_with(self, other: "BackgroundKnowledge") -> "BackgroundKnowledge":
        """Combine two BKs over disjoint attribute sets into one."""
        overlap = set(self.attributes) & set(other.attributes)
        if overlap:
            raise BackgroundKnowledgeError(
                f"cannot merge background knowledges sharing attributes {overlap}"
            )
        return BackgroundKnowledge(list(self) + list(other))

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BackgroundKnowledge(attributes={self.attributes})"


def common_background_knowledge(
    *backgrounds: BackgroundKnowledge,
) -> Tuple[bool, List[str]]:
    """Check whether several peers' BKs agree (i.e. form a CBK).

    Returns ``(True, [])`` when every BK exposes the same attributes with the
    same labels, and ``(False, reasons)`` otherwise.  The paper assumes a CBK;
    this helper lets integration code assert the assumption explicitly.
    """
    if not backgrounds:
        return True, []
    reference = backgrounds[0]
    reasons: List[str] = []
    for index, candidate in enumerate(backgrounds[1:], start=1):
        if candidate.attributes != reference.attributes:
            reasons.append(
                f"BK #{index} attributes {candidate.attributes} differ from "
                f"{reference.attributes}"
            )
            continue
        for attribute in reference.attributes:
            if candidate.labels(attribute) != reference.labels(attribute):
                reasons.append(
                    f"BK #{index} labels for {attribute!r} differ: "
                    f"{candidate.labels(attribute)} vs {reference.labels(attribute)}"
                )
    return (not reasons), reasons
