"""Ready-made background knowledge vocabularies.

The main one mirrors the paper's running example: a medical collaboration
describing patients by ``age``, ``bmi``, ``sex`` and ``disease``.  The numeric
partitions follow the figures quoted in the paper (e.g. *underweight* exactly
covers BMI in [15, 17.5] and *normal* exactly covers [19.5, 24], a 20-year-old
is 0.7 young / 0.3 adult).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import LinguisticVariable
from repro.fuzzy.membership import CrispSetMembership, TrapezoidalMembership
from repro.fuzzy.partition import FuzzyPartition

#: Diseases used by the synthetic medical workload.
DEFAULT_DISEASES: Sequence[str] = (
    "anorexia",
    "malaria",
    "diabetes",
    "influenza",
    "asthma",
    "hypertension",
    "hepatitis",
    "tuberculosis",
)


#: Upper support bound of the ``young`` age band.  Chosen so that, exactly as
#: in the paper's running example, 15- and 18-year-olds are fully ``young``
#: while a 20-year-old maps to ``{0.7/young, 0.3/adult}``.
_YOUNG_UPPER = 74.0 / 3.0  # ≈ 24.67 years


def age_variable() -> LinguisticVariable:
    """The ``age`` linguistic variable of the paper's Figure 2.

    Calibrated on the running example: ages 15 and 18 are fully ``young`` and
    age 20 maps to ``{0.7/young, 0.3/adult}``.
    """
    return LinguisticVariable(
        "age",
        {
            "child": TrapezoidalMembership(0, 0, 10, 13),
            "young": TrapezoidalMembership(10, 13, 18, _YOUNG_UPPER),
            "adult": TrapezoidalMembership(18, _YOUNG_UPPER, 55, 65),
            "old": TrapezoidalMembership(55, 65, 120, 120),
        },
    )


def bmi_variable() -> LinguisticVariable:
    """The ``bmi`` linguistic variable.

    *underweight* perfectly matches [15, 17.5] and *normal* perfectly matches
    [19.5, 24], as stated in Section 3.2.1 of the paper.
    """
    return LinguisticVariable(
        "bmi",
        {
            "underweight": TrapezoidalMembership(10, 10, 17.5, 19.5),
            "normal": TrapezoidalMembership(17.5, 19.5, 24, 27),
            "overweight": TrapezoidalMembership(24, 27, 29, 32),
            "obese": TrapezoidalMembership(29, 32, 60, 60),
        },
    )


def sex_variable() -> LinguisticVariable:
    return LinguisticVariable(
        "sex",
        {
            "female": CrispSetMembership(["female", "F", "f"]),
            "male": CrispSetMembership(["male", "M", "m"]),
        },
    )


def disease_variable(
    diseases: Iterable[str] = DEFAULT_DISEASES,
) -> LinguisticVariable:
    return LinguisticVariable(
        "disease",
        {disease: CrispSetMembership([disease]) for disease in diseases},
    )


def medical_background_knowledge(
    diseases: Iterable[str] = DEFAULT_DISEASES,
    include_categorical: bool = True,
) -> BackgroundKnowledge:
    """The SNOMED-flavoured common background knowledge of the running example.

    Parameters
    ----------
    diseases:
        The disease vocabulary (defaults to :data:`DEFAULT_DISEASES`).
    include_categorical:
        When False, only the numeric ``age``/``bmi`` variables are included,
        mirroring the paper's Table 1 example where only those two attributes
        are selected for summarization.
    """
    variables = [age_variable(), bmi_variable()]
    if include_categorical:
        variables.append(sex_variable())
        variables.append(disease_variable(diseases))
    return BackgroundKnowledge(variables)


def uniform_numeric_background_knowledge(
    attributes: Mapping[str, Sequence[float]],
    labels_per_attribute: int = 4,
    overlap_fraction: float = 0.1,
    label_names: Optional[Sequence[str]] = None,
) -> BackgroundKnowledge:
    """Build a generic BK with uniformly spaced fuzzy bands per attribute.

    ``attributes`` maps each attribute name to its ``(low, high)`` domain.
    This is used by the workload generators when an experiment needs a BK with
    a controllable granularity (the paper notes that a finer, more overlapping
    BK yields more grid cells).
    """
    variables = []
    for attribute, (low, high) in attributes.items():
        low_f, high_f = float(low), float(high)
        if high_f <= low_f:
            raise ValueError(
                f"attribute {attribute!r} has an empty domain ({low}, {high})"
            )
        if label_names is not None and len(label_names) == labels_per_attribute:
            names = list(label_names)
        else:
            names = [f"band_{i}" for i in range(labels_per_attribute)]
        width = (high_f - low_f) / labels_per_attribute
        breakpoints = [low_f + i * width for i in range(labels_per_attribute + 1)]
        partition = FuzzyPartition.from_breakpoints(
            attribute,
            names,
            breakpoints,
            overlap=overlap_fraction * width,
        )
        variables.append(partition.to_linguistic_variable())
    return BackgroundKnowledge(variables)
