"""Linguistic variables and descriptors.

A *linguistic variable* (Zadeh 1975) attaches a vocabulary of labelled fuzzy
sets to a relational attribute.  Each label is a :class:`Descriptor`; mapping a
raw value through the variable yields the set of descriptors that describe the
value together with their membership grades — e.g.
``age = 20  ->  {young: 0.7, adult: 0.3}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import BackgroundKnowledgeError
from repro.fuzzy.membership import MembershipFunction


@dataclass(frozen=True, order=True)
class Descriptor:
    """A linguistic label attached to an attribute, e.g. ``age:young``.

    Descriptors are the atoms of summary intents and of reformulated queries.
    They are identified by the ``(attribute, label)`` pair; the membership
    function lives in the owning :class:`LinguisticVariable`.
    """

    attribute: str
    label: str
    #: Precomputed hash: descriptors are the elements of every cell key, so
    #: they are hashed millions of times by the cell-map dicts of the
    #: summarization hot path — the generated dataclass hash would rebuild
    #: and hash an (attribute, label) tuple on every lookup.
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.attribute, self.label)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return f"{self.attribute}:{self.label}"


class LinguisticVariable:
    """A named attribute together with its labelled membership functions."""

    def __init__(
        self,
        attribute: str,
        terms: Mapping[str, MembershipFunction],
    ) -> None:
        if not terms:
            raise BackgroundKnowledgeError(
                f"linguistic variable on {attribute!r} needs at least one term"
            )
        self._attribute = attribute
        self._terms: Dict[str, MembershipFunction] = dict(terms)

    @property
    def attribute(self) -> str:
        return self._attribute

    @property
    def labels(self) -> List[str]:
        """Labels in insertion order (the order of the partition)."""
        return list(self._terms)

    @property
    def descriptors(self) -> List[Descriptor]:
        return [Descriptor(self._attribute, label) for label in self._terms]

    def membership(self, label: str) -> MembershipFunction:
        try:
            return self._terms[label]
        except KeyError as exc:
            raise BackgroundKnowledgeError(
                f"unknown label {label!r} for attribute {self._attribute!r}"
            ) from exc

    def has_label(self, label: str) -> bool:
        return label in self._terms

    def grade(self, label: str, value: object) -> float:
        """Membership grade of ``value`` in the fuzzy set named ``label``."""
        return self.membership(label).grade(value)

    def fuzzify(
        self, value: object, threshold: float = 0.0
    ) -> Dict[Descriptor, float]:
        """Map a raw value to its descriptors with positive membership.

        Parameters
        ----------
        value:
            Raw attribute value from a database record.
        threshold:
            Minimum membership grade for a descriptor to be kept.  The default
            keeps every strictly positive grade, mirroring the paper.
        """
        result: Dict[Descriptor, float] = {}
        for label, function in self._terms.items():
            grade = function.grade(value)
            if grade > threshold:
                result[Descriptor(self._attribute, label)] = grade
        return result

    def best_label(self, value: object) -> Optional[str]:
        """Return the label with the highest membership grade, if any."""
        graded: List[Tuple[float, str]] = [
            (function.grade(value), label) for label, function in self._terms.items()
        ]
        grade, label = max(graded)
        return label if grade > 0.0 else None

    def __contains__(self, label: object) -> bool:
        return label in self._terms

    def __len__(self) -> int:
        return len(self._terms)

    def __iter__(self) -> Iterable[str]:
        return iter(self._terms)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LinguisticVariable({self._attribute!r}, labels={self.labels})"
