"""Fuzzy partitions of numeric attribute domains.

A fuzzy partition cuts an attribute domain into overlapping labelled regions.
The paper stresses that *"the fuzziness in the vocabulary definition of BK
permits to express any single value with more than one fuzzy descriptor and
thus avoid threshold effect thanks to the smooth transition between different
categories"* — exactly what an overlapping trapezoidal partition provides.

This module offers helpers to build well-formed partitions (ordered,
overlapping trapezoids that cover the whole domain) and to verify partition
properties such as coverage and the Ruspini condition (grades summing to 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import BackgroundKnowledgeError
from repro.fuzzy.linguistic import LinguisticVariable
from repro.fuzzy.membership import TrapezoidalMembership


@dataclass(frozen=True)
class PartitionBand:
    """One labelled band of a fuzzy partition: a label plus its trapezoid."""

    label: str
    function: TrapezoidalMembership


class FuzzyPartition:
    """An ordered collection of overlapping trapezoidal bands over a domain."""

    def __init__(self, attribute: str, bands: Sequence[PartitionBand]) -> None:
        if not bands:
            raise BackgroundKnowledgeError(
                f"fuzzy partition on {attribute!r} needs at least one band"
            )
        labels = [band.label for band in bands]
        if len(set(labels)) != len(labels):
            raise BackgroundKnowledgeError(
                f"duplicate labels in partition on {attribute!r}: {labels}"
            )
        self._attribute = attribute
        self._bands = list(bands)

    @property
    def attribute(self) -> str:
        return self._attribute

    @property
    def bands(self) -> List[PartitionBand]:
        return list(self._bands)

    @property
    def labels(self) -> List[str]:
        return [band.label for band in self._bands]

    @property
    def domain(self) -> Tuple[float, float]:
        """The overall support covered by the partition."""
        lows = [band.function.a for band in self._bands]
        highs = [band.function.d for band in self._bands]
        return (min(lows), max(highs))

    def grades(self, value: float) -> Dict[str, float]:
        """Membership grades of ``value`` in every band (including zeros)."""
        return {band.label: band.function.grade(value) for band in self._bands}

    def covers(self, value: float) -> bool:
        """True when at least one band gives ``value`` a positive grade."""
        return any(band.function.grade(value) > 0.0 for band in self._bands)

    def is_ruspini(self, samples: int = 257) -> bool:
        """Check the Ruspini condition (grades sum to ~1) on a sample grid.

        A Ruspini partition guarantees that every value is fully accounted for
        by the vocabulary, which is the usual way background knowledge is
        authored for SaintEtiQ.  The check samples the domain uniformly.
        """
        low, high = self.domain
        if high <= low:
            return True
        step = (high - low) / (samples - 1)
        for i in range(samples):
            x = low + i * step
            total = sum(self.grades(x).values())
            if abs(total - 1.0) > 1e-6:
                return False
        return True

    def to_linguistic_variable(self) -> LinguisticVariable:
        """Expose the partition as a :class:`LinguisticVariable`."""
        return LinguisticVariable(
            self._attribute,
            {band.label: band.function for band in self._bands},
        )

    @classmethod
    def from_breakpoints(
        cls,
        attribute: str,
        labels: Sequence[str],
        breakpoints: Sequence[float],
        overlap: float = 0.0,
    ) -> "FuzzyPartition":
        """Build a partition from ordered labels and interior breakpoints.

        ``len(breakpoints)`` must equal ``len(labels) + 1``: the first and last
        entries bound the domain and the interior ones separate consecutive
        labels.  ``overlap`` is the half-width of the fuzzy transition around
        each interior breakpoint (0 gives a crisp partition).

        Example: ``from_breakpoints("age", ["young", "adult", "old"],
        [0, 25, 60, 120], overlap=5)`` builds the three-band variable from the
        paper's Figure 2.
        """
        if len(breakpoints) != len(labels) + 1:
            raise BackgroundKnowledgeError(
                "from_breakpoints needs len(breakpoints) == len(labels) + 1, "
                f"got {len(breakpoints)} breakpoints for {len(labels)} labels"
            )
        points = list(map(float, breakpoints))
        if points != sorted(points):
            raise BackgroundKnowledgeError(
                f"breakpoints must be non-decreasing, got {points}"
            )
        if overlap < 0:
            raise BackgroundKnowledgeError("overlap must be non-negative")

        bands: List[PartitionBand] = []
        for index, label in enumerate(labels):
            left, right = points[index], points[index + 1]
            # Shoulder bands are crisp on the outer edge; interior edges get
            # the +/- overlap transition.
            a = left if index == 0 else left - overlap
            b = left if index == 0 else left + overlap
            c = right if index == len(labels) - 1 else right - overlap
            d = right if index == len(labels) - 1 else right + overlap
            b = min(b, c)
            a = min(a, b)
            d = max(d, c)
            bands.append(PartitionBand(label, TrapezoidalMembership(a, b, c, d)))
        return cls(attribute, bands)

    def __len__(self) -> int:
        return len(self._bands)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"FuzzyPartition({self._attribute!r}, labels={self.labels})"
