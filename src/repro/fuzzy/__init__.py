"""Fuzzy-set substrate used by the SaintEtiQ summarization engine.

This package implements the small slice of Zadeh's fuzzy set theory that the
paper relies on:

* membership functions over numeric domains (:mod:`repro.fuzzy.membership`),
* linguistic variables and their descriptors (:mod:`repro.fuzzy.linguistic`),
* fuzzy partitions of an attribute domain (:mod:`repro.fuzzy.partition`),
* background knowledge, i.e. the per-attribute vocabulary used to map raw
  records to linguistic descriptors (:mod:`repro.fuzzy.background`),
* ready-made vocabularies such as the medical one used in the paper's running
  example (:mod:`repro.fuzzy.vocabularies`).
"""

from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import Descriptor, LinguisticVariable
from repro.fuzzy.membership import (
    CrispSetMembership,
    MembershipFunction,
    TrapezoidalMembership,
    TriangularMembership,
)
from repro.fuzzy.partition import FuzzyPartition
from repro.fuzzy.vocabularies import (
    medical_background_knowledge,
    uniform_numeric_background_knowledge,
)

__all__ = [
    "MembershipFunction",
    "TrapezoidalMembership",
    "TriangularMembership",
    "CrispSetMembership",
    "Descriptor",
    "LinguisticVariable",
    "FuzzyPartition",
    "BackgroundKnowledge",
    "medical_background_knowledge",
    "uniform_numeric_background_knowledge",
]
