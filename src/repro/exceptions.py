"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch the whole family with a single ``except`` clause while still being able
to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation schema is inconsistent or a record does not match it."""


class QueryError(ReproError):
    """A query is malformed or references unknown attributes/descriptors."""


class BackgroundKnowledgeError(ReproError):
    """A background knowledge definition is invalid (bad partitions, overlaps...)."""


class SummaryError(ReproError):
    """An operation on summaries or summary hierarchies is invalid."""


class NetworkError(ReproError):
    """A P2P network/topology/simulation operation failed."""


class ProtocolError(ReproError):
    """A summary-management protocol invariant was violated."""


class ConfigurationError(ReproError):
    """An experiment or protocol configuration is invalid."""


class StoreError(ReproError):
    """A persistence-store operation failed (backend I/O, missing object,
    malformed payload, or an attempt to checkpoint non-checkpointable state)."""


class ReadOnlySessionError(ReproError):
    """A mutation was attempted on a session opened read-only for serving."""


class ServeError(ReproError):
    """A query-service request failed (bad wire payload, server-side error)."""
