"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so that callers can
catch the whole family with a single ``except`` clause while still being able
to discriminate finer-grained failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation schema is inconsistent or a record does not match it."""


class QueryError(ReproError):
    """A query is malformed or references unknown attributes/descriptors."""


class BackgroundKnowledgeError(ReproError):
    """A background knowledge definition is invalid (bad partitions, overlaps...)."""


class SummaryError(ReproError):
    """An operation on summaries or summary hierarchies is invalid."""


class NetworkError(ReproError):
    """A P2P network/topology/simulation operation failed."""


class ProtocolError(ReproError):
    """A summary-management protocol invariant was violated."""


class ConfigurationError(ReproError):
    """An experiment or protocol configuration is invalid."""


class StoreError(ReproError):
    """A persistence-store operation failed (backend I/O, missing object,
    malformed payload, or an attempt to checkpoint non-checkpointable state)."""


class ReadOnlySessionError(ReproError):
    """A mutation was attempted on a session opened read-only for serving."""


class ServeError(ReproError):
    """A query-service request failed (bad wire payload, server-side error)."""


class ServeOverloadError(ServeError):
    """The service shed the request instead of queueing it unboundedly.

    Raised client-side for an HTTP 503 carrying a ``Retry-After`` header;
    ``retry_after`` is the server's suggested wait in seconds.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ServeDeadlineError(ServeError):
    """The request exceeded its deadline and was abandoned (HTTP 504).

    The answer was never completed, so nothing wrong or truncated was
    returned — the request simply failed typed.
    """


class WorkerCrashError(ServeError):
    """The worker answering the request died mid-flight (HTTP 502).

    Answers are deterministic, so the request can safely be retried — this
    error guarantees no partial or wrong answer was delivered.
    """
