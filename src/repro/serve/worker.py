"""The worker half of supervised serving: one process, one read-only restore.

``python -m repro.serve.worker --store S --name N`` restores the checkpoint
read-only (store opened with ``exclusive=False``, so any number of workers
coexist with at most one writer), starts a :class:`SummaryQueryServer` on an
ephemeral port, and prints exactly one handshake line on stdout::

    READY port=<port> pid=<pid>

The supervisor parses that line to learn where the worker listens; everything
after it goes through HTTP.  The worker then serves until one of:

* a ``POST /shutdown`` request (the supervisor's graceful path),
* ``SIGTERM`` (the supervisor's firm path — finishes the in-flight requests
  the daemon threads are writing, then exits cleanly), or
* ``SIGKILL`` (a crash, the chaos harness's weapon of choice — the supervisor
  notices the exit and restarts a fresh worker; the read-only discipline
  guarantees the replacement answers byte-identically).

Because every worker is a *process*, a fleet of them executes protocol work
truly in parallel — this is what finally breaks the single-process GIL
ceiling the serve benchmarks documented.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import Optional, Sequence

from repro.exceptions import ReproError

#: The stdout handshake prefix the supervisor greps for.
READY_PREFIX = "READY"


def _background_from_name(name: Optional[str]):
    """Resolve a named background knowledge (real-content checkpoints)."""
    if name is None:
        return None
    if name == "medical":
        from repro.fuzzy.vocabularies import medical_background_knowledge

        return medical_background_knowledge()
    raise ReproError(f"unknown background knowledge {name!r} (try: medical)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve.worker",
        description="One supervised serve worker: restore a checkpoint "
        "read-only and answer queries until stopped.",
    )
    parser.add_argument("--store", required=True, help="store path (dir or .sqlite)")
    parser.add_argument("--name", default="session", help="checkpoint name")
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (default 0: ephemeral)"
    )
    parser.add_argument(
        "--background",
        default=None,
        help="named background knowledge for real-content checkpoints "
        "(e.g. 'medical'); planned checkpoints need none",
    )
    parser.add_argument(
        "--no-obs", action="store_true", help="serve uninstrumented"
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.serve.server import SummaryQueryServer
    from repro.store.checkpoint import open_readonly_session

    args = build_parser().parse_args(argv)
    session = open_readonly_session(
        args.store, name=args.name, background=_background_from_name(args.background)
    )
    kwargs = {}
    if args.no_obs:
        kwargs["observability"] = None
    server = SummaryQueryServer(
        (args.host, args.port),
        session,
        checkpoint_name=args.name,
        quiet=True,
        close_session_on_stop=True,
        **kwargs,
    )

    # SIGTERM = the supervisor asking firmly.  shutdown() must not run on the
    # serve_forever thread (it would deadlock waiting for itself), so hand it
    # to a helper thread and let serve_forever return.
    def _on_sigterm(signum, frame):  # noqa: ARG001 - signal API
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _on_sigterm)

    port = server.server_address[1]
    print(f"{READY_PREFIX} port={port} pid={os.getpid()}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.server_close()
        if not session.closed:
            session.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
