"""Crash-safe serving: a supervised fleet of worker processes, one front port.

The single-process daemon (:mod:`repro.serve.server`) is GIL-bound: pooling
sessions inside one CPython process measures ~1.0x q/s because protocol work
is pure Python.  The :class:`Supervisor` takes the step the benchmarks have
been pointing at: it forks ``N`` **worker processes** (each one
``python -m repro.serve.worker`` over its own read-only restore of the same
checkpoint; the store is opened with ``exclusive=False`` throughout, so the
fleet coexists with at most one writer), and fronts them with a proxy on a
single port.  Because answers are deterministic by construction — every
worker rolls its volatile state back after each request — which process
answers a request is unobservable, and process-level recovery can be
verified *byte for byte*.

What the front process adds on top of raw forwarding:

* **Supervision** — a health loop polls every worker; a crashed worker
  (nonzero exit, SIGKILL) or a hung one (missed heartbeats) is restarted
  with capped exponential backoff.  Restart counts and per-worker liveness
  are reported on ``/health``.
* **Deadlines** — every query-shaped request carries a budget
  (``deadline_ms``, overridable per request via the ``X-Repro-Deadline-Ms``
  header).  A request that exceeds it fails typed (HTTP 504,
  :class:`~repro.exceptions.ServeDeadlineError`) instead of hanging.
* **Load shedding** — at most ``max_inflight`` requests execute at once;
  beyond that the supervisor answers HTTP 503 with a ``Retry-After`` header
  (:class:`~repro.exceptions.ServeOverloadError` client-side) instead of
  queueing unboundedly.
* **Zero-wrong-answer recovery** — a forward interrupted by a worker crash
  is transparently retried on another live worker (safe: answers are
  deterministic); if none is available within the deadline the request fails
  typed (HTTP 502, :class:`~repro.exceptions.WorkerCrashError`).  A client
  never sees a wrong or truncated answer, only a success or a typed failure.
* **Exact response caching** — a :class:`~repro.serve.cache.ResponseCache`
  keyed by (canonical request, checkpoint digest) sits in front of worker
  dispatch; hits are provably correct because identical requests against the
  same checkpoint bytes answer identically.
* **Merged metrics** — each worker's
  :class:`~repro.obs.registry.MetricsRegistry` snapshot is polled over
  ``/metrics_snapshot`` and folded into the supervisor's ``/metrics`` via
  ``merge_snapshot``, so one Prometheus page aggregates the whole fleet
  (crashed workers keep their last-polled counters through a retired
  registry).
* **Graceful drain** — ``/shutdown`` (or :meth:`Supervisor.stop`) stops
  admitting new work, lets in-flight requests finish, then shuts workers
  down cleanly (HTTP shutdown, then SIGTERM, then SIGKILL).

Start one from the command line with ``repro serve --store S --workers 4``
or in-process for tests::

    sup = Supervisor(store, name="session", workers=2).start()
    client = ServeClient(sup.url)
    ...
    sup.stop()
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.exceptions import ServeError
from repro.obs.registry import MetricsRegistry
from repro.serve.cache import ResponseCache, checkpoint_digest
from repro.serve.server import MAX_REQUEST_BYTES
from repro.serve.worker import READY_PREFIX

#: Query-shaped endpoints the supervisor proxies to workers (everything else
#: is answered by the supervisor itself).
PROXIED_PATHS = frozenset({"/query", "/query_batch", "/staleness"})

#: Worker states as reported on ``/health``.
STARTING, LIVE, BACKOFF, STOPPED = "starting", "live", "backoff", "stopped"


class WorkerHandle:
    """One supervised worker process and its bookkeeping."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.state = STARTING
        self.restarts = 0
        self.heartbeat_misses = 0
        self.next_restart_at = 0.0
        self.last_snapshot: Optional[Dict[str, Any]] = None

    @property
    def pid(self) -> Optional[int]:
        return None if self.process is None else self.process.pid

    @property
    def url(self) -> Optional[str]:
        return None if self.port is None else f"http://127.0.0.1:{self.port}"

    def payload(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "pid": self.pid,
            "port": self.port,
            "state": self.state,
            "restarts": self.restarts,
            "heartbeat_misses": self.heartbeat_misses,
        }


class Supervisor:
    """Fork, front, health-check and restart a fleet of serve workers."""

    def __init__(
        self,
        store: str,
        name: str = "session",
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        deadline_ms: float = 10_000.0,
        max_inflight: int = 32,
        cache_size: int = 256,
        background: Optional[str] = None,
        heartbeat_interval: float = 0.25,
        heartbeat_misses: int = 4,
        restart_backoff_base: float = 0.1,
        restart_backoff_cap: float = 5.0,
        startup_timeout: float = 120.0,
        drain_timeout: float = 10.0,
        quiet: bool = True,
        python: str = sys.executable,
    ) -> None:
        if workers < 1:
            raise ServeError(f"a supervisor needs at least 1 worker, got {workers}")
        if max_inflight < 1:
            raise ServeError(f"max_inflight must be >= 1, got {max_inflight}")
        if deadline_ms <= 0:
            raise ServeError(f"deadline_ms must be > 0, got {deadline_ms}")
        self.store = str(store)
        self.name = name
        self.host = host
        self.requested_port = port
        self.deadline_ms = float(deadline_ms)
        self.max_inflight = int(max_inflight)
        self.background = background
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_miss_budget = heartbeat_misses
        self.restart_backoff_base = restart_backoff_base
        self.restart_backoff_cap = restart_backoff_cap
        self.startup_timeout = startup_timeout
        self.drain_timeout = drain_timeout
        self.quiet = quiet
        self.python = python

        self.workers: List[WorkerHandle] = [WorkerHandle(i) for i in range(workers)]
        self.registry = MetricsRegistry()
        self._retired = MetricsRegistry()  # final counters of dead incarnations
        self.checkpoint_digest = ""
        self.cache = ResponseCache(cache_size)
        self._lock = threading.Lock()
        self._inflight = 0
        self._rr = 0
        self._shed_total = 0
        self._retries_total = 0
        self._restarts_total = 0
        self._draining = False
        self._stopped = False
        self.started_at = 0.0
        self._front: Optional[ThreadingHTTPServer] = None
        self._front_thread: Optional[threading.Thread] = None
        self._health_thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._stop_thread: Optional[threading.Thread] = None

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def url(self) -> str:
        if self._front is None:
            raise ServeError("supervisor is not started")
        host, port = self._front.server_address[0], self._front.server_address[1]
        return f"http://{host}:{port}"

    def start(self) -> "Supervisor":
        """Digest the checkpoint, spawn the fleet, open the front port."""
        if self._front is not None:
            raise ServeError("supervisor already started")
        from repro.store.backend import open_store

        with open_store(self.store, check_same_thread=False, exclusive=False) as backend:
            digest = checkpoint_digest(backend, self.name)
        self.checkpoint_digest = digest
        self.cache.checkpoint = digest

        # Launch every worker before waiting on any handshake: the expensive
        # part of a worker's startup (restoring the checkpoint) then runs in
        # parallel across the fleet.
        for handle in self.workers:
            self._launch(handle)
        deadline = time.monotonic() + self.startup_timeout
        for handle in self.workers:
            self._await_ready(handle, deadline)

        self.started_at = time.time()
        self._front = _FrontServer((self.host, self.requested_port), self)
        self._front_thread = threading.Thread(
            target=self._front.serve_forever, name="repro-supervisor", daemon=True
        )
        self._front_thread.start()
        self._health_thread = threading.Thread(
            target=self._health_loop, name="repro-supervisor-health", daemon=True
        )
        self._health_thread.start()
        return self

    def _worker_command(self) -> List[str]:
        command = [
            self.python,
            "-m",
            "repro.serve.worker",
            "--store",
            self.store,
            "--name",
            self.name,
            "--port",
            "0",
        ]
        if self.background is not None:
            command += ["--background", self.background]
        return command

    def _launch(self, handle: WorkerHandle) -> None:
        """Start the worker process (non-blocking; handshake comes later)."""
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing else f"{src_root}{os.pathsep}{existing}"
        handle.process = subprocess.Popen(
            self._worker_command(),
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL if self.quiet else None,
            env=env,
            text=True,
        )
        handle.state = STARTING
        handle.port = None
        handle.heartbeat_misses = 0

    def _await_ready(self, handle: WorkerHandle, deadline: float) -> None:
        """Parse the worker's ``READY port=... pid=...`` handshake line."""
        process = handle.process
        assert process is not None and process.stdout is not None
        line_box: List[str] = []

        def read_line() -> None:
            line_box.append(process.stdout.readline())

        reader = threading.Thread(target=read_line, daemon=True)
        reader.start()
        reader.join(max(0.0, deadline - time.monotonic()))
        line = line_box[0] if line_box else ""
        if not line.startswith(READY_PREFIX):
            process.kill()
            raise ServeError(
                f"worker {handle.index} failed to start "
                f"(expected {READY_PREFIX!r} handshake, got {line!r}; "
                f"exit code {process.poll()})"
            )
        fields = dict(
            part.split("=", 1) for part in line.strip().split()[1:] if "=" in part
        )
        handle.port = int(fields["port"])
        handle.state = LIVE

    def stop(self) -> None:
        """Graceful drain: stop admitting, finish in-flight, stop the fleet."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            self._draining = True
        self._stop_event.set()

        # Let in-flight requests finish before tearing anything down.
        drain_deadline = time.monotonic() + self.drain_timeout
        while time.monotonic() < drain_deadline:
            with self._lock:
                if self._inflight == 0:
                    break
            time.sleep(0.02)

        if self._front is not None:
            self._front.shutdown()
            if self._front_thread is not None:
                self._front_thread.join(timeout=5.0)
            self._front.server_close()
        if self._health_thread is not None:
            self._health_thread.join(timeout=2 * self.heartbeat_interval + 5.0)

        for handle in self.workers:
            self._stop_worker(handle)

    def request_shutdown(self) -> None:
        """Asynchronous :meth:`stop` (used by the ``/shutdown`` endpoint)."""
        self._stop_thread = threading.Thread(target=self.stop, daemon=True)
        self._stop_thread.start()

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for serving — and any in-flight teardown — to finish."""
        if self._front_thread is not None:
            self._front_thread.join(timeout)
        stopper = self._stop_thread
        if stopper is not None and stopper is not threading.current_thread():
            stopper.join(timeout)

    def _stop_worker(self, handle: WorkerHandle) -> None:
        process = handle.process
        if process is None:
            handle.state = STOPPED
            return
        if process.poll() is None and handle.url is not None:
            try:  # polite first: the worker drains its own in-flight writes
                request = urllib.request.Request(
                    handle.url + "/shutdown", data=b"{}", method="POST"
                )
                urllib.request.urlopen(request, timeout=2.0).read()
            except Exception:  # noqa: BLE001 - any failure falls through to signals
                pass
        try:
            process.wait(timeout=3.0)
        except subprocess.TimeoutExpired:
            process.terminate()
            try:
                process.wait(timeout=2.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                process.kill()
                process.wait(timeout=2.0)
        if process.stdout is not None:
            process.stdout.close()
        handle.state = STOPPED

    # -- supervision -------------------------------------------------------------------

    def backoff_delay(self, restarts: int) -> float:
        """Capped exponential restart delay: ``base * 2**n``, at most ``cap``."""
        return min(
            self.restart_backoff_cap, self.restart_backoff_base * (2.0 ** restarts)
        )

    def _health_loop(self) -> None:
        while not self._stop_event.wait(self.heartbeat_interval):
            for handle in self.workers:
                if self._stop_event.is_set():
                    return
                self._check_worker(handle)
            with self._lock:
                live = sum(1 for h in self.workers if h.state == LIVE)
            self.registry.set_gauge("repro_supervisor_workers_live", live)

    def _check_worker(self, handle: WorkerHandle) -> None:
        with self._lock:
            state = handle.state
        if state == STOPPED:
            return
        process = handle.process
        if state == BACKOFF:
            if time.monotonic() >= handle.next_restart_at:
                self._restart(handle)
            return
        if process is None or process.poll() is not None:
            self._note_failure(handle, reason="exit")
            return
        # Heartbeat: poll the worker's snapshot endpoint (or /health when it
        # serves uninstrumented) — one round-trip doubles as liveness probe
        # and metrics collection.
        url = handle.url
        if url is None:
            return
        try:
            with urllib.request.urlopen(
                url + "/metrics_snapshot", timeout=max(1.0, 4 * self.heartbeat_interval)
            ) as response:
                payload = json.loads(response.read().decode("utf-8"))
            snapshot = payload.get("snapshot")
            with self._lock:
                handle.heartbeat_misses = 0
                if isinstance(snapshot, dict):
                    handle.last_snapshot = snapshot
        except urllib.error.HTTPError as exc:
            # An HTTP *error response* still proves the worker is alive and
            # serving (e.g. /metrics_snapshot 400s when obs is disabled).
            exc.close()
            with self._lock:
                handle.heartbeat_misses = 0
        except Exception:  # noqa: BLE001 - any probe failure is a miss
            with self._lock:
                handle.heartbeat_misses += 1
                missed = handle.heartbeat_misses >= self.heartbeat_miss_budget
            if missed:
                # Hung (or unreachable) worker: treat like a crash.  SIGKILL
                # is safe — the read-only discipline means no state is lost.
                if process.poll() is None:
                    process.kill()
                self._note_failure(handle, reason="heartbeat")

    def _note_failure(self, handle: WorkerHandle, reason: str) -> None:
        """Mark a worker dead and schedule its restart with backoff."""
        with self._lock:
            if handle.state in (BACKOFF, STOPPED):
                return
            handle.state = BACKOFF
            handle.next_restart_at = time.monotonic() + self.backoff_delay(
                handle.restarts
            )
            handle.restarts += 1
            self._restarts_total += 1
            if handle.last_snapshot is not None:
                self._retired.merge_snapshot(handle.last_snapshot)
                handle.last_snapshot = None
        self.registry.inc("repro_supervisor_worker_failures_total", reason=reason)
        process = handle.process
        if process is not None and process.stdout is not None:
            process.stdout.close()

    def _restart(self, handle: WorkerHandle) -> None:
        try:
            self._launch(handle)
            self._await_ready(
                handle, time.monotonic() + self.startup_timeout
            )
        except Exception:  # noqa: BLE001 - respawn failures reschedule
            with self._lock:
                handle.state = BACKOFF
                handle.next_restart_at = time.monotonic() + self.backoff_delay(
                    handle.restarts
                )
                handle.restarts += 1
            return
        self.registry.inc("repro_supervisor_restarts_total")

    # -- dispatch ----------------------------------------------------------------------

    def _pick_worker(self) -> Optional[WorkerHandle]:
        with self._lock:
            live = [h for h in self.workers if h.state == LIVE]
            if not live:
                return None
            handle = live[self._rr % len(live)]
            self._rr += 1
            return handle

    def _shed(self, reason: str, retry_after: float = 1.0) -> Tuple[int, str, bytes, Dict[str, str]]:
        with self._lock:
            self._shed_total += 1
        self.registry.inc("repro_supervisor_shed_total", reason=reason)
        body = json.dumps(
            {
                "error": f"supervisor shed the request ({reason}); retry after "
                f"{retry_after:g}s",
                "type": "ServeOverloadError",
                "retry_after": retry_after,
            }
        ).encode("utf-8")
        return 503, "application/json", body, {"Retry-After": f"{retry_after:g}"}

    def dispatch(
        self, method: str, path: str, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        """Admission control + cache + forward; returns a full response.

        The returned tuple is ``(status, content_type, body, extra_headers)``.
        Every failure mode maps to a *typed* JSON error body: deadline → 504
        ``ServeDeadlineError``, overload → 503 ``ServeOverloadError`` (with
        ``Retry-After``), worker crash with no recovery path → 502
        ``WorkerCrashError``.  A response is either the worker's bytes,
        verbatim, or one of those typed failures — never a truncated answer.
        """
        self.registry.inc("repro_supervisor_requests_total", endpoint=path)
        with self._lock:
            if self._draining:
                shed_reason: Optional[str] = "draining"
            elif self._inflight >= self.max_inflight:
                shed_reason = "max_inflight"
            else:
                shed_reason = None
                self._inflight += 1
        if shed_reason is not None:
            return self._shed(shed_reason)
        try:
            return self._dispatch_admitted(method, path, body, headers)
        finally:
            with self._lock:
                self._inflight -= 1

    def _dispatch_admitted(
        self, method: str, path: str, body: bytes, headers: Dict[str, str]
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        cached = self.cache.lookup(method, path, body)
        if cached is not None:
            self.registry.inc("repro_serve_cache_hits_total")
            status, content_type, payload = cached
            return status, content_type, payload, {"X-Repro-Cache": "hit"}
        self.registry.inc("repro_serve_cache_misses_total")

        budget_ms = self.deadline_ms
        override = headers.get("X-Repro-Deadline-Ms")
        if override:
            try:
                budget_ms = min(budget_ms, float(override))
            except ValueError:
                pass
        started = time.monotonic()
        deadline = started + budget_ms / 1000.0

        forward_headers = {"Content-Type": "application/json"}
        for name in ("X-Repro-Trace-Id", "X-Repro-Parent-Id"):
            if headers.get(name):
                forward_headers[name] = headers[name]

        attempts = 0
        max_attempts = max(2, len(self.workers) + 1)
        while attempts < max_attempts:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self._deadline_response(budget_ms)
            handle = self._pick_worker()
            if handle is None:
                return self._shed("no_live_worker", retry_after=self.backoff_delay(0) + 0.5)
            attempts += 1
            try:
                status, content_type, payload = self._forward(
                    handle, method, path, body, forward_headers, remaining
                )
            except _WorkerGone:
                # The worker died under the request (or was unreachable).
                # Answers are deterministic, so re-asking another worker is
                # *provably* safe — the retry either returns the identical
                # bytes or fails typed.
                self._note_failure(handle, reason="request")
                with self._lock:
                    self._retries_total += 1
                self.registry.inc("repro_supervisor_retries_total")
                continue
            except _DeadlineHit:
                return self._deadline_response(budget_ms)
            if status == 200:
                self.cache.store(method, path, body, status, content_type, payload)
            return status, content_type, payload, {}
        body_bytes = json.dumps(
            {
                "error": "request interrupted by worker crashes and not "
                f"recoverable within its deadline ({attempts} attempts)",
                "type": "WorkerCrashError",
            }
        ).encode("utf-8")
        return 502, "application/json", body_bytes, {}

    def _deadline_response(self, budget_ms: float) -> Tuple[int, str, bytes, Dict[str, str]]:
        self.registry.inc("repro_supervisor_deadline_total")
        body = json.dumps(
            {
                "error": f"request exceeded its {budget_ms:g}ms deadline and "
                "was abandoned (no partial answer was produced)",
                "type": "ServeDeadlineError",
            }
        ).encode("utf-8")
        return 504, "application/json", body, {}

    def _forward(
        self,
        handle: WorkerHandle,
        method: str,
        path: str,
        body: bytes,
        headers: Dict[str, str],
        timeout: float,
    ) -> Tuple[int, str, bytes]:
        url = handle.url
        if url is None:
            raise _WorkerGone()
        request = urllib.request.Request(
            url + path,
            data=body if method == "POST" else None,
            headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                payload = response.read()
                content_type = response.headers.get("Content-Type", "application/json")
                return response.status, content_type, payload
        except urllib.error.HTTPError as exc:
            # Typed worker-side errors (400s...) relay verbatim to the client.
            payload = exc.read()
            content_type = exc.headers.get("Content-Type", "application/json")
            return exc.code, content_type, payload
        except urllib.error.URLError as exc:
            if isinstance(exc.reason, (socket.timeout, TimeoutError)):
                raise _DeadlineHit() from exc
            raise _WorkerGone() from exc
        except (socket.timeout, TimeoutError) as exc:
            raise _DeadlineHit() from exc
        except (ConnectionError, http.client.HTTPException) as exc:
            raise _WorkerGone() from exc

    # -- introspection -----------------------------------------------------------------

    def health_payload(self) -> Dict[str, Any]:
        with self._lock:
            workers = [handle.payload() for handle in self.workers]
            live = sum(1 for w in workers if w["state"] == LIVE)
            payload = {
                "status": "ok" if live == len(workers) else "degraded",
                "role": "supervisor",
                "checkpoint": self.name,
                "checkpoint_digest": self.checkpoint_digest,
                "workers": workers,
                "workers_live": live,
                "restarts_total": self._restarts_total,
                "shed_total": self._shed_total,
                "retries_total": self._retries_total,
                "inflight": self._inflight,
                "max_inflight": self.max_inflight,
                "deadline_ms": self.deadline_ms,
                "draining": self._draining,
                "cache": self.cache.stats_payload(),
            }
        payload["uptime_seconds"] = time.time() - self.started_at
        return payload

    def merged_metrics(self) -> MetricsRegistry:
        """One registry for the whole fleet: supervisor + every worker.

        Live workers contribute their latest polled snapshot (re-polled here
        for freshness when reachable); dead incarnations contribute the final
        snapshot captured before their crash, folded into the retired
        registry — counters never go backwards just because a worker died.
        """
        merged = MetricsRegistry()
        cache_stats = self.cache.stats_payload()
        self.registry.set_gauge("repro_serve_cache_size", cache_stats["size"])
        self.registry.set_gauge("repro_supervisor_inflight", self._inflight)
        with self._lock:
            live = sum(1 for h in self.workers if h.state == LIVE)
        self.registry.set_gauge("repro_supervisor_workers_live", live)
        merged.merge_snapshot(self.registry.snapshot())
        merged.merge_snapshot(self._retired.snapshot())
        for handle in self.workers:
            snapshot = None
            url = handle.url
            if handle.state == LIVE and url is not None:
                try:
                    with urllib.request.urlopen(
                        url + "/metrics_snapshot", timeout=2.0
                    ) as response:
                        payload = json.loads(response.read().decode("utf-8"))
                    snapshot = payload.get("snapshot")
                    with self._lock:
                        if isinstance(snapshot, dict):
                            handle.last_snapshot = snapshot
                except Exception:  # noqa: BLE001 - fall back to the last poll
                    snapshot = None
            if snapshot is None:
                with self._lock:
                    snapshot = handle.last_snapshot
            if isinstance(snapshot, dict):
                merged.merge_snapshot(snapshot)
        return merged


class _WorkerGone(Exception):
    """Internal: the forwarded request died with its worker."""


class _DeadlineHit(Exception):
    """Internal: the forwarded request ran out of deadline budget."""


class _FrontServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], supervisor: Supervisor) -> None:
        super().__init__(address, _FrontHandler)
        self.supervisor = supervisor


class _FrontHandler(BaseHTTPRequestHandler):
    server: _FrontServer

    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.supervisor.quiet:
            super().log_message(format, *args)

    def _respond(
        self,
        status: int,
        body: bytes,
        content_type: str = "application/json",
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _respond_json(self, status: int, payload: Dict[str, Any]) -> None:
        self._respond(status, json.dumps(payload).encode("utf-8"))

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        supervisor = self.server.supervisor
        path = urlsplit(self.path).path
        if path == "/health":
            self._respond_json(200, supervisor.health_payload())
        elif path == "/stats":
            self._respond_json(200, supervisor.health_payload())
        elif path == "/metrics":
            text = supervisor.merged_metrics().render_prometheus()
            self._respond(
                200,
                text.encode("utf-8"),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        else:
            self._respond_json(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        supervisor = self.server.supervisor
        path = urlsplit(self.path).path
        if path == "/shutdown":
            self._respond_json(200, {"status": "shutting down"})
            self.wfile.flush()
            supervisor.request_shutdown()
            return
        if path not in PROXIED_PATHS:
            self._respond_json(404, {"error": f"unknown path {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_REQUEST_BYTES:
            self._respond_json(
                400,
                {
                    "error": f"request body of {length} bytes exceeds the "
                    f"{MAX_REQUEST_BYTES}-byte limit",
                    "type": "ServeError",
                },
            )
            return
        body = self.rfile.read(length) if length else b""
        headers = {name: value for name, value in self.headers.items()}
        try:
            status, content_type, payload, extra = supervisor.dispatch(
                "POST", path, body, headers
            )
        except Exception as exc:  # noqa: BLE001 - the front must not die
            self._respond_json(
                500, {"error": str(exc), "type": type(exc).__name__}
            )
            return
        self._respond(status, payload, content_type=content_type, extra_headers=extra)


def start_supervisor(store: str, **kwargs: Any) -> Supervisor:
    """Build and start a :class:`Supervisor`; returns it once serving."""
    return Supervisor(store, **kwargs).start()


__all__ = [
    "Supervisor",
    "WorkerHandle",
    "start_supervisor",
    "PROXIED_PATHS",
]
