"""Crash-fault injection for supervised serving.

The protocol-level fault layer (:mod:`repro.protocol.faults`) drops and
delays *messages*; this module kills *processes*.  :class:`ChaosMonkey`
SIGKILLs live workers of a :class:`~repro.serve.supervisor.Supervisor` on a
seeded schedule — mid-request, with no warning, exactly like an OOM kill or
a hardware fault — so tests can assert the supervised fleet's contract under
the worst crash mode the operating system offers:

* every request that *completes* returns bytes identical to a fresh local
  restore of the same checkpoint (zero wrong answers);
* a request interrupted beyond recovery fails **typed**
  (:class:`~repro.exceptions.WorkerCrashError` /
  :class:`~repro.exceptions.ServeOverloadError`), never with a truncated or
  corrupt body;
* availability returns within the restart-backoff budget — the supervisor
  respawns what the monkey kills.

Everything is driven by ``random.Random(seed)``, so a failing schedule
replays exactly.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Any, Dict, List, Optional

from repro.serve.supervisor import LIVE, Supervisor


class ChaosMonkey:
    """SIGKILL live workers of a supervisor on a seeded random schedule."""

    def __init__(
        self,
        supervisor: Supervisor,
        seed: int = 0,
        min_interval: float = 0.2,
        max_interval: float = 0.8,
        max_kills: Optional[int] = None,
    ) -> None:
        if min_interval <= 0 or max_interval < min_interval:
            raise ValueError(
                f"need 0 < min_interval <= max_interval, got "
                f"{min_interval!r}..{max_interval!r}"
            )
        self.supervisor = supervisor
        self.rng = random.Random(seed)
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.max_kills = max_kills
        #: Every kill that happened: {"at": wall-clock, "index": ..., "pid": ...}.
        self.kills: List[Dict[str, Any]] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def kill_once(self) -> Optional[int]:
        """SIGKILL one randomly chosen live worker *now*.

        Returns the worker's index, or ``None`` when no worker is live (the
        whole fleet may be mid-restart — the monkey waits its next turn).
        """
        live = [h for h in self.supervisor.workers if h.state == LIVE]
        if not live:
            return None
        handle = self.rng.choice(live)
        process = handle.process
        if process is None or process.poll() is not None:
            return None
        pid = process.pid
        process.kill()  # SIGKILL on POSIX: no handler runs, no goodbye
        self.kills.append({"at": time.time(), "index": handle.index, "pid": pid})
        return handle.index

    def _loop(self) -> None:
        while not self._stop.is_set():
            delay = self.rng.uniform(self.min_interval, self.max_interval)
            if self._stop.wait(delay):
                return
            self.kill_once()
            if self.max_kills is not None and len(self.kills) >= self.max_kills:
                return

    def start(self) -> "ChaosMonkey":
        """Run the kill schedule on a background thread until :meth:`stop`."""
        if self._thread is not None:
            raise RuntimeError("chaos monkey already started")
        self._thread = threading.Thread(
            target=self._loop, name="repro-chaos-monkey", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.max_interval + 5.0)
            self._thread = None

    def __enter__(self) -> "ChaosMonkey":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


__all__ = ["ChaosMonkey"]
