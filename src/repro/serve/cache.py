"""Exact response caching for the serve layer.

Served answers are **deterministic by construction**: a read-only session
rolls every piece of volatile state back after each request, so two identical
requests against the same checkpoint produce byte-identical response bodies
no matter when they run or which pool member / worker process answers them.
That turns response caching from a staleness trade-off into a provably
correct optimization — a cache hit *is* the answer the worker would have
computed.

:class:`ResponseCache` is a small thread-safe LRU keyed by
``(canonical request, checkpoint digest)``:

* the canonical request is the method, path and the request body re-encoded
  with sorted keys and compact separators, so two JSON spellings of the same
  request share one entry;
* the checkpoint digest (:func:`checkpoint_digest`) chains the SHA-256 of the
  checkpoint document through its delta-base chain, so a cache outlives a
  daemon restart only if it is truly answering for the same bytes.

Hits and misses are counted (and exported as
``repro_serve_cache_{hits,misses}_total`` by the supervisor); only successful
(HTTP 200) responses to query-shaped endpoints are admitted.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import StoreError

#: Endpoints whose successful responses are pure functions of the request.
CACHEABLE_PATHS = frozenset({"/query", "/query_batch", "/staleness"})


def canonical_request_key(method: str, path: str, body: bytes) -> str:
    """One canonical string per logical request.

    The body is parsed and re-encoded with sorted keys/compact separators so
    key order and whitespace do not split cache entries; a body that is not a
    JSON object keeps its raw bytes (the worker will reject it anyway, and a
    reject is not cached).
    """
    try:
        payload = json.loads(body.decode("utf-8")) if body else {}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (UnicodeDecodeError, ValueError):
        canonical = repr(body)
    return f"{method} {path} {canonical}"


def checkpoint_digest(backend: Any, name: str) -> str:
    """SHA-256 identity of a stored checkpoint, delta chain included.

    Two stores holding the same logical checkpoint digest identically; any
    change to the checkpoint document *or to any base it deltas against*
    changes the digest, so responses cached under it can never leak across
    different session states.
    """
    from repro.store.checkpoint import CHECKPOINT_KIND

    digest = hashlib.sha256()
    seen = set()
    current: Optional[str] = name
    while current is not None:
        if current in seen:
            raise StoreError(
                f"checkpoint {name!r} has a cyclic delta chain at {current!r}"
            )
        seen.add(current)
        document = backend.get(CHECKPOINT_KIND, current)
        encoded = json.dumps(document, sort_keys=True, separators=(",", ":"))
        digest.update(current.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(encoded.encode("utf-8"))
        digest.update(b"\x00")
        current = document.get("base")
    return digest.hexdigest()


class ResponseCache:
    """Thread-safe LRU of complete HTTP responses.

    Values are ``(status, content_type, body_bytes)`` triples — everything
    needed to replay the response verbatim, which keeps cached and uncached
    answers byte-identical by construction.
    """

    def __init__(self, capacity: int, checkpoint: str = "") -> None:
        if capacity < 0:
            raise StoreError(f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.checkpoint = checkpoint
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[int, str, bytes]]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def _key(self, method: str, path: str, body: bytes) -> str:
        return f"{self.checkpoint}|{canonical_request_key(method, path, body)}"

    def lookup(
        self, method: str, path: str, body: bytes
    ) -> Optional[Tuple[int, str, bytes]]:
        """The cached response for this request, or ``None`` (counted)."""
        if self.capacity == 0 or path not in CACHEABLE_PATHS:
            return None
        key = self._key(method, path, body)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def store(
        self,
        method: str,
        path: str,
        body: bytes,
        status: int,
        content_type: str,
        response: bytes,
    ) -> None:
        """Admit a successful response; evicts least-recently-used beyond capacity."""
        if (
            self.capacity == 0
            or path not in CACHEABLE_PATHS
            or status != 200
        ):
            return
        key = self._key(method, path, body)
        with self._lock:
            self._entries[key] = (status, content_type, response)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats_payload(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "size": len(self._entries),
                "capacity": self.capacity,
            }
