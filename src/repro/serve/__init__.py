"""``repro.serve``: an always-on query service over store-backed sessions.

The store can checkpoint and restore a whole session; this package serves
queries straight from such a checkpoint instead of rebuilding a network per
process.  Three layers:

* :mod:`repro.serve.wire` — the thin JSON wire schema: requests and typed
  answers (:class:`~repro.core.session.QueryAnswer`, staleness snapshots,
  degradation reports, approximate answers) encode to JSON and decode back to
  the same dataclasses, so a client-side ``==`` against a locally computed
  answer holds.
* :mod:`repro.serve.server` — a stdlib :class:`http.server.ThreadingHTTPServer`
  daemon over one shared
  :class:`~repro.core.session.ReadOnlyNetworkSession` (lazy hierarchy
  loading, per-request state rollback), answering ``/query``,
  ``/query_batch``, ``/staleness``, ``/health``, ``/stats`` and
  ``/shutdown``.
* :mod:`repro.serve.client` — a small urllib-based client reused by the CLI,
  the tests and the load benchmark, with bounded jittered retry on
  connection loss and typed overload/deadline/crash errors.
* :mod:`repro.serve.supervisor` / :mod:`repro.serve.worker` — crash-safe
  multi-process serving: a supervisor forks N worker processes (each its own
  read-only restore), fronts them on one port with deadlines, load shedding
  and an exact response cache, health-checks them and restarts crashes with
  capped exponential backoff.
* :mod:`repro.serve.chaos` — a seeded crash-fault harness that SIGKILLs
  workers mid-request so tests can prove the zero-wrong-answer contract.

Start one from the command line::

    repro serve --store run.sqlite --name session --port 8123 --workers 4

or in-process (tests, benchmarks)::

    from repro.serve import start_server, ServeClient
    server = start_server(session)                 # ephemeral port
    client = ServeClient(server.url)
    answers = client.query_batch(count=8)
    client.shutdown(); server.join()
"""

from repro.serve.cache import ResponseCache, checkpoint_digest
from repro.serve.chaos import ChaosMonkey
from repro.serve.client import ServeClient
from repro.serve.server import SummaryQueryServer, start_server
from repro.serve.supervisor import Supervisor, start_supervisor
from repro.serve.wire import (
    decode_answer,
    decode_staleness,
    encode_answer,
    encode_staleness,
)

__all__ = [
    "ServeClient",
    "SummaryQueryServer",
    "start_server",
    "Supervisor",
    "start_supervisor",
    "ChaosMonkey",
    "ResponseCache",
    "checkpoint_digest",
    "encode_answer",
    "decode_answer",
    "encode_staleness",
    "decode_staleness",
]
