"""The JSON wire schema of the query service.

Every value the service returns is one of the session façade's typed results
(:class:`~repro.core.session.QueryAnswer`,
:class:`~repro.core.protocol.StalenessSnapshot`, ...).  The codec here is
*lossless for equality*: ``decode_answer(encode_answer(a)) == a`` holds for
every answer a session can produce, because sets/frozensets/tuples are
rebuilt with the exact element types the dataclasses carry.  That is what
lets a client assert byte-identity between a served answer and one computed
against a local restore of the same checkpoint.

Queries travel in the same shape the checkpoint layer files them under
(relation / typed predicates / projection), so the two serialization surfaces
cannot drift apart.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.protocol import StalenessSnapshot
from repro.core.routing import (
    DomainQueryOutcome,
    QueryRoutingResult,
    RoutingPolicy,
)
from repro.core.session import DegradationReport, QueryAnswer
from repro.database.query import SelectionQuery
from repro.exceptions import ServeError
from repro.querying.aggregation import AnswerClass, ApproximateAnswer
from repro.store.checkpoint import _query_from_payload, _query_payload


# -- queries ----------------------------------------------------------------------


def encode_query(query: SelectionQuery) -> Dict[str, Any]:
    """A :class:`SelectionQuery` as a JSON-able payload (checkpoint shape)."""
    return _query_payload(query)


def decode_query(payload: Dict[str, Any]) -> SelectionQuery:
    try:
        return _query_from_payload(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed query payload: {exc}") from exc


# -- routing ----------------------------------------------------------------------


def _encode_outcome(outcome: DomainQueryOutcome) -> Dict[str, Any]:
    return {
        "domain_id": outcome.domain_id,
        "relevant_peers": sorted(outcome.relevant_peers),
        "contacted_peers": sorted(outcome.contacted_peers),
        "responding_peers": sorted(outcome.responding_peers),
        "false_positives": sorted(outcome.false_positives),
        "false_negatives": sorted(outcome.false_negatives),
        "messages": outcome.messages,
    }


def _decode_outcome(payload: Dict[str, Any]) -> DomainQueryOutcome:
    return DomainQueryOutcome(
        domain_id=payload["domain_id"],
        relevant_peers=set(payload["relevant_peers"]),
        contacted_peers=set(payload["contacted_peers"]),
        responding_peers=set(payload["responding_peers"]),
        false_positives=set(payload["false_positives"]),
        false_negatives=set(payload["false_negatives"]),
        messages=int(payload["messages"]),
    )


def encode_routing(routing: QueryRoutingResult) -> Dict[str, Any]:
    return {
        "query_id": routing.query_id,
        "originator": routing.originator,
        "policy": routing.policy.value,
        "domain_outcomes": [_encode_outcome(o) for o in routing.domain_outcomes],
        "flooding_messages": routing.flooding_messages,
        "total_messages": routing.total_messages,
        "required_results": routing.required_results,
        "unreachable_domains": list(routing.unreachable_domains),
        "unreachable_probe_messages": routing.unreachable_probe_messages,
    }


def decode_routing(payload: Dict[str, Any]) -> QueryRoutingResult:
    return QueryRoutingResult(
        query_id=int(payload["query_id"]),
        originator=payload["originator"],
        policy=RoutingPolicy(payload["policy"]),
        domain_outcomes=[_decode_outcome(o) for o in payload["domain_outcomes"]],
        flooding_messages=int(payload["flooding_messages"]),
        total_messages=int(payload["total_messages"]),
        required_results=(
            None
            if payload["required_results"] is None
            else int(payload["required_results"])
        ),
        unreachable_domains=list(payload["unreachable_domains"]),
        unreachable_probe_messages=int(payload["unreachable_probe_messages"]),
    )


# -- staleness --------------------------------------------------------------------


def encode_staleness(snapshot: StalenessSnapshot) -> Dict[str, Any]:
    return {
        "query_id": snapshot.query_id,
        "relevant_count": snapshot.relevant_count,
        "worst_false_positives": snapshot.worst_false_positives,
        "worst_false_negatives": snapshot.worst_false_negatives,
        "real_false_positives": snapshot.real_false_positives,
        "real_false_negatives": snapshot.real_false_negatives,
    }


def decode_staleness(payload: Dict[str, Any]) -> StalenessSnapshot:
    return StalenessSnapshot(
        query_id=int(payload["query_id"]),
        relevant_count=int(payload["relevant_count"]),
        worst_false_positives=int(payload["worst_false_positives"]),
        worst_false_negatives=int(payload["worst_false_negatives"]),
        real_false_positives=int(payload["real_false_positives"]),
        real_false_negatives=int(payload["real_false_negatives"]),
    )


# -- degradation ------------------------------------------------------------------


def encode_degradation(report: DegradationReport) -> Dict[str, Any]:
    return {
        "unreachable_domains": list(report.unreachable_domains),
        "stale_described": dict(report.stale_described),
        "probe_messages": report.probe_messages,
    }


def decode_degradation(payload: Dict[str, Any]) -> DegradationReport:
    return DegradationReport(
        unreachable_domains=list(payload["unreachable_domains"]),
        stale_described={
            domain_id: int(count)
            for domain_id, count in payload["stale_described"].items()
        },
        probe_messages=int(payload["probe_messages"]),
    )


# -- approximate answers ----------------------------------------------------------


def _encode_answer_class(answer_class: AnswerClass) -> Dict[str, Any]:
    return {
        "interpretation": [
            [attribute, sorted(labels)]
            for attribute, labels in answer_class.interpretation
        ],
        "output": [
            [attribute, sorted(labels)]
            for attribute, labels in sorted(answer_class.output.items())
        ],
        "tuple_count": answer_class.tuple_count,
    }


def _decode_answer_class(payload: Dict[str, Any]) -> AnswerClass:
    return AnswerClass(
        interpretation=tuple(
            (attribute, frozenset(labels))
            for attribute, labels in payload["interpretation"]
        ),
        output={
            attribute: frozenset(labels) for attribute, labels in payload["output"]
        },
        tuple_count=float(payload["tuple_count"]),
    )


def encode_approximate(answer: ApproximateAnswer) -> Dict[str, Any]:
    return {
        "classes": [_encode_answer_class(c) for c in answer.classes],
        "select": list(answer.select),
    }


def decode_approximate(payload: Dict[str, Any]) -> ApproximateAnswer:
    return ApproximateAnswer(
        classes=[_decode_answer_class(c) for c in payload["classes"]],
        select=tuple(payload["select"]),
    )


# -- the full QueryAnswer ---------------------------------------------------------


def encode_answer(answer: QueryAnswer) -> Dict[str, Any]:
    """One :class:`QueryAnswer` as a JSON-able payload."""
    return {
        "routing": encode_routing(answer.routing),
        "answer": (
            None if answer.answer is None else encode_approximate(answer.answer)
        ),
        "staleness": (
            None if answer.staleness is None else encode_staleness(answer.staleness)
        ),
        "degradation": (
            None
            if answer.degradation is None
            else encode_degradation(answer.degradation)
        ),
        "query_messages": answer.query_messages,
        "update_messages": answer.update_messages,
        "posed_at": answer.posed_at,
    }


def decode_answer(payload: Dict[str, Any]) -> QueryAnswer:
    """Rebuild the typed :class:`QueryAnswer` a server encoded.

    Equality with a locally produced answer holds field for field — the
    decoded value is built from the same dataclasses with the same element
    types (sets of peer ids, frozensets of labels, enum policies).
    """
    try:
        return QueryAnswer(
            routing=decode_routing(payload["routing"]),
            answer=(
                None
                if payload["answer"] is None
                else decode_approximate(payload["answer"])
            ),
            staleness=(
                None
                if payload["staleness"] is None
                else decode_staleness(payload["staleness"])
            ),
            degradation=(
                None
                if payload["degradation"] is None
                else decode_degradation(payload["degradation"])
            ),
            query_messages=int(payload["query_messages"]),
            update_messages=int(payload["update_messages"]),
            posed_at=float(payload["posed_at"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed answer payload: {exc}") from exc


def decode_answers(payloads: List[Dict[str, Any]]) -> List[QueryAnswer]:
    return [decode_answer(payload) for payload in payloads]
