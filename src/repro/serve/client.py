"""A small urllib client for the query service.

:class:`ServeClient` is the single HTTP surface shared by the CLI, the
concurrency tests and the load benchmark.  Every method mirrors one session
call (`query`, ``query_batch``, ``staleness``...) and decodes the JSON body
back into the session's typed results via :mod:`repro.serve.wire`, so calling
code can compare a served answer with ``==`` against one computed locally.

Server-side failures (bad payloads, library errors) surface as
:class:`~repro.exceptions.ServeError` carrying the server's message and the
original exception type name.  Supervisor responses map to the typed
subclasses: HTTP 503 raises :class:`~repro.exceptions.ServeOverloadError`
(with the server's ``Retry-After``), 504 raises
:class:`~repro.exceptions.ServeDeadlineError`, 502 raises
:class:`~repro.exceptions.WorkerCrashError`.

Transport-level failures — connection refused while a server restarts,
connection reset when a worker dies under the request — are retried with
capped, jittered exponential backoff (``max_retries`` attempts, seeded for
reproducibility).  Retries are safe because served answers are
deterministic: the retried request returns the identical bytes or fails
typed.  ``/shutdown`` is never retried (a reset there usually means the
shutdown *worked*).  Retries performed are counted on
``client.retries_total`` and, when a registry is attached, as
``repro_client_retries_total``.

A client built with a :class:`~repro.obs.trace.Tracer` opens a span around
every request and ships its trace context in ``X-Repro-Trace-Id`` /
``X-Repro-Parent-Id`` headers; the server adopts that context, so the
client-side span and the server-side request span (and everything the
session does underneath) form one connected trace.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Optional, Sequence

from repro.core.routing import RoutingPolicy
from repro.core.session import QueryAnswer
from repro.core.protocol import StalenessSnapshot
from repro.database.query import SelectionQuery
from repro.exceptions import (
    ServeDeadlineError,
    ServeError,
    ServeOverloadError,
    WorkerCrashError,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import Tracer
from repro.serve import wire

DEFAULT_TIMEOUT = 30.0

#: Paths whose requests must never be re-sent: a connection reset during
#: ``/shutdown`` usually means the shutdown *succeeded*.
NO_RETRY_PATHS = frozenset({"/shutdown"})


class ServeClient:
    """Talk to one :class:`~repro.serve.server.SummaryQueryServer`."""

    def __init__(
        self,
        base_url: str,
        timeout: float = DEFAULT_TIMEOUT,
        tracer: Optional[Tracer] = None,
        max_retries: int = 2,
        retry_backoff_base: float = 0.05,
        retry_backoff_cap: float = 1.0,
        retry_seed: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        if tracer is not None and tracer.origin == "main":
            tracer.origin = "client"
        self.tracer = tracer
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap
        self.registry = registry
        self.retries_total = 0
        self._rng = random.Random(retry_seed)

    # -- transport ---------------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        if self.tracer is None:
            return self._request_inner(method, path, payload, {})
        with self.tracer.span(f"client {path}", {"method": method}) as span:
            headers = {
                "X-Repro-Trace-Id": span.trace_id,
                "X-Repro-Parent-Id": span.span_id,
            }
            return self._request_inner(method, path, payload, headers)

    def _request_inner(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]],
        extra_headers: Dict[str, str],
    ) -> Dict[str, Any]:
        data = None
        headers = {"Accept": "application/json", **extra_headers}
        if method == "POST":
            data = json.dumps(payload or {}).encode("utf-8")
            headers["Content-Type"] = "application/json"
        body = self._transport(method, path, data, headers)
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"query service returned invalid JSON: {exc}") from exc
        if not isinstance(decoded, dict):
            raise ServeError("query service returned a non-object JSON body")
        return decoded

    def _transport(
        self, method: str, path: str, data: Optional[bytes], headers: Dict[str, str]
    ) -> bytes:
        """One HTTP exchange with bounded, jittered retry on connection loss."""
        url = f"{self.base_url}{path}"
        retriable = path not in NO_RETRY_PATHS
        attempt = 0
        while True:
            request = urllib.request.Request(
                url, data=data, headers=headers, method=method
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as response:
                    return response.read()
            except urllib.error.HTTPError as exc:
                raise self._server_error(exc) from exc
            except (urllib.error.URLError, ConnectionError) as exc:
                reason = exc.reason if isinstance(exc, urllib.error.URLError) else exc
                lost = isinstance(reason, ConnectionError)
                if not (retriable and lost) or attempt >= self.max_retries:
                    raise ServeError(
                        f"cannot reach query service at {url}: {reason}"
                    ) from exc
                delay = min(
                    self.retry_backoff_cap,
                    self.retry_backoff_base * (2.0 ** attempt),
                )
                # Full jitter: uniform in (0, delay] keeps synchronized
                # clients from re-stampeding a restarting server in lockstep.
                time.sleep(delay * (0.5 + 0.5 * self._rng.random()))
                attempt += 1
                self.retries_total += 1
                if self.registry is not None:
                    self.registry.inc("repro_client_retries_total", path=path)

    @staticmethod
    def _server_error(exc: urllib.error.HTTPError) -> ServeError:
        message = f"query service returned HTTP {exc.code}"
        detail: Optional[Dict[str, Any]] = None
        try:
            parsed = json.loads(exc.read().decode("utf-8"))
            if isinstance(parsed, dict):
                detail = parsed
        except Exception:  # noqa: BLE001 - error bodies are best-effort
            detail = None
        kind = detail.get("type") if detail else None
        if detail and "error" in detail:
            suffix = f" [{kind}]" if kind else ""
            message = f"{message}: {detail['error']}{suffix}"
        if exc.code == 503 or kind == "ServeOverloadError":
            retry_after = 1.0
            header = exc.headers.get("Retry-After") if exc.headers else None
            for candidate in ((detail or {}).get("retry_after"), header):
                try:
                    retry_after = float(candidate)  # type: ignore[arg-type]
                    break
                except (TypeError, ValueError):
                    continue
            return ServeOverloadError(message, retry_after=retry_after)
        if exc.code == 504 or kind == "ServeDeadlineError":
            return ServeDeadlineError(message)
        if exc.code == 502 or kind == "WorkerCrashError":
            return WorkerCrashError(message)
        return ServeError(message)

    # -- request helpers ---------------------------------------------------------------

    @staticmethod
    def _query_options(
        policy: Optional[RoutingPolicy],
        required_results: Optional[int],
        max_domains: Optional[int],
        include_staleness: Optional[bool],
        include_answer: Optional[bool],
    ) -> Dict[str, Any]:
        options: Dict[str, Any] = {}
        if policy is not None:
            options["policy"] = policy.value
        if required_results is not None:
            options["required_results"] = required_results
        if max_domains is not None:
            options["max_domains"] = max_domains
        if include_staleness is not None:
            options["include_staleness"] = include_staleness
        if include_answer is not None:
            options["include_answer"] = include_answer
        return options

    # -- service surface ---------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        """Server stats; ``lazy`` holds hierarchy-cache hit/fetch/evict counts."""
        payload = self._request("GET", "/stats")
        lazy = payload.get("lazy")
        if isinstance(lazy, dict):
            # Decode to ints defensively: the wire carries JSON numbers.
            payload["lazy"] = {key: int(value) for key, value in lazy.items()}
        return payload

    def metrics(self) -> str:
        """The server's ``/metrics`` page, raw Prometheus text exposition."""
        return self._transport("GET", "/metrics", None, {}).decode("utf-8")

    def trace(self, limit: Optional[int] = None) -> Dict[str, Any]:
        """Tail of the server's trace ring: ``{"spans": [...], "emitted": N}``."""
        path = "/trace" if limit is None else f"/trace?limit={int(limit)}"
        return self._request("GET", path)

    def query(
        self,
        originator: Optional[str] = None,
        query: Optional[SelectionQuery] = None,
        query_id: Optional[int] = None,
        *,
        policy: Optional[RoutingPolicy] = None,
        required_results: Optional[int] = None,
        max_domains: Optional[int] = None,
        include_staleness: Optional[bool] = None,
        include_answer: Optional[bool] = None,
    ) -> QueryAnswer:
        payload = self._query_options(
            policy, required_results, max_domains, include_staleness, include_answer
        )
        if originator is not None:
            payload["originator"] = originator
        if query is not None:
            payload["query"] = wire.encode_query(query)
        if query_id is not None:
            payload["query_id"] = query_id
        body = self._request("POST", "/query", payload)
        return wire.decode_answer(body["answer"])

    def query_batch(
        self,
        count: Optional[int] = None,
        queries: Optional[Sequence[SelectionQuery]] = None,
        originators: Optional[Sequence[str]] = None,
        *,
        policy: Optional[RoutingPolicy] = None,
        required_results: Optional[int] = None,
        max_domains: Optional[int] = None,
        include_staleness: Optional[bool] = None,
        include_answer: Optional[bool] = None,
    ) -> List[QueryAnswer]:
        payload = self._query_options(
            policy, required_results, max_domains, include_staleness, include_answer
        )
        if count is not None:
            payload["count"] = count
        if queries is not None:
            payload["queries"] = [wire.encode_query(q) for q in queries]
        if originators is not None:
            payload["originators"] = list(originators)
        body = self._request("POST", "/query_batch", payload)
        return wire.decode_answers(body["answers"])

    def staleness(self, query_id: Optional[int] = None) -> StalenessSnapshot:
        payload: Dict[str, Any] = {}
        if query_id is not None:
            payload["query_id"] = query_id
        body = self._request("POST", "/staleness", payload)
        return wire.decode_staleness(body["staleness"])

    def staleness_batch(self, count: int) -> List[StalenessSnapshot]:
        body = self._request("POST", "/staleness", {"count": count})
        return [wire.decode_staleness(s) for s in body["snapshots"]]

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown")
