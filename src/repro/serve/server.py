"""The query-service daemon: HTTP/JSON over one shared read-only session.

A :class:`SummaryQueryServer` is a stdlib
:class:`~http.server.ThreadingHTTPServer` whose worker threads all answer
against the same :class:`~repro.core.session.ReadOnlyNetworkSession`.  The
session serializes protocol execution and rolls its bookkeeping back after
every request (see its docstring), so the daemon's answers are byte-identical
to a fresh restore of the checkpoint no matter how many clients hammer it or
in what order requests land.  Hierarchies are materialized lazily from the
snapshot store on first touch; ``/stats`` exposes the fetch/hit counters.

Endpoints (all JSON unless noted):

========  =============== ====================================================
method    path            body / answer
========  =============== ====================================================
GET       ``/health``     ``{"status": "ok", "peers": ..., "domains": ...}``
GET       ``/stats``      request counters + lazy-loading counters + uptime
GET       ``/metrics``    Prometheus text exposition of the metrics registry
GET       ``/trace``      tail of the in-memory span ring (``?limit=N``)
POST      ``/query``      one query -> one encoded ``QueryAnswer``
POST      ``/query_batch``  ``{"count": N}`` or ``{"queries": [...]}`` ->
                          ``{"answers": [...]}``
POST      ``/staleness``  ``{"query_id": id}`` or ``{"count": N}``
POST      ``/shutdown``   acknowledges, then stops the server cleanly
========  =============== ====================================================

Observability is on by default (an in-memory span ring plus the metrics
registry, installed on the shared session): every request runs under a span —
adopting the client's ``X-Repro-Trace-Id``/``X-Repro-Parent-Id`` headers when
present, so one trace follows a query from the client process through the
session lock, per-domain routing and hierarchy selection — and the registry
accumulates request latencies, lock wait/hold times and every protocol/store
series.  Pass ``observability=None`` (or ``repro serve --no-obs``) to run the
daemon uninstrumented.

Library errors surface as ``400`` with ``{"error": ..., "type": ...}``;
anything unexpected is a ``500``.  Use :func:`start_server` for an in-process
daemon on an ephemeral port (tests, benchmarks) and the ``repro serve`` CLI
command for a long-running one.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.core.routing import RoutingPolicy
from repro.core.session import ReadOnlyNetworkSession
from repro.exceptions import ReproError, ServeError
from repro.obs import Observability
from repro.serve import wire

#: Largest request body the daemon accepts (a query batch of thousands of
#: encoded queries fits comfortably; anything bigger is a client bug).
MAX_REQUEST_BYTES = 8 * 1024 * 1024

#: Sentinel: "no observability argument given" (the default builds a ring).
_DEFAULT_OBS = object()


class SessionPool:
    """Round-robin pool of read-only sessions restored from one checkpoint.

    A single :class:`~repro.core.session.ReadOnlyNetworkSession` serializes
    every request on its internal lock, which caps a multi-client daemon's
    throughput at one in-flight query.  A pool holds ``N`` independent
    restores of the *same* checkpoint — all sharing one store backend and
    one lazy :class:`~repro.store.lazy.HierarchySource` (see
    :func:`repro.store.checkpoint.open_readonly_session_pool`) — and hands
    requests out round-robin, so up to ``N`` requests execute their
    protocol work concurrently.  Every member answers byte-identically (the
    read-only rollback discipline guarantees it), so which member serves a
    request is unobservable to clients.

    The first member is the *primary*: it owns the shared backend when the
    pool was opened from a path, so :meth:`close` releases the others first
    and the primary last.
    """

    def __init__(self, sessions: Sequence[ReadOnlyNetworkSession]) -> None:
        if not sessions:
            raise ServeError("a session pool needs at least one session")
        self._sessions = list(sessions)
        self._lock = threading.Lock()
        self._next = 0
        self._dispatched = [0] * len(self._sessions)

    @property
    def size(self) -> int:
        return len(self._sessions)

    @property
    def primary(self) -> ReadOnlyNetworkSession:
        """The member used for stats/health reads (all members are equal)."""
        return self._sessions[0]

    @property
    def sessions(self) -> List[ReadOnlyNetworkSession]:
        return list(self._sessions)

    def acquire(self) -> Tuple[int, ReadOnlyNetworkSession]:
        """The next member, round-robin; returns ``(index, session)``."""
        with self._lock:
            index = self._next
            self._next = (index + 1) % len(self._sessions)
            self._dispatched[index] += 1
        return index, self._sessions[index]

    def dispatch_counts(self) -> List[int]:
        """Requests dispatched to each member so far, by pool index."""
        with self._lock:
            return list(self._dispatched)

    def install_observability(self, obs: Optional[Observability]) -> None:
        """Install one shared hook on every member.

        All members feed the same registry, so the pooled daemon's
        ``repro_session_lock_wait_seconds`` / ``_hold_seconds`` histograms
        aggregate lock contention across the whole pool.
        """
        for session in self._sessions:
            session.install_observability(obs)

    def close(self) -> None:
        """Close every member; the backend-owning primary goes last."""
        for session in reversed(self._sessions):
            session.close()


class SummaryQueryServer(ThreadingHTTPServer):
    """HTTP daemon over a shared read-only session (or a pool of them)."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: Tuple[str, int],
        session: Union[ReadOnlyNetworkSession, SessionPool],
        checkpoint_name: str = "session",
        quiet: bool = True,
        close_session_on_stop: bool = False,
        observability: Any = _DEFAULT_OBS,
    ) -> None:
        super().__init__(address, _RequestHandler)
        self.pool = session if isinstance(session, SessionPool) else SessionPool([session])
        #: The primary member — stats/health reads go here; query-shaped
        #: requests acquire a member through :meth:`acquire_session` instead.
        self.session = self.pool.primary
        self.checkpoint_name = checkpoint_name
        self.quiet = quiet
        self.close_session_on_stop = close_session_on_stop
        if observability is _DEFAULT_OBS:
            observability = Observability.with_ring(detail=True)
            observability.tracer.origin = "server"
        self.observability: Optional[Observability] = observability
        if observability is not None:
            self.pool.install_observability(observability)
            observability.set_gauge("repro_serve_pool_size", self.pool.size)
        self.started_at = time.time()
        self._stats_lock = threading.Lock()
        self._request_counts: Dict[str, int] = {}
        self._queries_answered = 0
        self._thread: Optional[threading.Thread] = None
        self._stop_thread: Optional[threading.Thread] = None

    def acquire_session(self) -> ReadOnlyNetworkSession:
        """The pool member the current request should answer from."""
        index, session = self.pool.acquire()
        obs = self.observability
        if obs is not None and self.pool.size > 1:
            obs.inc("repro_serve_pool_dispatch_total", member=str(index))
        return session

    # -- bookkeeping -------------------------------------------------------------------

    def record_request(self, endpoint: str, queries_answered: int = 0) -> None:
        with self._stats_lock:
            self._request_counts[endpoint] = self._request_counts.get(endpoint, 0) + 1
            self._queries_answered += queries_answered
        obs = self.observability
        if obs is not None:
            obs.inc("repro_serve_requests_total", endpoint=endpoint)
            if queries_answered:
                obs.inc("repro_serve_queries_answered_total", queries_answered)

    def stats_payload(self) -> Dict[str, Any]:
        session = self.session
        with self._stats_lock:
            counts = dict(self._request_counts)
            answered = self._queries_answered
        source = session.hierarchy_source
        return {
            "requests": counts,
            "queries_answered": answered,
            "peers": session.overlay.size,
            "domains": len(session.domains),
            "planned": session.planned,
            "lazy": None if source is None else source.stats_payload(),
            "pool": {
                "size": self.pool.size,
                "dispatched": self.pool.dispatch_counts(),
            },
            "uptime_seconds": time.time() - self.started_at,
        }

    # -- lifecycle ---------------------------------------------------------------------

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"

    def start_background(self) -> "SummaryQueryServer":
        """Run ``serve_forever`` on a daemon thread (in-process serving)."""
        if self._thread is not None:
            raise ServeError("server already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait for serving — and any in-flight teardown — to finish."""
        if self._thread is not None:
            self._thread.join(timeout)
        stopper = self._stop_thread
        if stopper is not None and stopper is not threading.current_thread():
            stopper.join(timeout)

    def stop(self) -> None:
        """Shut the daemon down cleanly and release its resources."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.server_close()
        if self.close_session_on_stop:
            self.pool.close()

    def request_shutdown(self) -> None:
        """Asynchronous shutdown (used by the ``/shutdown`` endpoint)."""
        self._stop_thread = threading.Thread(target=self.stop, daemon=True)
        self._stop_thread.start()


class _RequestHandler(BaseHTTPRequestHandler):
    server: SummaryQueryServer

    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _respond(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > MAX_REQUEST_BYTES:
            raise ServeError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_REQUEST_BYTES}-byte limit"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return {}
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServeError("request body must be a JSON object")
        return payload

    def _dispatch(self, handler) -> None:
        obs = self.server.observability
        if obs is None:
            self._write_outcome(self._execute(handler))
            return
        endpoint = urlsplit(self.path).path
        started = time.perf_counter()
        # Adopt the client's trace context when it sends one: the request
        # span (and everything the session opens underneath it) then belongs
        # to the client's trace, with the client span as its parent.
        trace_id = self.headers.get("X-Repro-Trace-Id") or None
        parent_id = self.headers.get("X-Repro-Parent-Id") or None
        with obs.span(
            f"serve {endpoint}",
            {"endpoint": endpoint},
            trace_id=trace_id,
            parent_id=parent_id,
        ):
            outcome = self._execute(handler)
        # Observe *before* writing the response: once the body is on the
        # wire the client may immediately scrape /metrics from another
        # thread, and this request's latency must already be recorded.
        obs.observe(
            "repro_serve_request_seconds",
            time.perf_counter() - started,
            endpoint=endpoint,
        )
        self._write_outcome(outcome)

    def _execute(self, handler):
        """Run a handler, mapping failures to error responses.

        Returns the ``(status, payload)`` pair still to be written, or
        ``None`` when the handler wrote its own response (shutdown must
        flush the acknowledgement before stopping the server; /metrics
        writes a non-JSON body).
        """
        try:
            return handler()
        except ReproError as exc:
            return 400, {"error": str(exc), "type": type(exc).__name__}
        except Exception as exc:  # noqa: BLE001 - the daemon must not die
            return 500, {"error": str(exc), "type": type(exc).__name__}

    def _write_outcome(self, outcome) -> None:
        if outcome is not None:
            status, payload = outcome
            self._respond(status, payload)

    # -- HTTP verbs --------------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = urlsplit(self.path).path
        routes = {
            "/health": self._handle_health,
            "/stats": self._handle_stats,
            "/metrics": self._handle_metrics,
            "/metrics_snapshot": self._handle_metrics_snapshot,
            "/trace": self._handle_trace,
        }
        handler = routes.get(path)
        if handler is None:
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        self._dispatch(handler)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        routes = {
            "/query": self._handle_query,
            "/query_batch": self._handle_query_batch,
            "/staleness": self._handle_staleness,
            "/shutdown": self._handle_shutdown,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._respond(404, {"error": f"unknown path {self.path!r}"})
            return
        self._dispatch(handler)

    # -- endpoints ---------------------------------------------------------------------

    def _handle_health(self) -> Tuple[int, Dict[str, Any]]:
        session = self.server.session
        self.server.record_request("health")
        return 200, {
            "status": "ok",
            "checkpoint": self.server.checkpoint_name,
            "peers": session.overlay.size,
            "domains": len(session.domains),
            "planned": session.planned,
            "now": session.now,
        }

    def _handle_stats(self) -> Tuple[int, Dict[str, Any]]:
        self.server.record_request("stats")
        return 200, self.server.stats_payload()

    def _handle_metrics(self) -> None:
        obs = self.server.observability
        if obs is None:
            self._respond(404, {"error": "observability is disabled on this server"})
            return None
        self.server.record_request("metrics")
        obs.set_gauge(
            "repro_serve_uptime_seconds", time.time() - self.server.started_at
        )
        body = obs.metrics.render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)
        return None

    def _handle_metrics_snapshot(self) -> Tuple[int, Dict[str, Any]]:
        """The registry as a mergeable JSON snapshot.

        This is the multi-process half of the metrics story: a supervisor
        polls every worker's snapshot and folds them into one registry via
        :meth:`~repro.obs.registry.MetricsRegistry.merge_snapshot`, so the
        fleet's ``/metrics`` aggregates per-worker counters exactly.
        """
        obs = self.server.observability
        if obs is None:
            raise ServeError("observability is disabled on this server")
        self.server.record_request("metrics_snapshot")
        return 200, {"snapshot": obs.metrics.snapshot(), "pid": os.getpid()}

    def _handle_trace(self) -> Tuple[int, Dict[str, Any]]:
        obs = self.server.observability
        ring = None if obs is None else obs.ring
        if ring is None:
            raise ServeError("this server has no in-memory trace ring")
        self.server.record_request("trace")
        query = parse_qs(urlsplit(self.path).query)
        limit = None
        if query.get("limit"):
            limit = int(query["limit"][0])
        spans = ring.tail(limit) if limit is not None else ring.spans()
        return 200, {
            "spans": [span.to_payload() for span in spans],
            "emitted": ring.emitted,
        }

    @staticmethod
    def _query_options(payload: Dict[str, Any]) -> Dict[str, Any]:
        options: Dict[str, Any] = {}
        if "policy" in payload and payload["policy"] is not None:
            try:
                options["policy"] = RoutingPolicy(payload["policy"])
            except ValueError as exc:
                raise ServeError(f"unknown routing policy: {payload['policy']!r}") from exc
        for knob in ("required_results", "max_domains"):
            if payload.get(knob) is not None:
                options[knob] = int(payload[knob])
        for knob in ("include_staleness", "include_answer"):
            if payload.get(knob) is not None:
                options[knob] = bool(payload[knob])
        return options

    def _handle_query(self) -> Tuple[int, Dict[str, Any]]:
        payload = self._read_body()
        session = self.server.acquire_session()
        options = self._query_options(payload)
        query = (
            None if payload.get("query") is None else wire.decode_query(payload["query"])
        )
        answer = session.query(
            payload.get("originator"),
            query=query,
            query_id=payload.get("query_id"),
            **options,
        )
        self.server.record_request("query", queries_answered=1)
        return 200, {"answer": wire.encode_answer(answer)}

    def _handle_query_batch(self) -> Tuple[int, Dict[str, Any]]:
        payload = self._read_body()
        session = self.server.acquire_session()
        options = self._query_options(payload)
        count = payload.get("count")
        queries: Optional[List[Any]] = None
        if payload.get("queries") is not None:
            queries = [wire.decode_query(q) for q in payload["queries"]]
        originators = payload.get("originators") or None
        answers = session.query_batch(
            count=None if count is None else int(count),
            queries=queries,
            originators=originators,
            **options,
        )
        self.server.record_request("query_batch", queries_answered=len(answers))
        return 200, {"answers": [wire.encode_answer(a) for a in answers]}

    def _handle_staleness(self) -> Tuple[int, Dict[str, Any]]:
        payload = self._read_body()
        session = self.server.acquire_session()
        if payload.get("count") is not None:
            snapshots = session.staleness_batch(int(payload["count"]))
            self.server.record_request("staleness")
            return 200, {
                "snapshots": [wire.encode_staleness(s) for s in snapshots]
            }
        snapshot = session.staleness(query_id=payload.get("query_id"))
        self.server.record_request("staleness")
        return 200, {"staleness": wire.encode_staleness(snapshot)}

    def _handle_shutdown(self) -> None:
        self.server.record_request("shutdown")
        # Flush the acknowledgement before stopping: in CLI mode the main
        # thread exits serve_forever (and may exit the process) as soon as
        # shutdown lands, which would otherwise race the response write.
        self._respond(200, {"status": "shutting down"})
        self.wfile.flush()
        self.server.request_shutdown()
        return None


def start_server(
    session: Union[ReadOnlyNetworkSession, SessionPool],
    host: str = "127.0.0.1",
    port: int = 0,
    checkpoint_name: str = "session",
    quiet: bool = True,
    close_session_on_stop: bool = False,
    observability: Any = _DEFAULT_OBS,
) -> SummaryQueryServer:
    """Serve ``session`` on a background thread; returns the running server.

    ``session`` may be a single read-only session or a :class:`SessionPool`
    (query-shaped requests then round-robin over the members).  ``port=0``
    binds an ephemeral port — read the actual address off ``server.url``.
    Stop with ``server.stop()`` (or a client-side ``/shutdown`` request,
    which triggers the same clean teardown).  ``observability`` defaults to
    a fresh ring-buffer instance; pass ``None`` to serve uninstrumented
    (``/metrics`` and ``/trace`` then return errors).
    """
    server = SummaryQueryServer(
        (host, port),
        session,
        checkpoint_name=checkpoint_name,
        quiet=quiet,
        close_session_on_stop=close_session_on_stop,
        observability=observability,
    )
    return server.start_background()
