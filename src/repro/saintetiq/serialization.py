"""Serialization of summaries and hierarchies.

Local summaries travel inside ``localsum`` and ``reconciliation`` messages and
global summaries are persisted at summary peers, so the reproduction needs a
wire format.  Summaries serialize to plain JSON-compatible dictionaries; the
encoded size doubles as a realistic estimate of the per-message payload that
the storage-cost model (Section 6.1.1) approximates with 512 bytes per node.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.exceptions import SummaryError
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, make_cell_key
from repro.saintetiq.clustering import ClusteringParameters
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.stats import AttributeStatistics, StatisticsBundle
from repro.saintetiq.summary import Summary, collect_leaf_cells

_FORMAT_VERSION = 1


# -- cells ----------------------------------------------------------------------


def cell_to_dict(cell: Cell) -> Dict[str, Any]:
    """Encode one populated grid cell."""
    return {
        "key": [[d.attribute, d.label] for d in cell.key],
        "tuple_count": cell.tuple_count,
        "grades": [
            [descriptor.attribute, descriptor.label, grade]
            for descriptor, grade in sorted(
                cell.grades.items(), key=lambda kv: (kv[0].attribute, kv[0].label)
            )
        ],
        "statistics": _statistics_to_dict(cell.statistics),
        "peers": sorted(cell.peers),
    }


def cell_from_dict(payload: Dict[str, Any]) -> Cell:
    """Decode one populated grid cell."""
    try:
        key = make_cell_key(
            Descriptor(attribute, label) for attribute, label in payload["key"]
        )
        cell = Cell(key=key)
        cell.tuple_count = float(payload["tuple_count"])
        cell.grades = {
            Descriptor(attribute, label): float(grade)
            for attribute, label, grade in payload.get("grades", [])
        }
        cell.statistics = _statistics_from_dict(payload.get("statistics", {}))
        cell.peers = set(payload.get("peers", []))
        return cell
    except (KeyError, TypeError, ValueError) as exc:
        raise SummaryError(f"malformed cell payload: {exc}") from exc


def _statistics_to_dict(bundle: StatisticsBundle) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {}
    for attribute in bundle.attributes:
        stats = bundle.get(attribute)
        if stats is None:
            continue
        encoded[attribute] = {
            "count": stats.count,
            "total": stats.total,
            "total_squares": stats.total_squares,
            "min": stats.minimum,
            "max": stats.maximum,
        }
    return encoded


def _statistics_from_dict(payload: Dict[str, Any]) -> StatisticsBundle:
    bundle = StatisticsBundle()
    for attribute, values in payload.items():
        stats = AttributeStatistics(
            count=float(values.get("count", 0.0)),
            total=float(values.get("total", 0.0)),
            total_squares=float(values.get("total_squares", 0.0)),
            minimum=values.get("min"),
            maximum=values.get("max"),
        )
        bundle._stats[attribute] = stats  # noqa: SLF001 - controlled rebuild
    return bundle


# -- summary trees -----------------------------------------------------------------


def summary_to_dict(summary: Summary) -> Dict[str, Any]:
    """Encode a summary node and, recursively, its children."""
    return {
        "cells": [cell_to_dict(cell) for _key, cell in sorted(
            summary.cells.items(), key=lambda kv: tuple(map(str, kv[0]))
        )],
        "children": [summary_to_dict(child) for child in summary.children],
    }


def summary_from_dict(payload: Dict[str, Any]) -> Summary:
    """Decode a summary subtree."""
    summary = Summary()
    for cell_payload in payload.get("cells", []):
        summary.absorb_cell(cell_from_dict(cell_payload))
    for child_payload in payload.get("children", []):
        summary.add_child(summary_from_dict(child_payload))
    return summary


# -- hierarchies ----------------------------------------------------------------------


def hierarchy_to_dict(hierarchy: SummaryHierarchy) -> Dict[str, Any]:
    """Encode a whole hierarchy (structure + metadata, not the BK)."""
    return {
        "version": _FORMAT_VERSION,
        "owner": hierarchy.owner,
        "attributes": hierarchy.attributes,
        "records_processed": hierarchy.records_processed,
        "parameters": {
            "max_children": _builder_parameters(hierarchy).max_children,
            "enable_merge": _builder_parameters(hierarchy).enable_merge,
            "enable_split": _builder_parameters(hierarchy).enable_split,
        },
        "root": summary_to_dict(hierarchy.root),
    }


def _builder_parameters(hierarchy: SummaryHierarchy) -> ClusteringParameters:
    return hierarchy._builder.parameters  # noqa: SLF001 - serialization needs them


def hierarchy_from_dict(
    payload: Dict[str, Any], background: BackgroundKnowledge
) -> SummaryHierarchy:
    """Decode a hierarchy; the background knowledge is supplied by the caller.

    The receiving peer always owns the (common) background knowledge — only
    summary structure travels on the wire, exactly as in the paper.
    """
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise SummaryError(f"unsupported summary format version: {version!r}")
    parameters_payload = payload.get("parameters", {})
    parameters = ClusteringParameters(
        max_children=int(parameters_payload.get("max_children", 4) or 4),
        enable_merge=bool(parameters_payload.get("enable_merge", True)),
        enable_split=bool(parameters_payload.get("enable_split", True)),
    )
    hierarchy = SummaryHierarchy(
        background,
        attributes=payload.get("attributes") or None,
        parameters=parameters,
        owner=payload.get("owner"),
    )
    root = summary_from_dict(payload.get("root", {}))
    hierarchy.incorporate_cells(collect_leaf_cells(root))
    hierarchy._records_processed = int(  # noqa: SLF001 - metadata restore
        payload.get("records_processed", 0)
    )
    return hierarchy


# -- JSON convenience ---------------------------------------------------------------------


def hierarchy_to_json(hierarchy: SummaryHierarchy, indent: Optional[int] = None) -> str:
    return json.dumps(hierarchy_to_dict(hierarchy), indent=indent, sort_keys=True)


def hierarchy_from_json(
    payload: str, background: BackgroundKnowledge
) -> SummaryHierarchy:
    try:
        decoded = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SummaryError(f"malformed summary JSON: {exc}") from exc
    return hierarchy_from_dict(decoded, background)


def encoded_size_bytes(hierarchy: SummaryHierarchy) -> int:
    """Actual wire size of the hierarchy (compact JSON encoding)."""
    return len(hierarchy_to_json(hierarchy).encode("utf-8"))
