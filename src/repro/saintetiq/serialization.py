"""Serialization of summaries and hierarchies.

Local summaries travel inside ``localsum`` and ``reconciliation`` messages and
global summaries are persisted at summary peers, so the reproduction needs a
wire format.  Summaries serialize to plain JSON-compatible dictionaries; the
encoded size doubles as a realistic estimate of the per-message payload that
the storage-cost model (Section 6.1.1) approximates with 512 bytes per node.

Canonical encoding
------------------
:func:`canonical_json` fixes *one* byte representation per payload (sorted
keys, compact separators).  Everything that needs to agree on sizes or
identity uses it: :func:`encoded_size_bytes` (the Fig-6/Table-2 storage-cost
figures), and the content-addressed snapshot store of :mod:`repro.store`
(:func:`content_hash` / :func:`hierarchy_content_hash` — two hierarchies with
the same canonical bytes share one stored snapshot).

Rehydration is *exact*: :func:`hierarchy_from_dict` rebuilds the serialized
tree node by node — cached aggregate profiles are re-established by the
absorb deltas, every cell's copy-on-write :attr:`Cell.owner` tag is set to its
containing node, and the builder's mutation counter is restored — so a
roundtripped hierarchy absorbs and merges byte-identically to the original
instead of being re-clustered from its leaf cells.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.exceptions import SummaryError
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, make_cell_key
from repro.saintetiq.clustering import ClusteringParameters
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.stats import AttributeStatistics, StatisticsBundle
from repro.saintetiq.summary import Summary

#: Version 2 adds the builder's mutation counter (``incorporated``) and is
#: decoded structure-preservingly; version-1 payloads are still accepted.
_FORMAT_VERSION = 2
_ACCEPTED_VERSIONS = (1, 2)


# -- canonical encoding ---------------------------------------------------------


def canonical_json(payload: Any) -> str:
    """The canonical text encoding: sorted keys, compact separators."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def canonical_encode(payload: Any) -> bytes:
    """Canonical UTF-8 bytes of a JSON-compatible payload."""
    return canonical_json(payload).encode("utf-8")


def content_hash(payload: Any) -> str:
    """SHA-256 over the canonical encoding: the content address of a payload."""
    return hashlib.sha256(canonical_encode(payload)).hexdigest()


def hierarchy_content_hash(hierarchy: SummaryHierarchy) -> str:
    """Content address of a hierarchy (equal hierarchies hash identically)."""
    return content_hash(hierarchy_to_dict(hierarchy))


# -- cells ----------------------------------------------------------------------


def cell_to_dict(cell: Cell) -> Dict[str, Any]:
    """Encode one populated grid cell."""
    return {
        "key": [[d.attribute, d.label] for d in cell.key],
        "tuple_count": cell.tuple_count,
        "grades": [
            [descriptor.attribute, descriptor.label, grade]
            for descriptor, grade in sorted(
                cell.grades.items(), key=lambda kv: (kv[0].attribute, kv[0].label)
            )
        ],
        "statistics": _statistics_to_dict(cell.statistics),
        "peers": sorted(cell.peers),
    }


def cell_from_dict(payload: Dict[str, Any]) -> Cell:
    """Decode one populated grid cell."""
    try:
        key = make_cell_key(
            Descriptor(attribute, label) for attribute, label in payload["key"]
        )
        cell = Cell(key=key)
        cell.tuple_count = float(payload["tuple_count"])
        cell.grades = {
            Descriptor(attribute, label): float(grade)
            for attribute, label, grade in payload.get("grades", [])
        }
        cell.statistics = _statistics_from_dict(payload.get("statistics", {}))
        cell.peers = set(payload.get("peers", []))
        return cell
    except (KeyError, TypeError, ValueError) as exc:
        raise SummaryError(f"malformed cell payload: {exc}") from exc


def _statistics_to_dict(bundle: StatisticsBundle) -> Dict[str, Any]:
    encoded: Dict[str, Any] = {}
    for attribute in bundle.attributes:
        stats = bundle.get(attribute)
        if stats is None:
            continue
        encoded[attribute] = {
            "count": stats.count,
            "total": stats.total,
            "total_squares": stats.total_squares,
            "min": stats.minimum,
            "max": stats.maximum,
        }
    return encoded


def _statistics_from_dict(payload: Dict[str, Any]) -> StatisticsBundle:
    bundle = StatisticsBundle()
    for attribute, values in payload.items():
        stats = AttributeStatistics(
            count=float(values.get("count", 0.0)),
            total=float(values.get("total", 0.0)),
            total_squares=float(values.get("total_squares", 0.0)),
            minimum=values.get("min"),
            maximum=values.get("max"),
        )
        bundle._stats[attribute] = stats  # noqa: SLF001 - controlled rebuild
    return bundle


# -- summary trees -----------------------------------------------------------------


def summary_to_dict(summary: Summary) -> Dict[str, Any]:
    """Encode a summary node and, recursively, its children."""
    return {
        "cells": [cell_to_dict(cell) for _key, cell in sorted(
            summary.cells.items(), key=lambda kv: tuple(map(str, kv[0]))
        )],
        "children": [summary_to_dict(child) for child in summary.children],
    }


def summary_from_dict(payload: Dict[str, Any]) -> Summary:
    """Decode a summary subtree."""
    summary = Summary()
    for cell_payload in payload.get("cells", []):
        summary.absorb_cell(cell_from_dict(cell_payload))
    for child_payload in payload.get("children", []):
        summary.add_child(summary_from_dict(child_payload))
    return summary


# -- hierarchies ----------------------------------------------------------------------


def hierarchy_to_dict(hierarchy: SummaryHierarchy) -> Dict[str, Any]:
    """Encode a whole hierarchy (structure + metadata, not the BK)."""
    return {
        "version": _FORMAT_VERSION,
        "owner": hierarchy.owner,
        "attributes": hierarchy.attributes,
        "records_processed": hierarchy.records_processed,
        "incorporated": hierarchy._builder.incorporated_cells,  # noqa: SLF001
        "parameters": {
            "max_children": _builder_parameters(hierarchy).max_children,
            "enable_merge": _builder_parameters(hierarchy).enable_merge,
            "enable_split": _builder_parameters(hierarchy).enable_split,
        },
        "root": summary_to_dict(hierarchy.root),
    }


def _builder_parameters(hierarchy: SummaryHierarchy) -> ClusteringParameters:
    return hierarchy._builder.parameters  # noqa: SLF001 - serialization needs them


def hierarchy_from_dict(
    payload: Dict[str, Any], background: BackgroundKnowledge
) -> SummaryHierarchy:
    """Decode a hierarchy; the background knowledge is supplied by the caller.

    The receiving peer always owns the (common) background knowledge — only
    summary structure travels on the wire, exactly as in the paper.

    Decoding is structure-preserving: the serialized tree is adopted as-is
    (no re-clustering), each node's cached aggregates are rebuilt by the
    absorb deltas, each cell is owned by its containing node, and the
    builder's mutation counter resumes from the serialized value — further
    ``absorb``/``merge``/``incorporate`` calls behave byte-identically to the
    same calls on the original hierarchy.
    """
    version = payload.get("version")
    if version not in _ACCEPTED_VERSIONS:
        raise SummaryError(f"unsupported summary format version: {version!r}")
    parameters_payload = payload.get("parameters", {})
    parameters = ClusteringParameters(
        max_children=int(parameters_payload.get("max_children", 4) or 4),
        enable_merge=bool(parameters_payload.get("enable_merge", True)),
        enable_split=bool(parameters_payload.get("enable_split", True)),
    )
    hierarchy = SummaryHierarchy(
        background,
        attributes=payload.get("attributes") or None,
        parameters=parameters,
        owner=payload.get("owner"),
    )
    root = summary_from_dict(payload.get("root", {}))
    incorporated = payload.get("incorporated")
    if incorporated is None:
        # Version-1 payloads predate the counter; any monotone base keeps the
        # memoized depth/signature caches coherent, so the leaf-cell count works.
        incorporated = sum(len(leaf.cells) for leaf in root.leaves())
    hierarchy._builder.adopt_root(root, int(incorporated))  # noqa: SLF001
    hierarchy._records_processed = int(  # noqa: SLF001 - metadata restore
        payload.get("records_processed", 0)
    )
    return hierarchy


# -- JSON convenience ---------------------------------------------------------------------


def hierarchy_to_json(hierarchy: SummaryHierarchy, indent: Optional[int] = None) -> str:
    """JSON text of a hierarchy: canonical when compact, pretty with ``indent``."""
    if indent is None:
        return canonical_json(hierarchy_to_dict(hierarchy))
    return json.dumps(hierarchy_to_dict(hierarchy), indent=indent, sort_keys=True)


def hierarchy_from_json(
    payload: str, background: BackgroundKnowledge
) -> SummaryHierarchy:
    try:
        decoded = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise SummaryError(f"malformed summary JSON: {exc}") from exc
    return hierarchy_from_dict(decoded, background)


def encoded_size_bytes(hierarchy: SummaryHierarchy) -> int:
    """Actual wire size of the hierarchy — the canonical compact encoding.

    By construction this is ``len()`` of exactly the bytes the snapshot store
    hashes, so storage-cost figures and content addresses always agree.
    """
    return len(canonical_encode(hierarchy_to_dict(hierarchy)))
