"""Grid cells: the finest-grained summaries produced by the mapping service.

A *cell* is one elementary hyperrectangle of the multidimensional grid induced
by the Background Knowledge — the combination of exactly one descriptor per
summarized attribute.  Records are mapped to (possibly several, fractionally
weighted) cells; cells then become the leaves of the summary hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

from repro.exceptions import SummaryError
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.stats import StatisticsBundle

#: Canonical, hashable identity of a cell: descriptors sorted by attribute.
CellKey = Tuple[Descriptor, ...]


def make_cell_key(descriptors: Iterable[Descriptor]) -> CellKey:
    """Normalise a set of descriptors into a canonical cell key.

    A cell must carry at most one descriptor per attribute.
    """
    ordered = tuple(sorted(descriptors, key=lambda d: (d.attribute, d.label)))
    attributes = [descriptor.attribute for descriptor in ordered]
    if len(set(attributes)) != len(attributes):
        raise SummaryError(
            f"a cell carries one descriptor per attribute, got {ordered}"
        )
    if not ordered:
        raise SummaryError("a cell needs at least one descriptor")
    return ordered


@dataclass
class Cell:
    """One populated grid cell.

    Attributes
    ----------
    key:
        The canonical descriptor combination identifying the cell.
    tuple_count:
        The (possibly fractional) number of records assigned to the cell —
        the ``tuple count`` column of the paper's Table 2.
    grades:
        Per-descriptor membership grade, computed as the *maximum* grade of
        the covered records' values for the descriptor (the paper:
        ``0.3/adult`` is "the maximum of membership grades of tuple values to
        adult in c3").
    statistics:
        Attribute-dependent measures over the raw values of covered records.
    peers:
        Peer-extent contribution (which peers own records in this cell);
        empty for purely local, single-database summaries.
    owner:
        Copy-on-write tag: the single :class:`~repro.saintetiq.summary.Summary`
        node allowed to mutate this cell in place.  Structural merges alias
        cells between a node and its children instead of deep-copying them;
        a node absorbing into a cell it does not own must copy it first.
        ``None`` (freshly mapped or deserialized cells) means "owned by
        nobody": the first absorbing node takes a private copy.
    """

    key: CellKey
    tuple_count: float = 0.0
    grades: Dict[Descriptor, float] = field(default_factory=dict)
    statistics: StatisticsBundle = field(default_factory=StatisticsBundle)
    peers: Set[str] = field(default_factory=set)
    owner: Optional[object] = field(default=None, repr=False, compare=False)

    @property
    def descriptors(self) -> Set[Descriptor]:
        return set(self.key)

    @property
    def attributes(self) -> Tuple[str, ...]:
        return tuple(descriptor.attribute for descriptor in self.key)

    def label_of(self, attribute: str) -> Optional[str]:
        for descriptor in self.key:
            if descriptor.attribute == attribute:
                return descriptor.label
        return None

    def absorb_record(
        self,
        record: Mapping[str, object],
        weight: float,
        grades: Mapping[Descriptor, float],
        peer: Optional[str] = None,
    ) -> None:
        """Fold one record occurrence (with membership ``weight``) into the cell."""
        if weight <= 0.0:
            return
        self.tuple_count += weight
        for descriptor in self.key:
            grade = grades.get(descriptor, 0.0)
            previous = self.grades.get(descriptor, 0.0)
            self.grades[descriptor] = max(previous, grade)
        self.statistics.add_record(record, weight)
        if peer is not None:
            self.peers.add(peer)

    def absorb_batch(
        self,
        entries: Iterable[
            Tuple[Mapping[str, object], float, Mapping[Descriptor, float]]
        ],
        peer: Optional[str] = None,
    ) -> None:
        """Fold many ``(record, weight, grades)`` occurrences into the cell.

        Byte-identical to calling :meth:`absorb_record` for each entry in
        order: tuple counts accumulate in the same sequence, grade maxima are
        taken descriptor-by-descriptor in the same order, and the statistics
        bundle folds the surviving pairs through
        :meth:`~repro.saintetiq.stats.StatisticsBundle.add_records`, which
        preserves the per-attribute accumulation order.  The batch form lets
        the mapping service update each cell's statistics bookkeeping once per
        relation instead of once per record.
        """
        pairs = []
        for record, weight, grades in entries:
            if weight <= 0.0:
                continue
            self.tuple_count += weight
            for descriptor in self.key:
                grade = grades.get(descriptor, 0.0)
                previous = self.grades.get(descriptor, 0.0)
                self.grades[descriptor] = max(previous, grade)
            pairs.append((record, weight))
        if not pairs:
            return
        self.statistics.add_records(pairs)
        if peer is not None:
            self.peers.add(peer)

    def merge(self, other: "Cell") -> None:
        """Fold another cell with the same key into this one (in place)."""
        if other.key != self.key:
            raise SummaryError(
                f"cannot merge cells with different keys: {self.key} vs {other.key}"
            )
        self.tuple_count += other.tuple_count
        for descriptor, grade in other.grades.items():
            self.grades[descriptor] = max(self.grades.get(descriptor, 0.0), grade)
        self.statistics.merge(other.statistics)
        self.peers |= other.peers

    def copy(self) -> "Cell":
        return Cell(
            key=self.key,
            tuple_count=self.tuple_count,
            grades=dict(self.grades),
            statistics=self.statistics.copy(),
            peers=set(self.peers),
        )

    def describe(self) -> Dict[str, str]:
        """Human-readable ``attribute -> label`` view (Table 2 style)."""
        return {descriptor.attribute: descriptor.label for descriptor in self.key}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        labels = ", ".join(f"{d.attribute}={d.label}" for d in self.key)
        return f"Cell({labels}, count={self.tuple_count:.2f})"
