"""Attribute-dependent measures stored in summaries.

The paper notes that every coarser tuple (grid cell, and by extension summary)
*"stores a record count and attribute-dependent measures (min, max, mean,
standard deviation, etc.)"*.  :class:`AttributeStatistics` keeps those
aggregates in a mergeable form (count / sum / sum of squares / min / max) so
that summaries can be combined without revisiting raw data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple


@dataclass
class AttributeStatistics:
    """Streaming aggregate of a numeric attribute (weighted)."""

    count: float = 0.0
    total: float = 0.0
    total_squares: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None

    def add(self, value: float, weight: float = 1.0) -> None:
        """Fold one (possibly fractionally weighted) observation in."""
        if weight <= 0.0:
            return
        self.count += weight
        self.total += weight * value
        self.total_squares += weight * value * value
        self.minimum = value if self.minimum is None else min(self.minimum, value)
        self.maximum = value if self.maximum is None else max(self.maximum, value)

    def merge(self, other: "AttributeStatistics") -> None:
        """Fold another aggregate into this one (in place)."""
        self.count += other.count
        self.total += other.total
        self.total_squares += other.total_squares
        if other.minimum is not None:
            self.minimum = (
                other.minimum
                if self.minimum is None
                else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum
                if self.maximum is None
                else max(self.maximum, other.maximum)
            )

    def copy(self) -> "AttributeStatistics":
        return AttributeStatistics(
            count=self.count,
            total=self.total,
            total_squares=self.total_squares,
            minimum=self.minimum,
            maximum=self.maximum,
        )

    @property
    def mean(self) -> Optional[float]:
        if self.count <= 0.0:
            return None
        return self.total / self.count

    @property
    def variance(self) -> Optional[float]:
        if self.count <= 0.0:
            return None
        mean = self.total / self.count
        variance = self.total_squares / self.count - mean * mean
        return max(0.0, variance)

    @property
    def std(self) -> Optional[float]:
        variance = self.variance
        return math.sqrt(variance) if variance is not None else None

    def as_dict(self) -> Dict[str, Optional[float]]:
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


class StatisticsBundle:
    """A per-attribute collection of :class:`AttributeStatistics`."""

    def __init__(self) -> None:
        self._stats: Dict[str, AttributeStatistics] = {}

    def add_record(self, record: Mapping[str, object], weight: float = 1.0) -> None:
        for attribute, value in record.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self._stats.setdefault(attribute, AttributeStatistics()).add(
                float(value), weight
            )

    def add_records(
        self, entries: Iterable[Tuple[Mapping[str, object], float]]
    ) -> None:
        """Fold many ``(record, weight)`` pairs in, in order.

        Byte-identical to calling :meth:`add_record` once per pair: each
        attribute's observations arrive in the same sequence, so the
        floating-point accumulations take the same rounding path.  The batch
        form resolves the attribute -> statistics mapping once per attribute
        instead of once per record, which is where the per-record path spends
        most of its time on wide relations.
        """
        resolved: Dict[str, AttributeStatistics] = {}
        for record, weight in entries:
            if weight <= 0.0:
                continue
            for attribute, value in record.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    continue
                stats = resolved.get(attribute)
                if stats is None:
                    stats = self._stats.setdefault(attribute, AttributeStatistics())
                    resolved[attribute] = stats
                stats.add(float(value), weight)

    def merge(self, other: "StatisticsBundle") -> None:
        for attribute, stats in other._stats.items():
            self._stats.setdefault(attribute, AttributeStatistics()).merge(stats)

    def copy(self) -> "StatisticsBundle":
        clone = StatisticsBundle()
        clone._stats = {name: stats.copy() for name, stats in self._stats.items()}
        return clone

    def get(self, attribute: str) -> Optional[AttributeStatistics]:
        return self._stats.get(attribute)

    @property
    def attributes(self) -> list:
        return list(self._stats)

    def as_dict(self) -> Dict[str, Dict[str, Optional[float]]]:
        return {name: stats.as_dict() for name, stats in self._stats.items()}
