"""SaintEtiQ-style database summarization engine.

This package re-implements, in Python, the summarization substrate the paper
builds on (Raschia & Mouaddib 2002; Saint-Paul, Raschia & Mouaddib, VLDB 2005):

* the *mapping service* that translates raw records into fuzzy grid cells
  (:mod:`repro.saintetiq.mapping`, :mod:`repro.saintetiq.cell`),
* *summaries* — hyperrectangles of the descriptor grid with an intent, an
  extent (record/cell coverage and statistics) and, in the P2P extension, a
  *peer-extent* (:mod:`repro.saintetiq.summary`,
  :mod:`repro.saintetiq.stats`),
* the *summarization service* — an incremental, Cobweb-style conceptual
  clustering that arranges summaries in a tree
  (:mod:`repro.saintetiq.hierarchy`, :mod:`repro.saintetiq.clustering`),
* the *merging* of two hierarchies used when building a domain's global
  summary (:mod:`repro.saintetiq.merging`).
"""

from repro.saintetiq.cell import Cell, CellKey
from repro.saintetiq.clustering import ClusteringParameters, SummaryBuilder
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.mapping import MappingService
from repro.saintetiq.merging import merge_hierarchies
from repro.saintetiq.serialization import (
    encoded_size_bytes,
    hierarchy_from_dict,
    hierarchy_from_json,
    hierarchy_to_dict,
    hierarchy_to_json,
)
from repro.saintetiq.stats import AttributeStatistics
from repro.saintetiq.summary import Summary

__all__ = [
    "Cell",
    "CellKey",
    "MappingService",
    "Summary",
    "AttributeStatistics",
    "SummaryHierarchy",
    "SummaryBuilder",
    "ClusteringParameters",
    "merge_hierarchies",
    "hierarchy_to_dict",
    "hierarchy_from_dict",
    "hierarchy_to_json",
    "hierarchy_from_json",
    "encoded_size_bytes",
]
