"""Merging of summary hierarchies.

The paper builds a domain's *global summary* by merging its partners' local
summaries.  Following the method it cites (Bechchi, Raschia & Mouaddib,
CIKM 2007), ``Merging(S1, S2)`` incorporates the leaves ``L_z`` of hierarchy
``S1`` into hierarchy ``S2`` using the ordinary summarization service — so the
merge cost depends on the number of leaves of ``S1`` (bounded by the grid size
of the common background knowledge) and not on the number of raw tuples.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.exceptions import SummaryError
from repro.fuzzy.background import common_background_knowledge
from repro.saintetiq.clustering import ClusteringParameters
from repro.saintetiq.hierarchy import SummaryHierarchy


def merge_into(target: SummaryHierarchy, source: SummaryHierarchy) -> int:
    """Incorporate ``source``'s leaf cells into ``target`` (in place).

    Returns the number of leaf cells incorporated.  Both hierarchies must have
    been built over the same (common) background knowledge and attribute set —
    the CBK assumption of Section 4.1.
    """
    compatible, reasons = common_background_knowledge(
        target.background, source.background
    )
    if not compatible:
        raise SummaryError(
            "cannot merge hierarchies built over different background "
            f"knowledges: {reasons}"
        )
    if target.attributes != source.attributes:
        raise SummaryError(
            "cannot merge hierarchies summarizing different attribute sets: "
            f"{target.attributes} vs {source.attributes}"
        )
    return target.incorporate_cells(source.leaf_cells())


def merge_hierarchies(
    hierarchies: Iterable[SummaryHierarchy],
    parameters: Optional[ClusteringParameters] = None,
    owner: Optional[str] = None,
) -> SummaryHierarchy:
    """Merge several local summaries into a fresh global summary.

    The first hierarchy provides the background knowledge and attribute set;
    every subsequent one is merged leaf-by-leaf.  The inputs are left
    untouched (their cells are copied).
    """
    iterator = iter(hierarchies)
    try:
        first = next(iterator)
    except StopIteration as exc:
        raise SummaryError("merge_hierarchies needs at least one hierarchy") from exc

    merged = SummaryHierarchy(
        first.background,
        attributes=first.attributes,
        parameters=parameters,
        owner=owner,
    )
    merge_into(merged, first)
    for hierarchy in iterator:
        merge_into(merged, hierarchy)
    return merged
