"""The mapping service: raw records -> fuzzy grid cells.

Following Section 3.2.1 of the paper, the mapping operation replaces the
original values of every record by the linguistic descriptors of the
Background Knowledge.  Because descriptors overlap, one record may land in
several cells with fractional weights: a 20-year-old with a normal BMI
contributes 0.7 to the ``(young, normal)`` cell and 0.3 to ``(adult, normal)``
(the paper's cells c2 and c3).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import BackgroundKnowledgeError
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import Descriptor, LinguisticVariable
from repro.saintetiq.cell import Cell, CellKey, make_cell_key

#: Sentinel distinguishing "not memoized yet" from "value maps to nothing".
_MISSING = object()


class MappingService:
    """Maps records onto the descriptor grid defined by a Background Knowledge."""

    def __init__(
        self,
        background: BackgroundKnowledge,
        attributes: Optional[Iterable[str]] = None,
        threshold: float = 0.0,
        batch_absorb: bool = True,
    ) -> None:
        """
        Parameters
        ----------
        background:
            The (common) background knowledge.
        attributes:
            The subset of BK attributes to summarize on; defaults to all BK
            attributes.  The paper's running example restricts itself to
            ``age`` and ``bmi``.
        threshold:
            Minimum membership grade for a descriptor to take part in the
            mapping (an alpha-cut); 0 keeps every positive grade.
        batch_absorb:
            When true (the default), :meth:`map_records` groups the weighted
            occurrences per cell and folds each cell's statistics in one
            :meth:`~repro.saintetiq.cell.Cell.absorb_batch` call.  ``False``
            restores the per-record ``absorb_record`` path; both produce
            byte-identical cells.
        """
        self._background = background
        selected = list(attributes) if attributes is not None else background.attributes
        unknown = [a for a in selected if a not in background]
        if unknown:
            raise BackgroundKnowledgeError(
                f"cannot summarize on attributes missing from the BK: {unknown}"
            )
        if not selected:
            raise BackgroundKnowledgeError("mapping needs at least one attribute")
        self._attributes = selected
        self._threshold = threshold
        self._batch_absorb = batch_absorb

    @property
    def background(self) -> BackgroundKnowledge:
        return self._background

    @property
    def attributes(self) -> List[str]:
        return list(self._attributes)

    # -- record-level mapping --------------------------------------------------

    def _fuzzify_attribute(
        self, variable: "LinguisticVariable", value: object
    ) -> List[Tuple[Descriptor, float]]:
        """Graded descriptors of one attribute value, in canonical order."""
        graded = variable.fuzzify(value, threshold=self._threshold)
        return sorted(graded.items(), key=lambda kv: kv[0])

    def map_record(
        self, record: Mapping[str, object]
    ) -> List[Tuple[CellKey, float, Dict[Descriptor, float]]]:
        """Map one record to weighted cells.

        Returns a list of ``(cell_key, weight, grades)`` triples where
        ``weight`` is the record's membership in the cell — the product of the
        per-attribute grades, so that under a Ruspini background knowledge the
        weights of one record sum to exactly 1 (the record count is preserved,
        as in the paper's Table 2) — and ``grades`` carries the per-descriptor
        grades used to update cell intents.  Records missing a summarized
        attribute, or whose value is outside the BK support on some attribute,
        map to no cell.
        """
        per_attribute: List[List[Tuple[Descriptor, float]]] = []
        for attribute in self._attributes:
            if attribute not in record or record[attribute] is None:
                return []
            graded = self._fuzzify_attribute(
                self._background.variable(attribute), record[attribute]
            )
            if not graded:
                return []
            per_attribute.append(graded)
        return self._combine(per_attribute)

    @staticmethod
    def _combine(
        per_attribute: List[List[Tuple[Descriptor, float]]]
    ) -> List[Tuple[CellKey, float, Dict[Descriptor, float]]]:
        results: List[Tuple[CellKey, float, Dict[Descriptor, float]]] = []
        for combination in itertools.product(*per_attribute):
            descriptors = [descriptor for descriptor, _grade in combination]
            grades = {descriptor: grade for descriptor, grade in combination}
            weight = 1.0
            for _descriptor, grade in combination:
                weight *= grade
            if weight <= 0.0:
                continue
            results.append((make_cell_key(descriptors), weight, grades))
        return results

    # -- relation-level mapping -------------------------------------------------

    def map_records(
        self,
        records: Iterable[Mapping[str, object]],
        peer: Optional[str] = None,
    ) -> Dict[CellKey, Cell]:
        """Map a collection of records into populated cells (Table 2).

        ``peer`` tags every produced cell with the owning peer identifier so
        that peer-extents can be propagated through the hierarchy.

        The batch path hoists the per-attribute partition lookups out of the
        per-record loop and memoizes the fuzzification of repeated attribute
        values — real relations draw from small value domains (ages, BMI
        classes...), so most fuzzifications are cache hits.  With
        ``batch_absorb`` (the default) the weighted occurrences are also
        grouped per cell and folded through :meth:`Cell.absorb_batch`, so each
        cell's statistics bookkeeping is updated once per relation.  The
        produced cells are byte-identical to mapping each record individually.
        """
        variables = [
            (attribute, self._background.variable(attribute))
            for attribute in self._attributes
        ]
        memo: List[Dict[object, Optional[List[Tuple[Descriptor, float]]]]] = [
            {} for _attribute in variables
        ]
        # Combination memo: records sharing their fuzzified attribute values
        # also share the full (cell key, weight, grades) expansion.  Memoized
        # graded lists are identity-stable, so their ids form a safe key.
        combos: Dict[
            Tuple[int, ...], List[Tuple[CellKey, float, Dict[Descriptor, float]]]
        ] = {}
        cells: Dict[CellKey, Cell] = {}
        # Per-cell occurrence batches, folded once after the scan; ``None``
        # selects the legacy per-record absorb path.
        pending: Optional[
            Dict[CellKey, List[Tuple[Mapping[str, object], float, Dict[Descriptor, float]]]]
        ] = {} if self._batch_absorb else None
        for record in records:
            per_attribute: List[List[Tuple[Descriptor, float]]] = []
            all_memoized = True
            for index, (attribute, variable) in enumerate(variables):
                if attribute not in record or record[attribute] is None:
                    per_attribute = []
                    break
                value = record[attribute]
                try:
                    graded = memo[index].get(value, _MISSING)
                    memoizable = True
                except TypeError:  # unhashable value: fuzzify every time
                    graded = _MISSING
                    memoizable = False
                    all_memoized = False
                if graded is _MISSING:
                    graded = self._fuzzify_attribute(variable, value) or None
                    if memoizable:
                        memo[index][value] = graded
                if graded is None:
                    per_attribute = []
                    break
                per_attribute.append(graded)
            if not per_attribute:
                continue
            # Memoized lists are kept alive by ``memo``, so their ids are
            # stable combo keys; ad-hoc lists (unhashable values) are not.
            if all_memoized:
                combo_key = tuple(id(graded) for graded in per_attribute)
                expansion = combos.get(combo_key)
                if expansion is None:
                    expansion = self._combine(per_attribute)
                    combos[combo_key] = expansion
            else:
                expansion = self._combine(per_attribute)
            for key, weight, grades in expansion:
                cell = cells.get(key)
                if cell is None:
                    cell = Cell(key=key)
                    cells[key] = cell
                if pending is None:
                    cell.absorb_record(record, weight, grades, peer=peer)
                else:
                    bucket = pending.get(key)
                    if bucket is None:
                        bucket = []
                        pending[key] = bucket
                    bucket.append((record, weight, grades))
        if pending:
            for key, entries in pending.items():
                cells[key].absorb_batch(entries, peer=peer)
        return cells

    def grid_size(self) -> int:
        """Total number of cells of the restricted grid."""
        size = 1
        for attribute in self._attributes:
            size *= len(self._background.variable(attribute))
        return size


def map_records_reference(
    service: MappingService,
    records: Iterable[Mapping[str, object]],
    peer: Optional[str] = None,
) -> Dict[CellKey, Cell]:
    """The pre-batching relation mapping: one full lookup chain per record.

    Kept as the reference implementation the memoized batch path of
    :meth:`MappingService.map_records` is validated and benchmarked against
    (same pattern as the clustering engine's ``reference_scoring`` path).
    """
    cells: Dict[CellKey, Cell] = {}
    for record in records:
        for key, weight, grades in service.map_record(record):
            cell = cells.get(key)
            if cell is None:
                cell = Cell(key=key)
                cells[key] = cell
            cell.absorb_record(record, weight, grades, peer=peer)
    return cells
