"""Summary nodes: intent, extent, peer-extent and tree structure.

A summary *z* (Definition 1 of the paper) is the bounding box of a cluster of
cells: its *intent* is, per attribute, the union of the labels of the covered
cells; its *extent* is the set of covered cells (``L_z``) together with the
records they aggregate (``R_z`` — represented here by counts and statistics
rather than raw tuples); its *peer-extent* (Definition 3) is the set of peers
owning at least one covered record.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from repro.exceptions import SummaryError
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, CellKey
from repro.saintetiq.stats import StatisticsBundle

_summary_counter = itertools.count()


def _next_summary_id() -> int:
    return next(_summary_counter)


@dataclass
class Summary:
    """A node of the summary hierarchy."""

    node_id: int = field(default_factory=_next_summary_id)
    children: List["Summary"] = field(default_factory=list)
    cells: Dict[CellKey, Cell] = field(default_factory=dict)
    parent: Optional["Summary"] = field(default=None, repr=False, compare=False)

    # -- structure -------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, child: "Summary") -> None:
        child.parent = self
        self.children.append(child)

    def remove_child(self, child: "Summary") -> None:
        self.children.remove(child)
        child.parent = None

    def iter_subtree(self) -> Iterable["Summary"]:
        """Depth-first traversal of this node and its descendants."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def leaves(self) -> List["Summary"]:
        return [node for node in self.iter_subtree() if node.is_leaf]

    def depth(self) -> int:
        """Height of the subtree rooted here (a single node has depth 0)."""
        if not self.children:
            return 0
        return 1 + max(child.depth() for child in self.children)

    # -- intent / extent --------------------------------------------------------

    @property
    def intent(self) -> Dict[str, FrozenSet[str]]:
        """Per-attribute set of labels describing the covered cells."""
        labels: Dict[str, Set[str]] = {}
        for key in self.cells:
            for descriptor in key:
                labels.setdefault(descriptor.attribute, set()).add(descriptor.label)
        return {attribute: frozenset(values) for attribute, values in labels.items()}

    @property
    def descriptors(self) -> Set[Descriptor]:
        """All descriptors appearing in the intent."""
        result: Set[Descriptor] = set()
        for key in self.cells:
            result |= set(key)
        return result

    @property
    def attributes(self) -> List[str]:
        return sorted({descriptor.attribute for key in self.cells for descriptor in key})

    @property
    def tuple_count(self) -> float:
        return sum(cell.tuple_count for cell in self.cells.values())

    @property
    def cell_count(self) -> int:
        return len(self.cells)

    @property
    def peer_extent(self) -> Set[str]:
        """Definition 3: peers owning at least one record described here."""
        peers: Set[str] = set()
        for cell in self.cells.values():
            peers |= cell.peers
        return peers

    def statistics(self) -> StatisticsBundle:
        """Aggregated attribute statistics over the covered cells."""
        bundle = StatisticsBundle()
        for cell in self.cells.values():
            bundle.merge(cell.statistics)
        return bundle

    def covers(self, other: "Summary") -> bool:
        """Generalization test: does this summary's extent include ``other``'s?

        Implements the partial order of Definition 2 at the granularity of
        cells (``R_z ⊆ R_z'`` holds exactly when ``L_z ⊆ L_z'`` for summaries
        built from the same cell population).
        """
        return set(other.cells).issubset(set(self.cells))

    def labels_of(self, attribute: str) -> FrozenSet[str]:
        return self.intent.get(attribute, frozenset())

    # -- cell bookkeeping --------------------------------------------------------

    def absorb_cell(self, cell: Cell) -> None:
        """Fold a cell (copied) into this node's own extent."""
        existing = self.cells.get(cell.key)
        if existing is None:
            self.cells[cell.key] = cell.copy()
        else:
            existing.merge(cell)

    def absorb_cells(self, cells: Iterable[Cell]) -> None:
        for cell in cells:
            self.absorb_cell(cell)

    def recompute_from_children(self) -> None:
        """Rebuild this node's cell map as the union of its children's.

        Internal nodes of the hierarchy always satisfy this invariant; it is
        re-established after structural operators (merge/split) run.
        """
        if not self.children:
            return
        rebuilt: Dict[CellKey, Cell] = {}
        for child in self.children:
            for key, cell in child.cells.items():
                if key in rebuilt:
                    rebuilt[key].merge(cell)
                else:
                    rebuilt[key] = cell.copy()
        self.cells = rebuilt

    def copy_subtree(self) -> "Summary":
        """Deep copy of the subtree rooted at this node."""
        clone = Summary(cells={key: cell.copy() for key, cell in self.cells.items()})
        for child in self.children:
            clone.add_child(child.copy_subtree())
        return clone

    def describe(self) -> Dict[str, List[str]]:
        """Readable intent: attribute -> sorted labels."""
        return {
            attribute: sorted(labels) for attribute, labels in self.intent.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        intent = "; ".join(
            f"{attribute}={{{', '.join(sorted(labels))}}}"
            for attribute, labels in sorted(self.intent.items())
        )
        return (
            f"Summary(id={self.node_id}, cells={self.cell_count}, "
            f"count={self.tuple_count:.2f}, intent=[{intent}])"
        )


def summary_from_cells(cells: Iterable[Cell]) -> Summary:
    """Build a flat summary (no children) covering ``cells``."""
    summary = Summary()
    summary.absorb_cells(cells)
    if not summary.cells:
        raise SummaryError("cannot build a summary from an empty cell collection")
    return summary
