"""Summary nodes: intent, extent, peer-extent and tree structure.

A summary *z* (Definition 1 of the paper) is the bounding box of a cluster of
cells: its *intent* is, per attribute, the union of the labels of the covered
cells; its *extent* is the set of covered cells (``L_z``) together with the
records they aggregate (``R_z`` — represented here by counts and statistics
rather than raw tuples); its *peer-extent* (Definition 3) is the set of peers
owning at least one covered record.

Aggregate cache
---------------
Every node materializes the aggregates the clustering and query layers keep
asking for — descriptor-weight profile, total tuple mass, per-attribute intent
label sets, peer-extent, attribute statistics — instead of rescanning
``cells`` on each access.  The cache follows a delta protocol:

* :meth:`absorb_cell` applies the incoming cell's contribution as a delta
  (cell maps only ever grow during incorporation, so deltas are additive);
* :meth:`recompute_from_children` re-establishes both the cell map *and* the
  cached aggregates as a child-union merge of the children's caches, without
  revisiting individual descriptors per covered cell; the rebuilt map aliases
  the children's cells (copy-on-write via :attr:`Cell.owner`) instead of
  deep-copying O(covered cells) of grades/statistics/peer sets;
* wholesale replacement of ``cells`` (constructor-supplied maps, deep copies)
  marks the cache *dirty*; the next aggregate access rebuilds it from the cell
  map in one pass (:meth:`invalidate_cache` exposes the same hook to any
  out-of-band mutator).

:meth:`check_cache` recomputes everything from scratch and raises on any
divergence; :meth:`SummaryHierarchy.validate` calls it on every node.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.exceptions import SummaryError
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell, CellKey
from repro.saintetiq.stats import StatisticsBundle

_summary_counter = itertools.count()


def _next_summary_id() -> int:
    return next(_summary_counter)


@dataclass
class Summary:
    """A node of the summary hierarchy."""

    node_id: int = field(default_factory=_next_summary_id)
    children: List["Summary"] = field(default_factory=list)
    cells: Dict[CellKey, Cell] = field(default_factory=dict)
    parent: Optional["Summary"] = field(default=None, repr=False, compare=False)

    # Materialized aggregates (see the module docstring for the protocol).
    _profile: Dict[Descriptor, float] = field(
        init=False, default_factory=dict, repr=False, compare=False
    )
    _mass: float = field(init=False, default=0.0, repr=False, compare=False)
    _labels: Dict[str, Set[str]] = field(
        init=False, default_factory=dict, repr=False, compare=False
    )
    _peers: Set[str] = field(init=False, default_factory=set, repr=False, compare=False)
    _stats: StatisticsBundle = field(
        init=False, default_factory=StatisticsBundle, repr=False, compare=False
    )
    _intent_view: Optional[Dict[str, FrozenSet[str]]] = field(
        init=False, default=None, repr=False, compare=False
    )
    _dirty: bool = field(init=False, default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Constructor-supplied cell maps bypass the delta protocol.
        if self.cells:
            self._dirty = True

    # -- structure -------------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, child: "Summary") -> None:
        child.parent = self
        self.children.append(child)

    def remove_child(self, child: "Summary") -> None:
        self.children.remove(child)
        child.parent = None

    def iter_subtree(self) -> Iterable["Summary"]:
        """Depth-first traversal of this node and its descendants."""
        yield self
        for child in self.children:
            yield from child.iter_subtree()

    def leaves(self) -> List["Summary"]:
        return [node for node in self.iter_subtree() if node.is_leaf]

    def depth(self) -> int:
        """Height of the subtree rooted here (a single node has depth 0)."""
        best = 0
        stack: List[Tuple["Summary", int]] = [(self, 0)]
        while stack:
            node, level = stack.pop()
            if node.children:
                next_level = level + 1
                for child in node.children:
                    stack.append((child, next_level))
            elif level > best:
                best = level
        return best

    # -- aggregate cache ---------------------------------------------------------

    def invalidate_cache(self) -> None:
        """Flag the cached aggregates as stale (out-of-band ``cells`` mutation)."""
        self._dirty = True

    def _ensure_cache(self) -> None:
        if self._dirty:
            self._rebuild_cache()

    def _rebuild_cache(self) -> None:
        """One-pass rebuild of every aggregate from the cell map."""
        profile, mass, labels, peers, stats = self._compute_from_cells()
        self._profile = profile
        self._mass = mass
        self._labels = labels
        self._peers = peers
        self._stats = stats
        self._intent_view = None
        self._dirty = False

    def _compute_from_cells(
        self,
    ) -> Tuple[Dict[Descriptor, float], float, Dict[str, Set[str]], Set[str], StatisticsBundle]:
        profile: Dict[Descriptor, float] = {}
        mass = 0.0
        labels: Dict[str, Set[str]] = {}
        peers: Set[str] = set()
        stats = StatisticsBundle()
        for cell in self.cells.values():
            count = cell.tuple_count
            mass += count
            for descriptor in cell.key:
                if descriptor in profile:
                    profile[descriptor] += count
                else:
                    profile[descriptor] = count
                    labels.setdefault(descriptor.attribute, set()).add(descriptor.label)
            peers |= cell.peers
            stats.merge(cell.statistics)
        return profile, mass, labels, peers, stats

    def _apply_cell_delta(self, cell: Cell) -> None:
        """Fold one incoming cell's contribution into the cached aggregates."""
        if self._dirty:
            return  # a full rebuild is pending anyway
        count = cell.tuple_count
        self._mass += count
        profile = self._profile
        for descriptor in cell.key:
            if descriptor in profile:
                profile[descriptor] += count
            else:
                profile[descriptor] = count
                self._labels.setdefault(descriptor.attribute, set()).add(
                    descriptor.label
                )
                self._intent_view = None
        if cell.peers:
            self._peers |= cell.peers
        self._stats.merge(cell.statistics)

    def check_cache(self, rel_tol: float = 1e-9, abs_tol: float = 1e-9) -> None:
        """Recompute every aggregate from scratch and raise on divergence."""
        if self._dirty:
            return  # nothing materialized to check
        profile, mass, labels, peers, stats = self._compute_from_cells()
        if set(profile) != set(self._profile):
            raise SummaryError(
                f"node {self.node_id}: cached profile descriptors diverged"
            )
        for descriptor, weight in profile.items():
            if not math.isclose(
                weight, self._profile[descriptor], rel_tol=rel_tol, abs_tol=abs_tol
            ):
                raise SummaryError(
                    f"node {self.node_id}: cached weight of {descriptor} diverged"
                )
        if not math.isclose(mass, self._mass, rel_tol=rel_tol, abs_tol=abs_tol):
            raise SummaryError(f"node {self.node_id}: cached tuple mass diverged")
        if labels != self._labels:
            raise SummaryError(f"node {self.node_id}: cached intent diverged")
        if peers != self._peers:
            raise SummaryError(f"node {self.node_id}: cached peer-extent diverged")
        for attribute in set(stats.attributes) | set(self._stats.attributes):
            fresh, cached = stats.get(attribute), self._stats.get(attribute)
            if fresh is None or cached is None:
                raise SummaryError(
                    f"node {self.node_id}: cached statistics attributes diverged"
                )
            if not math.isclose(
                fresh.count, cached.count, rel_tol=rel_tol, abs_tol=abs_tol
            ) or not math.isclose(
                fresh.total, cached.total, rel_tol=rel_tol, abs_tol=abs_tol
            ):
                raise SummaryError(
                    f"node {self.node_id}: cached statistics of {attribute!r} diverged"
                )

    # -- intent / extent --------------------------------------------------------

    @property
    def profile(self) -> Dict[Descriptor, float]:
        """Descriptor-weight profile: descriptor -> covered tuple mass.

        The returned mapping is the live cache — treat it as read-only.
        """
        self._ensure_cache()
        return self._profile

    @property
    def intent(self) -> Dict[str, FrozenSet[str]]:
        """Per-attribute set of labels describing the covered cells.

        The returned mapping is a cached view shared between calls — treat it
        as read-only.
        """
        self._ensure_cache()
        if self._intent_view is None:
            self._intent_view = {
                attribute: frozenset(values)
                for attribute, values in self._labels.items()
            }
        return self._intent_view

    @property
    def descriptors(self) -> Set[Descriptor]:
        """All descriptors appearing in the intent."""
        self._ensure_cache()
        return set(self._profile)

    @property
    def attributes(self) -> List[str]:
        self._ensure_cache()
        return sorted(self._labels)

    @property
    def tuple_count(self) -> float:
        self._ensure_cache()
        return self._mass

    @property
    def cell_count(self) -> int:
        return len(self.cells)

    @property
    def peer_extent(self) -> Set[str]:
        """Definition 3: peers owning at least one record described here."""
        self._ensure_cache()
        return set(self._peers)

    def statistics(self) -> StatisticsBundle:
        """Aggregated attribute statistics over the covered cells."""
        self._ensure_cache()
        return self._stats.copy()

    def covers(self, other: "Summary") -> bool:
        """Generalization test: does this summary's extent include ``other``'s?

        Implements the partial order of Definition 2 at the granularity of
        cells (``R_z ⊆ R_z'`` holds exactly when ``L_z ⊆ L_z'`` for summaries
        built from the same cell population).
        """
        return other.cells.keys() <= self.cells.keys()

    def labels_of(self, attribute: str) -> FrozenSet[str]:
        return self.intent.get(attribute, frozenset())

    # -- cell bookkeeping --------------------------------------------------------

    def absorb_cell(self, cell: Cell) -> None:
        """Fold a cell (copied) into this node's own extent.

        The cell map may alias cells owned by descendants (structural merges
        share instead of copying); a node only mutates cells it owns, taking a
        private copy-on-write otherwise.  Because incorporation descends from
        the root, every ancestor breaks its alias for a key *before* the
        owning descendant mutates that cell in place.
        """
        existing = self.cells.get(cell.key)
        if existing is None:
            owned = cell.copy()
            owned.owner = self
            self.cells[cell.key] = owned
        else:
            if existing.owner is not self:
                existing = existing.copy()
                existing.owner = self
                self.cells[cell.key] = existing
            existing.merge(cell)
        self._apply_cell_delta(cell)

    def absorb_cells(self, cells: Iterable[Cell]) -> None:
        for cell in cells:
            self.absorb_cell(cell)

    def recompute_from_children(self, *, copy_cells: bool = False) -> None:
        """Rebuild this node's cell map as the union of its children's.

        Internal nodes of the hierarchy always satisfy this invariant; it is
        re-established after structural operators (merge/split) run.  The
        cached aggregates are rebuilt alongside by merging the children's
        caches — no per-cell descriptor walk.

        The rebuilt map *aliases* the children's cells instead of deep-copying
        them: only keys covered by several children need a fresh merged copy
        (owned by this node), so a structural merge of disjoint extents costs
        one dict insert per covered cell rather than one deep copy.  Aliased
        cells stay owned by the child; :meth:`absorb_cell` copies on write
        before this node ever mutates one.  ``copy_cells=True`` restores the
        legacy deep-copy behaviour (kept for A/B benchmarking).
        """
        if not self.children:
            return
        rebuilt: Dict[CellKey, Cell] = {}
        profile: Dict[Descriptor, float] = {}
        mass = 0.0
        labels: Dict[str, Set[str]] = {}
        peers: Set[str] = set()
        stats = StatisticsBundle()
        for child in self.children:
            if not rebuilt and not copy_cells:
                # Fast path for the first child: a wholesale shallow copy.
                rebuilt = dict(child.cells)
            else:
                for key, cell in child.cells.items():
                    existing = rebuilt.get(key)
                    if existing is None:
                        if copy_cells:
                            copied = cell.copy()
                            copied.owner = self
                            rebuilt[key] = copied
                        else:
                            rebuilt[key] = cell
                    else:
                        if existing.owner is not self:
                            existing = existing.copy()
                            existing.owner = self
                            rebuilt[key] = existing
                        existing.merge(cell)
            child._ensure_cache()
            mass += child._mass
            for descriptor, weight in child._profile.items():
                if descriptor in profile:
                    profile[descriptor] += weight
                else:
                    profile[descriptor] = weight
                    labels.setdefault(descriptor.attribute, set()).add(
                        descriptor.label
                    )
            peers |= child._peers
            stats.merge(child._stats)
        self.cells = rebuilt
        self._profile = profile
        self._mass = mass
        self._labels = labels
        self._peers = peers
        self._stats = stats
        self._intent_view = None
        self._dirty = False

    def copy_subtree(self) -> "Summary":
        """Deep copy of the subtree rooted at this node."""
        clone = Summary(cells={key: cell.copy() for key, cell in self.cells.items()})
        for child in self.children:
            clone.add_child(child.copy_subtree())
        return clone

    def describe(self) -> Dict[str, List[str]]:
        """Readable intent: attribute -> sorted labels."""
        return {
            attribute: sorted(labels) for attribute, labels in self.intent.items()
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        intent = "; ".join(
            f"{attribute}={{{', '.join(sorted(labels))}}}"
            for attribute, labels in sorted(self.intent.items())
        )
        return (
            f"Summary(id={self.node_id}, cells={self.cell_count}, "
            f"count={self.tuple_count:.2f}, intent=[{intent}])"
        )


def summary_from_cells(cells: Iterable[Cell]) -> Summary:
    """Build a flat summary (no children) covering ``cells``."""
    summary = Summary()
    summary.absorb_cells(cells)
    if not summary.cells:
        raise SummaryError("cannot build a summary from an empty cell collection")
    return summary


def collect_leaf_cells(root: Summary) -> List[Cell]:
    """The populated cells at the leaves of ``root``'s subtree, key-merged.

    Shared by hierarchy merging and (de)serialization: both rebuild a summary
    from the finest-grained extent, so sibling leaves covering the same key
    (possible after structural operators) are merged into one cell copy.
    """
    merged: Dict[CellKey, Cell] = {}
    for leaf in root.leaves():
        for key, cell in leaf.cells.items():
            if key in merged:
                merged[key].merge(cell)
            else:
                merged[key] = cell.copy()
    return list(merged.values())
