"""Summary hierarchies: the tree of summaries built by the summarization service.

A :class:`SummaryHierarchy` wraps a :class:`~repro.saintetiq.clustering.SummaryBuilder`
together with the mapping service that feeds it, and exposes the operations
the P2P layer relies on:

* incremental incorporation of records (local summary maintenance),
* structural figures used by the cost model (node count, depth, arity,
  estimated size in bytes),
* a *signature* — the set of descriptors appearing in summary intents — whose
  drift is how partners detect that their local summary has changed enough to
  warrant a ``push`` message (Section 4.2.1),
* deep copies, used when a local summary is shipped to the superpeer.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.querying.engine import HierarchyQueryIndex, PropositionKey
    from repro.querying.proposition import Proposition
    from repro.querying.selection import QuerySelection

from repro.exceptions import SummaryError
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell
from repro.saintetiq.clustering import ClusteringParameters, SummaryBuilder
from repro.saintetiq.mapping import MappingService
from repro.saintetiq.summary import Summary, collect_leaf_cells

#: Rough per-summary storage footprint used by the cost model (Section 6.1.1).
DEFAULT_SUMMARY_SIZE_BYTES = 512


class SummaryHierarchy:
    """A summary tree over one (or several merged) data sources."""

    def __init__(
        self,
        background: BackgroundKnowledge,
        attributes: Optional[Iterable[str]] = None,
        parameters: Optional[ClusteringParameters] = None,
        owner: Optional[str] = None,
    ) -> None:
        self._background = background
        self._mapping = MappingService(background, attributes=attributes)
        self._builder = SummaryBuilder(parameters)
        self._owner = owner
        self._records_processed = 0
        # Derived figures memoized against the builder's mutation counter:
        # every tree mutation goes through ``SummaryBuilder.incorporate``, so
        # a matching counter proves the cached value is still current.
        self._depth_cache: Optional[Tuple[int, int]] = None
        self._signature_cache: Optional[Tuple[int, FrozenSet[Descriptor]]] = None
        self._index_cache: Optional[Tuple[int, "HierarchyQueryIndex"]] = None
        self._selection_cache: Dict["PropositionKey", "QuerySelection"] = {}

    # -- accessors -----------------------------------------------------------------

    @property
    def background(self) -> BackgroundKnowledge:
        return self._background

    @property
    def mapping(self) -> MappingService:
        return self._mapping

    @property
    def root(self) -> Summary:
        return self._builder.root

    @property
    def owner(self) -> Optional[str]:
        return self._owner

    @property
    def records_processed(self) -> int:
        return self._records_processed

    @property
    def attributes(self) -> List[str]:
        return self._mapping.attributes

    # -- construction / maintenance -------------------------------------------------

    def add_record(self, record: Mapping[str, object]) -> int:
        """Map one record and incorporate the resulting cells.

        Returns the number of cells the record contributed to.  Records that
        fall outside the background-knowledge support contribute nothing.
        """
        contributions = 0
        for key, weight, grades in self._mapping.map_record(record):
            cell = Cell(key=key)
            cell.absorb_record(record, weight, grades, peer=self._owner)
            self._builder.incorporate(cell)
            contributions += 1
        if contributions:
            self._records_processed += 1
        return contributions

    def add_records(self, records: Iterable[Mapping[str, object]]) -> int:
        """Incorporate a batch of records; returns how many produced cells."""
        added = 0
        for record in records:
            if self.add_record(record):
                added += 1
        return added

    def incorporate_cell(self, cell: Cell) -> None:
        """Incorporate an externally produced cell (used by hierarchy merging)."""
        self._builder.incorporate(cell)

    def incorporate_cells(self, cells: Iterable[Cell]) -> int:
        """Incorporate a batch of externally produced cells; returns how many."""
        return self._builder.incorporate_all(cells)

    # -- structure metrics -----------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.root.cells

    def node_count(self) -> int:
        return sum(1 for _node in self.root.iter_subtree())

    def leaf_count(self) -> int:
        return len(self.root.leaves())

    def depth(self) -> int:
        """Tree height, memoized until the next mutation (see ``_depth_cache``)."""
        version = self._builder.mutation_count
        if self._depth_cache is None or self._depth_cache[0] != version:
            self._depth_cache = (version, self.root.depth())
        return self._depth_cache[1]

    def average_arity(self) -> float:
        """Average number of children of internal nodes (the ``B`` of the model)."""
        internal = [node for node in self.root.iter_subtree() if not node.is_leaf]
        if not internal:
            return 0.0
        return sum(len(node.children) for node in internal) / len(internal)

    def size_bytes(self, per_summary: int = DEFAULT_SUMMARY_SIZE_BYTES) -> int:
        """Estimated storage footprint (``k`` bytes per summary node)."""
        return per_summary * self.node_count()

    def leaves(self) -> List[Summary]:
        return self.root.leaves()

    def leaf_cells(self) -> List[Cell]:
        """The populated cells at the leaves (input of hierarchy merging)."""
        return collect_leaf_cells(self.root)

    def peer_extent(self) -> Set[str]:
        """All peers contributing data to this hierarchy (Definition 4)."""
        return self.root.peer_extent

    # -- query engine ------------------------------------------------------------------

    def query_index(self) -> "HierarchyQueryIndex":
        """The descriptor → summary-node inverted index for the current tree.

        Memoized against the builder's mutation counter, exactly like
        :meth:`signature` and :meth:`depth`: the index (and the selection
        cache riding on it) is rebuilt lazily after the next mutation.
        """
        from repro.querying.engine import HierarchyQueryIndex

        version = self._builder.mutation_count
        if self._index_cache is None or self._index_cache[0] != version:
            self._index_cache = (version, HierarchyQueryIndex(self.root))
            self._selection_cache = {}
        return self._index_cache[1]

    def select(self, proposition: "Proposition") -> "QuerySelection":
        """Indexed + memoized selection: the fast path of ``select_summaries``.

        Node-for-node identical to
        :func:`repro.querying.selection.select_summaries` on this hierarchy
        (same ``Z_Q`` order, partial cells and ``visited_nodes``), but the
        exploration runs over the inverted index and whole
        :class:`~repro.querying.selection.QuerySelection` results are cached
        per canonical proposition until the next mutation.  The returned
        selection is shared between callers — treat it as read-only
        (``matching_cells`` hands out copies; ``iter_matching_cells`` does
        not).
        """
        from repro.querying.engine import proposition_key
        from repro.querying.selection import QuerySelection

        if self.is_empty():
            return QuerySelection()
        index = self.query_index()  # refreshes the selection cache on mutation
        key = proposition_key(proposition)
        selection = self._selection_cache.get(key)
        if selection is None:
            selection = index.select(proposition)
            self._selection_cache[key] = selection
        return selection

    # -- drift detection ---------------------------------------------------------------

    def signature(self) -> FrozenSet[Descriptor]:
        """The set of descriptors appearing anywhere in the hierarchy's intents.

        The paper detects summary modification *"by observing the
        appearance/disappearance of descriptors in summary intentions"*; the
        signature is exactly that observable.  Memoized until the next
        mutation: drift checks run on every maintenance tick, far more often
        than the tree changes.
        """
        version = self._builder.mutation_count
        if self._signature_cache is None or self._signature_cache[0] != version:
            descriptors: Set[Descriptor] = set()
            for node in self.root.iter_subtree():
                descriptors |= node.descriptors
            self._signature_cache = (version, frozenset(descriptors))
        return self._signature_cache[1]

    def drift_from(self, signature: FrozenSet[Descriptor]) -> float:
        """Fraction of descriptors that appeared or disappeared since ``signature``.

        Returns a value in [0, 1]; 0 means the intents are unchanged.
        """
        current = self.signature()
        union = current | signature
        if not union:
            return 0.0
        return len(current ^ signature) / len(union)

    # -- copies --------------------------------------------------------------------------

    def snapshot(self) -> "SummaryHierarchy":
        """Deep copy of this hierarchy (e.g. the version shipped to a superpeer)."""
        clone = SummaryHierarchy(
            self._background,
            attributes=self._mapping.attributes,
            parameters=self._builder.parameters,
            owner=self._owner,
        )
        clone._builder = SummaryBuilder(self._builder.parameters)
        clone._builder.incorporate_all(self.leaf_cells())
        clone._records_processed = self._records_processed
        return clone

    def validate(self) -> None:
        """Check structural invariants; raises :class:`SummaryError` on violation.

        * every internal node's cell map is the union of its children's,
        * every leaf covers at least one cell (once the hierarchy is non-empty),
        * the generalization partial order of Definition 2 holds along edges,
        * every node's cached aggregates match a from-scratch recomputation.
        """
        if self.is_empty():
            return
        for node in self.root.iter_subtree():
            node.check_cache()
            if node.is_leaf:
                if not node.cells:
                    raise SummaryError(f"leaf {node.node_id} covers no cell")
                continue
            child_keys: Set[object] = set()
            for child in node.children:
                child_keys |= set(child.cells)
                if not node.covers(child):
                    raise SummaryError(
                        f"node {node.node_id} does not generalize its child "
                        f"{child.node_id}"
                    )
            if child_keys != set(node.cells):
                raise SummaryError(
                    f"node {node.node_id} cells differ from the union of its "
                    f"children's cells"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SummaryHierarchy(owner={self._owner!r}, nodes={self.node_count()}, "
            f"leaves={self.leaf_count()}, depth={self.depth()})"
        )
