"""The summarization service: incremental conceptual clustering of cells.

Cells produced by the mapping service are incorporated one by one into a
hierarchy of summaries, descending the tree top-down and choosing at each
level between four operators — *incorporate into the best child*, *create* a
new child, *merge* the two best children, *split* the best child — the choice
being driven by a partition score.  This mirrors the Cobweb-inspired process
described in Section 3.2.2 of the paper; the partition score is a
category-utility analogue computed over descriptor distributions.

The process is incremental: raw data are parsed once, and incorporating a cell
costs time proportional to the depth of the tree and the arity of its nodes,
which matches the paper's claim of linear overall complexity in the number of
cells (Section 3.2.3).

Cache-invariant contract
------------------------
The O(depth · arity) bound only holds because the scoring loop consumes the
aggregates each :class:`~repro.saintetiq.summary.Summary` materializes instead
of rescanning covered cells.  The division of labour is:

* **Deltas are owned by** ``Summary.absorb_cell`` — the only way cells enter a
  node during incorporation.  It folds the incoming cell's contribution into
  the cached profile / mass / intent / peer-extent / statistics, so by the
  time :meth:`SummaryBuilder._choose_operator` runs, ``node.profile`` already
  reflects the cell absorbed at that level.
* **Structural operators** (merge, split, arity enforcement) never edit cell
  maps in place; merge builds the replacement node's cache as a child-union
  merge via ``Summary.recompute_from_children``, and split leaves every
  surviving node's cell map (hence cache) untouched.  The merged node's cell
  map *aliases* its children's cells (copy-on-write, keyed on ``Cell.owner``)
  so a structural merge costs O(covered cells) dict inserts, not O(covered
  cells) deep copies of grades/statistics/peer sets;
  ``SummaryBuilder(copy_on_merge=True)`` restores the legacy deep-copy merge
  for A/B benchmarking.
* **Dirty flags are set** only by wholesale cell-map replacement (constructor
  supplied maps, ``Summary.invalidate_cache``) and **cleared** by the next
  aggregate access (lazy one-pass rebuild) or by
  ``recompute_from_children``.  The builder itself never marks nodes dirty —
  every mutation it performs goes through a delta-maintaining path.
* The scoring fast path additionally relies on the internal-node invariant
  (a node's cell map is the union of its children's): the candidate
  partitions of all four operators then share one parent distribution —
  ``node.profile`` — so the parent term of the score is computed once per
  level instead of once per candidate.

``SummaryBuilder(reference_scoring=True)`` bypasses every cached aggregate and
re-derives profiles from the cell maps with the naive four-way scoring — the
slow reference implementation that equivalence tests compare against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import SummaryError
from repro.fuzzy.linguistic import Descriptor
from repro.saintetiq.cell import Cell
from repro.saintetiq.summary import Summary

#: A descriptor-weight profile: descriptor -> weighted tuple count.
Profile = Dict[Descriptor, float]


@dataclass(frozen=True)
class ClusteringParameters:
    """Tunable knobs of the summarization service.

    Attributes
    ----------
    max_children:
        Target arity ``B`` of internal nodes.  When a node exceeds it, the two
        most similar children are merged, which keeps the hierarchy's storage
        cost at the ``k (B^{d+1}-1)/(B-1)`` bound used by the cost model.
    enable_merge / enable_split:
        Allow disabling the structural operators (useful for ablations).
    """

    max_children: int = 4
    enable_merge: bool = True
    enable_split: bool = True

    def __post_init__(self) -> None:
        if self.max_children < 2:
            raise SummaryError("max_children must be at least 2")


def _cell_profile(cell: Cell) -> Profile:
    return {descriptor: cell.tuple_count for descriptor in cell.key}


def _node_profile_fresh(node: Summary) -> Profile:
    """Rebuild the profile from the cell map, bypassing the cache.

    This is the original O(covered cells) computation, kept as the reference
    the cached fast path is validated against.
    """
    profile: Profile = {}
    for cell in node.cells.values():
        for descriptor in cell.key:
            profile[descriptor] = profile.get(descriptor, 0.0) + cell.tuple_count
    return profile


def _profile_total(profile: Profile) -> float:
    """Total tuple mass of a profile (counted once per cell, not per descriptor)."""
    # Each cell contributes its count once per attribute; dividing by the
    # number of attributes would recover the exact mass, but for scoring we
    # only need a quantity proportional to it, so the raw sum is fine as long
    # as it is used consistently.
    return sum(profile.values())


def _combine_profiles(*profiles: Profile) -> Profile:
    combined: Profile = {}
    for profile in profiles:
        for descriptor, weight in profile.items():
            combined[descriptor] = combined.get(descriptor, 0.0) + weight
    return combined


def partition_score(profiles: Sequence[Profile]) -> float:
    """Category-utility-like score of a candidate partition.

    Higher is better.  For children ``C_k`` with descriptor distributions
    ``P(d | C_k)`` and parent distribution ``P(d)``::

        score = (1 / n) * sum_k P(C_k) * sum_d [ P(d|C_k)^2 - P(d)^2 ]

    The score rewards partitions whose children concentrate descriptor mass
    (are internally homogeneous) relative to their parent.
    """
    profiles = [profile for profile in profiles if profile]
    if not profiles:
        return 0.0
    totals = [_profile_total(profile) for profile in profiles]
    grand_total = sum(totals)
    if grand_total <= 0.0:
        return 0.0
    parent = _combine_profiles(*profiles)
    parent_term = sum((weight / grand_total) ** 2 for weight in parent.values())
    score = 0.0
    for profile, total in zip(profiles, totals):
        if total <= 0.0:
            continue
        child_term = sum((weight / total) ** 2 for weight in profile.values())
        score += (total / grand_total) * (child_term - parent_term)
    return score / len(profiles)


def _quantize_score(score: float) -> float:
    """Round a partition score to 12 significant digits.

    Candidate scores frequently tie *exactly* in real arithmetic (symmetric
    partitions), where the sub-ulp noise of float summation order would
    otherwise decide the operator.  Quantizing before the argmax makes the
    choice deterministic — ties break by candidate order (add, create, merge,
    split) — and independent of how the score was associated, so the cached
    fast path and the recompute-from-scratch reference pick identical
    operators.
    """
    return float(f"{score:.12e}")


def _term_stats(profile: Profile) -> Tuple[float, float]:
    """(total mass, sum of squared weights) of a profile in one pass."""
    total = 0.0
    squares = 0.0
    for weight in profile.values():
        total += weight
        squares += weight * weight
    return total, squares


class _PartitionScorer:
    """Scores the four candidate partitions of one tree level.

    All four candidates redistribute the *same* extent (the node's cells, the
    incoming cell included), so they share the parent distribution: the parent
    term is computed once from the node's cached profile, and each candidate
    only recomputes the terms of the children it actually modifies.
    """

    def __init__(self, node: Summary, profiles: Sequence[Profile]) -> None:
        parent_profile = node.profile
        self.grand_total = _profile_total(parent_profile)
        if self.grand_total > 0.0:
            inv = 1.0 / self.grand_total
            self.parent_term = sum(
                (weight * inv) ** 2 for weight in parent_profile.values()
            )
        else:
            self.parent_term = 0.0
        self.stats = [_term_stats(profile) for profile in profiles]
        self.nonempty = [bool(profile) for profile in profiles]
        self.base_count = sum(self.nonempty)
        self.base = sum(self.contribution(total, sq) for total, sq in self.stats)

    def contribution(self, total: float, squares: float) -> float:
        """One child's ``P(C_k) * (child_term - parent_term)`` summand."""
        if self.grand_total <= 0.0 or total <= 0.0:
            return 0.0
        child_term = squares / (total * total)
        return (total / self.grand_total) * (child_term - self.parent_term)

    def score(self, summed: float, count: int) -> float:
        if count <= 0 or self.grand_total <= 0.0:
            return 0.0
        return summed / count

    def without(self, *indices: int) -> Tuple[float, int]:
        """Base sum and non-empty count with the given children removed."""
        summed = self.base
        count = self.base_count
        for index in indices:
            summed -= self.contribution(*self.stats[index])
            if self.nonempty[index]:
                count -= 1
        return summed, count


class SummaryBuilder:
    """Incrementally builds and maintains a summary hierarchy from cells."""

    def __init__(
        self,
        parameters: Optional[ClusteringParameters] = None,
        *,
        reference_scoring: bool = False,
        copy_on_merge: bool = False,
    ) -> None:
        self._parameters = parameters or ClusteringParameters()
        self._root = Summary()
        self._incorporated = 0
        self._reference_scoring = reference_scoring
        self._copy_on_merge = copy_on_merge

    @property
    def root(self) -> Summary:
        return self._root

    @property
    def parameters(self) -> ClusteringParameters:
        return self._parameters

    @property
    def incorporated_cells(self) -> int:
        """Number of cell incorporations performed so far."""
        return self._incorporated

    @property
    def mutation_count(self) -> int:
        """Monotonic counter bumped by every mutating entry point.

        Every mutation of the tree (absorption, structural operators) happens
        inside :meth:`incorporate`, so derived caches — tree height, intent
        signatures — can key their validity on this counter.
        """
        return self._incorporated

    def _profile_of(self, node: Summary) -> Profile:
        if self._reference_scoring:
            return _node_profile_fresh(node)
        return node.profile

    # -- public API --------------------------------------------------------------

    def incorporate(self, cell: Cell) -> None:
        """Incorporate one populated cell into the hierarchy."""
        if not cell.key:
            raise SummaryError("cannot incorporate an empty cell")
        self._incorporate_at(self._root, cell.copy())
        self._incorporated += 1

    def incorporate_all(self, cells: Iterable[Cell]) -> int:
        count = 0
        for cell in cells:
            self.incorporate(cell)
            count += 1
        return count

    def adopt_root(self, root: Summary, incorporated: int) -> None:
        """Install an externally rebuilt tree (exact deserialization).

        ``incorporated`` restores the mutation counter so caches keyed on
        :attr:`mutation_count` stay coherent with the original builder.
        Subsequent :meth:`incorporate` calls continue from that count, exactly
        as they would have on the adopted tree's original builder.
        """
        if incorporated < 0:
            raise SummaryError("incorporated count cannot be negative")
        self._root = root
        self._incorporated = incorporated

    # -- incorporation logic -------------------------------------------------------

    def _incorporate_at(self, node: Summary, cell: Cell) -> None:
        node.absorb_cell(cell)

        if node.is_leaf:
            self._handle_leaf(node, cell)
            return

        host = self._choose_operator(node, cell)
        if host is None:
            # A brand-new child was created for the cell; nothing to recurse into.
            return
        self._incorporate_at(host, cell)
        self._enforce_arity(node)

    def _handle_leaf(self, node: Summary, cell: Cell) -> None:
        """Keep the leaf invariant: every leaf covers exactly one cell key."""
        existing_keys = set(node.cells)
        if len(existing_keys) <= 1:
            # Either a fresh root or a leaf holding the same cell key: the
            # absorb in the caller already merged the counts.
            return
        # The leaf now covers several keys: expand it into one child per key.
        for key, covered in node.cells.items():
            child = Summary()
            child.absorb_cell(covered)
            node.add_child(child)

    def _choose_operator(self, node: Summary, cell: Cell) -> Optional[Summary]:
        """Pick the operator with the best partition score; return the host child.

        Returning ``None`` means a new child was created and the descent stops.
        """
        children = node.children

        # A cell key already present in the tree must always be routed back to
        # the subtree that holds it: leaves stay in one-to-one correspondence
        # with populated grid cells, which keeps the hierarchy size bounded by
        # the background-knowledge grid (Section 6.1.1 of the paper).
        for child in children:
            if cell.key in child.cells:
                return child

        cell_profile = _cell_profile(cell)
        profiles = [self._profile_of(child) for child in children]

        ranked = self._rank_hosts(children, profiles, cell_profile)
        best_index = ranked[0]

        if self._reference_scoring:
            candidates = self._candidates_reference(
                node, children, profiles, cell_profile, ranked
            )
        else:
            candidates = self._candidates_cached(
                node, children, profiles, cell_profile, ranked
            )

        score, operator, argument = max(
            candidates, key=lambda item: _quantize_score(item[0])
        )
        del score  # only the argmax matters

        if operator == "add":
            assert argument is not None
            return children[argument]
        if operator == "create":
            new_child = Summary()
            new_child.absorb_cell(cell)
            node.add_child(new_child)
            self._enforce_arity(node)
            return None
        if operator == "merge":
            assert argument is not None
            merged = self._merge_children(node, children[best_index], children[argument])
            return merged
        # operator == "split"
        best_child = children[best_index]
        self._split_child(node, best_child)
        # After the split the partition changed: pick the best host among the
        # new children with a plain "add" (no further structural operator, to
        # keep the incorporation cost bounded).
        new_children = node.children
        new_profiles = [self._profile_of(child) for child in new_children]
        best = self._rank_hosts(new_children, new_profiles, cell_profile)[0]
        return new_children[best]

    def _candidates_cached(
        self,
        node: Summary,
        children: Sequence[Summary],
        profiles: Sequence[Profile],
        cell_profile: Profile,
        ranked: Sequence[int],
    ) -> List[Tuple[float, str, Optional[int]]]:
        """Candidate scores sharing the parent term across the four operators."""
        best_index = ranked[0]
        scorer = _PartitionScorer(node, profiles)
        cell_total, cell_squares = _term_stats(cell_profile)
        candidates: List[Tuple[float, str, Optional[int]]] = []

        # Option 1: incorporate into the best existing child.  Only the
        # squared weights of the cell's own descriptors change.
        add_total = scorer.stats[best_index][0] + cell_total
        add_squares = scorer.stats[best_index][1]
        best_profile = profiles[best_index]
        for descriptor, weight in cell_profile.items():
            previous = best_profile.get(descriptor, 0.0)
            combined = previous + weight
            add_squares += combined * combined - previous * previous
        summed, count = scorer.without(best_index)
        candidates.append(
            (
                scorer.score(summed + scorer.contribution(add_total, add_squares), count + 1),
                "add",
                best_index,
            )
        )

        # Option 2: create a new child for the cell alone.
        candidates.append(
            (
                scorer.score(
                    scorer.base + scorer.contribution(cell_total, cell_squares),
                    scorer.base_count + 1,
                ),
                "create",
                None,
            )
        )

        # Option 3: merge the two best children and incorporate there.
        if self._parameters.enable_merge and len(children) >= 2:
            second_index = ranked[1]
            merged_profile = _combine_profiles(
                profiles[best_index], profiles[second_index], cell_profile
            )
            merged_total, merged_squares = _term_stats(merged_profile)
            summed, count = scorer.without(best_index, second_index)
            candidates.append(
                (
                    scorer.score(
                        summed + scorer.contribution(merged_total, merged_squares),
                        count + 1,
                    ),
                    "merge",
                    second_index,
                )
            )

        # Option 4: split the best child (promote its children) and re-add.
        best_child = children[best_index]
        if self._parameters.enable_split and not best_child.is_leaf:
            summed, count = scorer.without(best_index)
            for grandchild in best_child.children:
                grandchild_profile = self._profile_of(grandchild)
                summed += scorer.contribution(*_term_stats(grandchild_profile))
                if grandchild_profile:
                    count += 1
            summed += scorer.contribution(cell_total, cell_squares)
            candidates.append((scorer.score(summed, count + 1), "split", None))

        return candidates

    def _candidates_reference(
        self,
        node: Summary,
        children: Sequence[Summary],
        profiles: Sequence[Profile],
        cell_profile: Profile,
        ranked: Sequence[int],
    ) -> List[Tuple[float, str, Optional[int]]]:
        """The original candidate construction: four full partition scores."""
        del node  # the reference path re-derives the parent per candidate
        best_index = ranked[0]
        candidates: List[Tuple[float, str, Optional[int]]] = []

        add_profiles = list(profiles)
        add_profiles[best_index] = _combine_profiles(
            profiles[best_index], cell_profile
        )
        candidates.append((partition_score(add_profiles), "add", best_index))

        create_profiles = list(profiles) + [dict(cell_profile)]
        candidates.append((partition_score(create_profiles), "create", None))

        if self._parameters.enable_merge and len(children) >= 2:
            second_index = ranked[1]
            merge_profiles = [
                profile
                for index, profile in enumerate(profiles)
                if index not in (best_index, second_index)
            ]
            merge_profiles.append(
                _combine_profiles(
                    profiles[best_index], profiles[second_index], cell_profile
                )
            )
            candidates.append((partition_score(merge_profiles), "merge", second_index))

        best_child = children[best_index]
        if self._parameters.enable_split and not best_child.is_leaf:
            split_profiles = [
                profile
                for index, profile in enumerate(profiles)
                if index != best_index
            ]
            split_profiles.extend(
                _node_profile_fresh(grandchild) for grandchild in best_child.children
            )
            split_profiles.append(dict(cell_profile))
            candidates.append((partition_score(split_profiles), "split", None))

        return candidates

    def _rank_hosts(
        self,
        children: Sequence[Summary],
        profiles: Sequence[Profile],
        cell_profile: Profile,
    ) -> List[int]:
        """Children indices ranked by affinity with the incoming cell.

        Affinities are quantized like partition scores: real-arithmetic ties
        must rank by child order, not by sub-ulp float noise, or the cached
        and reference scorers could pick different hosts.
        """
        cell_descriptors = set(cell_profile)

        def affinity(index: int) -> Tuple[float, float]:
            profile = profiles[index]
            total = _profile_total(profile)
            if total <= 0.0:
                return (0.0, 0.0)
            overlap = sum(
                profile.get(descriptor, 0.0) for descriptor in cell_descriptors
            )
            return (_quantize_score(overlap / total), _quantize_score(overlap))

        return sorted(range(len(children)), key=affinity, reverse=True)

    # -- structural operators -----------------------------------------------------

    def _merge_children(
        self, parent: Summary, first: Summary, second: Summary
    ) -> Summary:
        """Replace two children by a single node having both as children."""
        merged = Summary()
        # Collapse trivial structure: if both were leaves the merged node keeps
        # them as children so the leaf invariant is preserved at the next level.
        parent.remove_child(first)
        parent.remove_child(second)
        merged.add_child(first)
        merged.add_child(second)
        # Cell map and cached aggregates in one child-union pass (cells are
        # aliased, not copied, unless the legacy A/B mode asks otherwise).
        merged.recompute_from_children(copy_cells=self._copy_on_merge)
        parent.add_child(merged)
        return merged

    def _split_child(self, parent: Summary, child: Summary) -> None:
        """Remove ``child`` and promote its children one level up."""
        grandchildren = list(child.children)
        parent.remove_child(child)
        for grandchild in grandchildren:
            child.remove_child(grandchild)
            parent.add_child(grandchild)

    def _enforce_arity(self, node: Summary) -> None:
        """Keep the number of children at or below ``max_children``."""
        while len(node.children) > self._parameters.max_children:
            profiles = [self._profile_of(child) for child in node.children]
            index_a, index_b = _most_similar_pair(profiles)
            self._merge_children(node, node.children[index_a], node.children[index_b])


def _most_similar_pair(profiles: Sequence[Profile]) -> Tuple[int, int]:
    """Indices of the two profiles with the highest cosine-like similarity.

    Similarities are quantized like partition scores: exact ties (e.g. two
    pairs of proportional profiles, both at similarity 1.0) must break by pair
    order, not by sub-ulp float noise.
    """
    best_pair = (0, 1)
    best_similarity = -1.0
    for i in range(len(profiles)):
        for j in range(i + 1, len(profiles)):
            similarity = _quantize_score(_profile_similarity(profiles[i], profiles[j]))
            if similarity > best_similarity:
                best_similarity = similarity
                best_pair = (i, j)
    return best_pair


def _profile_similarity(first: Profile, second: Profile) -> float:
    """Cosine similarity between two descriptor-weight profiles."""
    shared = set(first) & set(second)
    if not shared:
        return 0.0
    dot = sum(first[d] * second[d] for d in shared)
    norm_first = sum(weight * weight for weight in first.values()) ** 0.5
    norm_second = sum(weight * weight for weight in second.values()) ** 0.5
    if norm_first == 0.0 or norm_second == 0.0:
        return 0.0
    return dot / (norm_first * norm_second)
