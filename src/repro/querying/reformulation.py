"""Query reformulation: crisp selection queries -> flexible queries.

Section 5.1 of the paper: every selection predicate's original value is
replaced by the corresponding Background-Knowledge descriptors, e.g.
``bmi < 19`` becomes ``bmi in {underweight, normal}``.  The reformulated query
scope is a superset of the original scope (false positives are possible, false
negatives are not): every descriptor whose fuzzy set intersects the predicate's
solution set is kept.
"""

from __future__ import annotations

from typing import List

from repro.database.query import (
    AttributeIn,
    Comparison,
    DescriptorPredicate,
    Predicate,
    SelectionQuery,
)
from repro.exceptions import QueryError
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.linguistic import Descriptor
from repro.fuzzy.membership import (
    CrispSetMembership,
    TrapezoidalMembership,
    TriangularMembership,
)

#: Number of sample points used to test numeric predicate / fuzzy-set overlap.
_SUPPORT_SAMPLES = 129


def reformulate(
    query: SelectionQuery, background: BackgroundKnowledge
) -> SelectionQuery:
    """Rewrite ``query`` so every predicate over a BK attribute is flexible.

    Predicates over attributes the BK does not describe are left untouched
    (they simply cannot be checked against summaries and will be re-applied on
    raw records at the data sources).
    """
    new_predicates: List[Predicate] = []
    for predicate in query.predicates:
        if isinstance(predicate, DescriptorPredicate):
            _check_descriptors(predicate, background)
            new_predicates.append(predicate)
            continue
        if predicate.attribute not in background:
            new_predicates.append(predicate)
            continue
        new_predicates.append(_reformulate_predicate(predicate, background))
    return SelectionQuery(query.relation, new_predicates, query.select)


def _check_descriptors(
    predicate: DescriptorPredicate, background: BackgroundKnowledge
) -> None:
    unknown = [
        descriptor
        for descriptor in predicate.descriptors
        if not background.has_descriptor(descriptor)
    ]
    if unknown:
        raise QueryError(
            f"query uses descriptors unknown to the background knowledge: {unknown}"
        )


def _reformulate_predicate(
    predicate: Predicate, background: BackgroundKnowledge
) -> DescriptorPredicate:
    attribute = predicate.attribute
    variable = background.variable(attribute)
    matching: List[Descriptor] = []
    for label in variable.labels:
        function = variable.membership(label)
        if _predicate_overlaps(predicate, function):
            matching.append(Descriptor(attribute, label))
    if not matching:
        raise QueryError(
            f"predicate {predicate} selects no descriptor of attribute "
            f"{attribute!r}; the query is unsatisfiable under the background "
            "knowledge"
        )
    return DescriptorPredicate(attribute, matching)


def _predicate_overlaps(predicate: Predicate, function) -> bool:
    """Does the crisp predicate's solution set intersect the fuzzy set's support?"""
    if isinstance(function, CrispSetMembership):
        return any(predicate.matches({predicate.attribute: value})
                   for value in function.values)
    if isinstance(function, (TrapezoidalMembership, TriangularMembership)):
        low, high = function.support
        if high <= low:
            return predicate.matches({predicate.attribute: low})
        step = (high - low) / (_SUPPORT_SAMPLES - 1)
        for index in range(_SUPPORT_SAMPLES):
            value = low + index * step
            if function.grade(value) > 0.0 and predicate.matches(
                {predicate.attribute: value}
            ):
                return True
        return False
    raise QueryError(
        f"cannot reformulate predicates against membership function {function!r}"
    )


def reformulation_widens_scope(
    original: SelectionQuery, flexible: SelectionQuery
) -> bool:
    """Sanity check: a flexible query never has *more* predicates than the original.

    (The inclusion ``QS ⊆ QS*`` of Section 5.1 is checked record-wise by the
    test-suite; this helper only verifies the structural part.)
    """
    if original.relation != flexible.relation:
        return False
    if len(original.predicates) != len(flexible.predicates):
        return False
    return list(original.constrained_attributes) == list(
        flexible.constrained_attributes
    )
