"""The indexed query engine: fast, byte-identical summary selection.

The pure selection algorithm (:func:`repro.querying.selection.select_summaries`)
valuates every visited node against the proposition by scanning the node's
intent label sets — O(intent size) per node per query.  Under heavy query
traffic (the fig4/5/7 sweeps pose the same query classes hundreds of times
against an unchanged hierarchy) that per-visit work dominates.

:class:`HierarchyQueryIndex` inverts the hierarchy once per *version* (the
builder's mutation counter, the same key the ``signature``/``depth`` caches
use): a descriptor → summary-node postings map plus per-node intent label
counts.  A proposition is then answered from candidate node-id sets —

* ``satisfying(clause)`` — nodes carrying at least one admitted label
  (valuation ≥ ``PARTIAL``),
* ``fully(clause)`` — nodes whose *every* label on the clause's attribute is
  admitted (valuation ``FULL``),

intersected across clauses — and the exploration replays the exact pruned
tree walk of the pure algorithm with O(1) membership tests instead of
per-node valuations.  The result is **node-for-node identical** to
``select_summaries``: same ``Z_Q`` summaries in the same order, same partial
cells, same ``visited_nodes`` figure (NONE-valued children of PARTIAL nodes
are still *visited*, they are just recognised in O(1)).

Per-clause candidate sets are memoized inside the index (query classes share
clauses), and :meth:`repro.saintetiq.hierarchy.SummaryHierarchy.select`
additionally memoizes whole :class:`QuerySelection` results per canonical
proposition, so a repeated query against an unchanged hierarchy costs one
dictionary lookup.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.querying.proposition import Clause, Proposition
from repro.querying.selection import QuerySelection
from repro.querying.valuation import cell_satisfies
from repro.saintetiq.summary import Summary

#: Canonical form of a proposition: clauses keyed (and ordered) by attribute.
#: Selection is clause-order independent, so propositions that differ only in
#: clause order share one cache entry.
PropositionKey = Tuple[Tuple[str, FrozenSet[str]], ...]


def proposition_key(proposition: Proposition) -> PropositionKey:
    """A hashable, clause-order-independent key for a proposition."""
    return tuple(
        sorted(
            ((clause.attribute, clause.labels) for clause in proposition.clauses),
            key=lambda item: item[0],
        )
    )


class HierarchyQueryIndex:
    """Descriptor → summary-node inverted index over one hierarchy version.

    Built from the current tree in one traversal; valid only as long as the
    hierarchy does not mutate (the owner re-builds it when the builder's
    mutation counter moves — see ``SummaryHierarchy.query_index``).
    """

    def __init__(self, root: Summary) -> None:
        self._root = root
        #: (attribute, label) -> ids of nodes whose intent carries the label.
        self._postings: Dict[Tuple[str, str], Set[int]] = {}
        #: node id -> attribute -> number of labels the intent carries.
        self._label_counts: Dict[int, Dict[str, int]] = {}
        #: Per-clause candidate sets, memoized across propositions.
        self._clause_cache: Dict[
            Tuple[str, FrozenSet[str]], Tuple[Set[int], Set[int]]
        ] = {}
        postings = self._postings
        for node in root.iter_subtree():
            node_id = node.node_id
            counts: Dict[str, int] = {}
            for attribute, labels in node.intent.items():
                counts[attribute] = len(labels)
                for label in labels:
                    bucket = postings.get((attribute, label))
                    if bucket is None:
                        postings[(attribute, label)] = {node_id}
                    else:
                        bucket.add(node_id)
            self._label_counts[node_id] = counts

    # -- candidate sets ---------------------------------------------------------------

    def node_count(self) -> int:
        return len(self._label_counts)

    def clause_candidates(self, clause: Clause) -> Tuple[Set[int], Set[int]]:
        """``(satisfying, fully)`` node-id sets for one clause.

        ``satisfying`` holds the nodes valuating ``PARTIAL`` or ``FULL`` on
        the clause (≥ 1 admitted label); ``fully`` the subset valuating
        ``FULL`` (every intent label on the attribute admitted).  Treat both
        as read-only: they are memoized and shared between queries.
        """
        key = (clause.attribute, clause.labels)
        cached = self._clause_cache.get(key)
        if cached is not None:
            return cached
        admitted: Dict[int, int] = {}
        for label in clause.labels:
            for node_id in self._postings.get((clause.attribute, label), ()):
                admitted[node_id] = admitted.get(node_id, 0) + 1
        satisfying = set(admitted)
        label_counts = self._label_counts
        fully = {
            node_id
            for node_id, count in admitted.items()
            if count == label_counts[node_id][clause.attribute]
        }
        result = (satisfying, fully)
        self._clause_cache[key] = result
        return result

    def candidates(self, proposition: Proposition) -> Tuple[Set[int], Set[int]]:
        """``(satisfying, fully)`` node-id sets for a whole proposition.

        A node is *satisfying* when every clause admits at least one of its
        labels (valuation ≥ ``PARTIAL``), *fully* satisfying when every
        clause admits all of them (valuation ``FULL``).
        """
        satisfying: Optional[Set[int]] = None
        fully: Optional[Set[int]] = None
        for clause in proposition.clauses:
            clause_satisfying, clause_fully = self.clause_candidates(clause)
            if satisfying is None:
                satisfying = set(clause_satisfying)
                fully = set(clause_fully)
            else:
                satisfying &= clause_satisfying
                fully &= clause_fully  # type: ignore[operator]
        assert satisfying is not None and fully is not None
        return satisfying, fully

    # -- selection --------------------------------------------------------------------

    def select(self, proposition: Proposition) -> QuerySelection:
        """Run the selection algorithm through the index.

        Node-for-node identical to
        :func:`repro.querying.selection.select_summaries` on the same tree:
        same exploration order, same ``Z_Q``, same partial cells, same
        ``visited_nodes``.
        """
        selection = QuerySelection()
        root = self._root
        if proposition.is_empty():
            selection.summaries.append(root)
            selection.visited_nodes = 1
            return selection
        satisfying, fully = self.candidates(proposition)
        self._explore(root, proposition, satisfying, fully, selection)
        return selection

    def _explore(
        self,
        node: Summary,
        proposition: Proposition,
        satisfying: Set[int],
        fully: Set[int],
        selection: QuerySelection,
    ) -> None:
        # The pure walk counts every node it valuates, including the
        # NONE-valued children of PARTIAL parents — so does this one; only
        # the per-node cost changes (set membership instead of a valuation).
        selection.visited_nodes += 1
        node_id = node.node_id
        if node_id not in satisfying:
            return
        if node_id in fully:
            selection.summaries.append(node)
            return
        if node.is_leaf:
            for cell in node.cells.values():
                if cell_satisfies(cell, proposition):
                    selection.partial_cells.append(cell)
            return
        for child in node.children:
            self._explore(child, proposition, satisfying, fully, selection)
