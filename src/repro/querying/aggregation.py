"""Approximate answering: aggregating selected summaries into answer classes.

A distinctive feature of the approach (Section 5.2.2) is that a query can be
processed *entirely in the summary domain*: the selected summaries ``Z_Q`` are
grouped into classes by their interpretation of the proposition (the labels
they carry on the constrained attributes), and within each class the output is
the union of descriptors on the projection attributes.  The paper's example:
female anorexia patients with an underweight or normal BMI are ``young``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set, Tuple

from repro.querying.proposition import Proposition
from repro.querying.selection import QuerySelection
from repro.querying.valuation import cell_satisfies
from repro.saintetiq.cell import Cell


#: An interpretation: for each constrained attribute, the label(s) through
#: which the class satisfies the proposition.
Interpretation = Tuple[Tuple[str, FrozenSet[str]], ...]


@dataclass(frozen=True)
class AnswerClass:
    """One interpretation class of the approximate answer."""

    interpretation: Interpretation
    output: Mapping[str, FrozenSet[str]]
    tuple_count: float

    def interpretation_dict(self) -> Dict[str, FrozenSet[str]]:
        return dict(self.interpretation)

    def output_labels(self, attribute: str) -> FrozenSet[str]:
        return self.output.get(attribute, frozenset())


@dataclass
class ApproximateAnswer:
    """The full approximate answer: one :class:`AnswerClass` per interpretation."""

    classes: List[AnswerClass] = field(default_factory=list)
    select: Tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.classes

    def merged_output(self) -> Dict[str, FrozenSet[str]]:
        """Union of outputs over all classes (a coarse single-row answer)."""
        merged: Dict[str, Set[str]] = {}
        for answer_class in self.classes:
            for attribute, labels in answer_class.output.items():
                merged.setdefault(attribute, set()).update(labels)
        return {attribute: frozenset(labels) for attribute, labels in merged.items()}

    def total_tuple_count(self) -> float:
        return sum(answer_class.tuple_count for answer_class in self.classes)


def approximate_answer(
    selection: QuerySelection,
    proposition: Proposition,
    select: Sequence[str],
) -> ApproximateAnswer:
    """Aggregate a query selection into an approximate answer.

    Parameters
    ----------
    selection:
        Output of the selection algorithm.
    proposition:
        The query's conjunctive proposition (defines the interpretation axes).
    select:
        Projection attributes of the query (the paper's ``age`` in its example).
    """
    # A read-only pass: iterate the live cells instead of deep-copying every
    # matching cell up front (the selection may be a shared cached instance).
    cells = [
        cell
        for cell in selection.iter_matching_cells()
        if cell_satisfies(cell, proposition)
    ]
    grouped: Dict[Interpretation, List[Cell]] = {}
    for cell in cells:
        interpretation = _interpretation_of(cell, proposition)
        grouped.setdefault(interpretation, []).append(cell)

    def _sort_key(item: Tuple[Interpretation, List[Cell]]) -> Tuple:
        interpretation, _cells = item
        return tuple((attribute, tuple(sorted(labels))) for attribute, labels in interpretation)

    classes: List[AnswerClass] = []
    for interpretation, class_cells in sorted(grouped.items(), key=_sort_key):
        output: Dict[str, Set[str]] = {attribute: set() for attribute in select}
        count = 0.0
        for cell in class_cells:
            count += cell.tuple_count
            for attribute in select:
                label = cell.label_of(attribute)
                if label is not None:
                    output[attribute].add(label)
        classes.append(
            AnswerClass(
                interpretation=interpretation,
                output={
                    attribute: frozenset(labels) for attribute, labels in output.items()
                },
                tuple_count=count,
            )
        )
    return ApproximateAnswer(classes=classes, select=tuple(select))


def _interpretation_of(cell: Cell, proposition: Proposition) -> Interpretation:
    """The labels through which ``cell`` satisfies each clause."""
    parts: List[Tuple[str, FrozenSet[str]]] = []
    for clause in proposition.clauses:
        label = cell.label_of(clause.attribute)
        labels = frozenset([label]) if label is not None else frozenset()
        parts.append((clause.attribute, labels))
    return tuple(parts)
