"""Conjunctive propositions derived from flexible queries.

A flexible query's selection condition is transformed into a logical
proposition in conjunctive form where descriptors appear as literals: each
constrained attribute yields one :class:`Clause` (a disjunction of that
attribute's descriptors), and the proposition is the conjunction of clauses —
e.g. ``(female) AND (underweight OR normal) AND (anorexia)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Mapping, Tuple

from repro.database.query import DescriptorPredicate, SelectionQuery
from repro.exceptions import QueryError
from repro.fuzzy.linguistic import Descriptor


@dataclass(frozen=True)
class Clause:
    """A disjunction of descriptors over a single attribute."""

    attribute: str
    labels: FrozenSet[str]

    def __init__(self, attribute: str, labels: Iterable[str]) -> None:
        labels = frozenset(labels)
        if not labels:
            raise QueryError(f"empty clause for attribute {attribute!r}")
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "labels", labels)

    @property
    def descriptors(self) -> FrozenSet[Descriptor]:
        return frozenset(Descriptor(self.attribute, label) for label in self.labels)

    def admits(self, label: str) -> bool:
        return label in self.labels

    def __str__(self) -> str:
        rendered = " OR ".join(sorted(self.labels))
        return f"({rendered})"


@dataclass(frozen=True)
class Proposition:
    """A conjunction of clauses, one per constrained attribute."""

    clauses: Tuple[Clause, ...]

    def __init__(self, clauses: Iterable[Clause]) -> None:
        clauses = tuple(clauses)
        attributes = [clause.attribute for clause in clauses]
        if len(set(attributes)) != len(attributes):
            raise QueryError(
                f"a proposition has at most one clause per attribute, got {attributes}"
            )
        object.__setattr__(self, "clauses", clauses)

    @property
    def attributes(self) -> List[str]:
        return [clause.attribute for clause in self.clauses]

    def clause_for(self, attribute: str) -> Clause:
        for clause in self.clauses:
            if clause.attribute == attribute:
                return clause
        raise QueryError(f"no clause constrains attribute {attribute!r}")

    def is_empty(self) -> bool:
        return not self.clauses

    def admits_labels(self, labels_by_attribute: Mapping[str, Iterable[str]]) -> bool:
        """Whether a crisp label assignment satisfies every clause."""
        for clause in self.clauses:
            labels = set(labels_by_attribute.get(clause.attribute, ()))
            if not labels or not (labels & clause.labels):
                return False
        return True

    def __str__(self) -> str:
        if not self.clauses:
            return "TRUE"
        return " AND ".join(str(clause) for clause in self.clauses)

    @classmethod
    def from_query(cls, query: SelectionQuery) -> "Proposition":
        """Build the proposition of a flexible (already reformulated) query."""
        clauses: List[Clause] = []
        for predicate in query.predicates:
            if not isinstance(predicate, DescriptorPredicate):
                raise QueryError(
                    "propositions are built from flexible queries; predicate "
                    f"{predicate} is not a descriptor predicate — reformulate "
                    "the query first"
                )
            clauses.append(Clause(predicate.attribute, predicate.labels))
        return cls(clauses)
