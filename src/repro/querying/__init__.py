"""Summary querying: evaluating flexible queries against summary hierarchies.

This package implements Section 5 of the paper (and the FQAS 2004 work it
references):

* *query reformulation* — rewriting crisp selection predicates into
  Background-Knowledge descriptors (:mod:`repro.querying.reformulation`),
* the *conjunctive proposition* form of a flexible query
  (:mod:`repro.querying.proposition`),
* the *valuation function* qualifying the link between a summary and the
  query (:mod:`repro.querying.valuation`),
* the *selection algorithm* returning the most abstract summaries that
  satisfy the query (:mod:`repro.querying.selection`),
* the *indexed query engine* answering repeated selections from an inverted
  descriptor index, byte-identically to the pure walk
  (:mod:`repro.querying.engine`),
* *approximate answering* by aggregating the selected summaries into
  interpretation classes (:mod:`repro.querying.aggregation`).
"""

from repro.querying.aggregation import ApproximateAnswer, approximate_answer
from repro.querying.engine import HierarchyQueryIndex, proposition_key
from repro.querying.proposition import Clause, Proposition
from repro.querying.reformulation import reformulate
from repro.querying.selection import QuerySelection, select_summaries
from repro.querying.valuation import Valuation, valuate

__all__ = [
    "reformulate",
    "Clause",
    "Proposition",
    "Valuation",
    "valuate",
    "QuerySelection",
    "select_summaries",
    "HierarchyQueryIndex",
    "proposition_key",
    "ApproximateAnswer",
    "approximate_answer",
]
