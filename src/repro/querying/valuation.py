"""The valuation function: qualifying the link between a summary and a query.

Each clause of the proposition is checked against the summary's intent on the
corresponding attribute.  Three outcomes are possible per clause:

* ``FULL`` — every label the summary carries for the attribute belongs to the
  clause: all the records the summary describes satisfy the clause,
* ``PARTIAL`` — only some labels belong to the clause: some records may satisfy
  it, some may not,
* ``NONE`` — no label belongs to the clause (or the summary carries no label
  for the attribute): no described record can satisfy it.

The summary-level valuation is the weakest clause outcome (NONE < PARTIAL <
FULL), so a summary valued ``NONE`` can prune its whole subtree.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Mapping

from repro.querying.proposition import Proposition
from repro.saintetiq.cell import Cell
from repro.saintetiq.summary import Summary


class Valuation(enum.IntEnum):
    """Outcome of valuating a proposition in the context of a summary."""

    NONE = 0
    PARTIAL = 1
    FULL = 2


@dataclass(frozen=True)
class SummaryValuation:
    """Per-clause and overall valuation of a summary against a proposition."""

    overall: Valuation
    per_attribute: Mapping[str, Valuation]

    @property
    def satisfies(self) -> bool:
        """At least one described record may satisfy the query."""
        return self.overall is not Valuation.NONE

    @property
    def certainly_satisfies(self) -> bool:
        """Every described record satisfies the query."""
        return self.overall is Valuation.FULL


def valuate(summary: Summary, proposition: Proposition) -> SummaryValuation:
    """Valuate ``proposition`` in the context of ``summary``.

    Reads the summary's cached intent — label sets are not re-derived from
    the covered cells per visit.
    """
    per_attribute: Dict[str, Valuation] = {}
    overall = Valuation.FULL
    intent = summary.intent
    for clause in proposition.clauses:
        labels = intent.get(clause.attribute, frozenset())
        # One pass over the labels, stopping as soon as both an admitted and a
        # non-admitted label have been seen: the outcome is then PARTIAL no
        # matter what the remaining labels say.
        admitted = rejected = False
        for label in labels:
            if clause.admits(label):
                admitted = True
            else:
                rejected = True
            if admitted and rejected:
                break
        if not admitted:
            outcome = Valuation.NONE
        elif not rejected:
            outcome = Valuation.FULL
        else:
            outcome = Valuation.PARTIAL
        per_attribute[clause.attribute] = outcome
        overall = min(overall, outcome)
    return SummaryValuation(overall=overall, per_attribute=per_attribute)


def cell_satisfies(cell: Cell, proposition: Proposition) -> bool:
    """Whether a single grid cell satisfies every clause of the proposition.

    A cell carries exactly one label per attribute, so the valuation collapses
    to a crisp membership test.
    """
    for clause in proposition.clauses:
        label = cell.label_of(clause.attribute)
        if label is None or not clause.admits(label):
            return False
    return True
