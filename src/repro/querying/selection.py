"""The selection algorithm: fast exploration of the hierarchy.

Given a proposition, the selection algorithm returns the set ``Z_Q`` of the
most abstract summaries that satisfy the query (Section 5.2).  The traversal
prunes subtrees valued ``NONE``, stops descending at nodes valued ``FULL``
(they are returned as-is: every record they describe matches), and keeps
descending through ``PARTIAL`` nodes; ``PARTIAL`` leaves contribute only their
matching cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterator, List, Optional, Set

from repro.querying.proposition import Proposition
from repro.querying.valuation import Valuation, cell_satisfies, valuate
from repro.saintetiq.cell import Cell
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.summary import Summary


@dataclass
class QuerySelection:
    """Result of running the selection algorithm over a hierarchy.

    Attributes
    ----------
    summaries:
        ``Z_Q`` — most abstract summaries entirely satisfying the proposition.
    partial_cells:
        Matching cells harvested from ``PARTIAL`` leaves (records described by
        those cells satisfy the query; their leaf siblings do not).
    visited_nodes:
        Number of summary nodes examined — the "fast exploration" figure.
    """

    summaries: List[Summary] = field(default_factory=list)
    partial_cells: List[Cell] = field(default_factory=list)
    visited_nodes: int = 0
    # P_Q, computed once per selection: cached selections (see
    # ``SummaryHierarchy.select``) serve many routing calls, each asking for
    # the same peer-extent union.
    _peer_extent: Optional[FrozenSet[str]] = field(
        default=None, repr=False, compare=False
    )

    @property
    def is_empty(self) -> bool:
        return not self.summaries and not self.partial_cells

    def matching_cells(self) -> List[Cell]:
        """All matching cells: those of Z_Q summaries plus the partial ones.

        Every cell is returned as a private copy, safe to mutate.  Read-only
        consumers should prefer :meth:`iter_matching_cells`.
        """
        return [cell.copy() for cell in self.iter_matching_cells()]

    def iter_matching_cells(self) -> Iterator[Cell]:
        """Iterate the matching cells *without* copying them.

        Yields the live cells of the Z_Q summaries followed by the partial
        ones, in the same order as :meth:`matching_cells` — treat them as
        read-only.
        """
        for summary in self.summaries:
            yield from summary.cells.values()
        yield from self.partial_cells

    def matching_tuple_count(self) -> float:
        """Estimated number of records satisfying the query.

        Sums the cached per-summary tuple masses directly — no cell copies.
        """
        return sum(summary.tuple_count for summary in self.summaries) + sum(
            cell.tuple_count for cell in self.partial_cells
        )

    def peer_extent(self) -> Set[str]:
        """Relevant peers ``P_Q`` — the union of peer-extents of Z_Q (and

        of the matching partial cells).  Returns a private mutable copy;
        read-only consumers should prefer :meth:`peer_extent_view`."""
        return set(self.peer_extent_view())

    def peer_extent_view(self) -> FrozenSet[str]:
        """``P_Q`` as the cached frozenset — no per-call copy.

        Computed once per selection; cached selections (see
        ``SummaryHierarchy.select``) serve many routing calls against it.
        """
        if self._peer_extent is None:
            peers: Set[str] = set()
            for summary in self.summaries:
                peers |= summary.peer_extent
            for cell in self.partial_cells:
                peers |= cell.peers
            self._peer_extent = frozenset(peers)
        return self._peer_extent


def select_summaries(
    hierarchy: SummaryHierarchy, proposition: Proposition
) -> QuerySelection:
    """Run the selection algorithm over ``hierarchy`` for ``proposition``."""
    selection = QuerySelection()
    if hierarchy.is_empty():
        return selection
    if proposition.is_empty():
        # An unconstrained query matches everything: the root is the single
        # most abstract satisfying summary.
        selection.summaries.append(hierarchy.root)
        selection.visited_nodes = 1
        return selection
    _explore(hierarchy.root, proposition, selection)
    return selection


def _explore(node: Summary, proposition: Proposition, selection: QuerySelection) -> None:
    selection.visited_nodes += 1
    valuation = valuate(node, proposition)
    if valuation.overall is Valuation.NONE:
        return
    if valuation.overall is Valuation.FULL:
        selection.summaries.append(node)
        return
    # PARTIAL: descend, or harvest matching cells at leaves.
    if node.is_leaf:
        for cell in node.cells.values():
            if cell_satisfies(cell, proposition):
                selection.partial_cells.append(cell)
        return
    for child in node.children:
        _explore(child, proposition, selection)
