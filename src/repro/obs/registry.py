"""A deterministic metrics registry: counters, gauges, histograms.

The registry is the numeric half of :mod:`repro.obs`.  Like
:class:`~repro.network.metrics.MessageCounter` it is deterministic and
seed-independent — recording never consumes randomness, never reads the wall
clock, and iteration order is sorted — so two runs of the same seeded scenario
produce byte-identical snapshots.  Unlike ``MessageCounter`` it is generic:
any instrumented layer (protocol, store, serve daemon) records into one shared
:class:`MetricsRegistry` under its own metric names and label sets.

Three instrument kinds, mirroring the Prometheus data model:

* **counters** — monotonically increasing totals (``inc``),
* **gauges** — last-write-wins values (``set_gauge``),
* **histograms** — observations bucketed into *fixed* boundaries declared up
  front (``declare_histogram`` + ``observe``), so merged snapshots from
  different processes always line up bucket-for-bucket.

Snapshots (:meth:`MetricsRegistry.snapshot`) are JSON-compatible and
re-importable (:meth:`MetricsRegistry.merge_snapshot`), and the whole registry
renders to the Prometheus text exposition format (:meth:`render_prometheus`)
for the serve daemon's ``/metrics`` endpoint.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError

#: Default histogram boundaries (seconds): spans request latencies from
#: sub-millisecond in-process calls to multi-second cold starts.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default boundaries for small discrete counts (messages per domain, domains
#: per query, retries per push...).
DEFAULT_COUNT_BUCKETS: Tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Mapping[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: LabelKey, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    escaped = []
    for name, value in pairs:
        value = value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        escaped.append(f'{name}="{value}"')
    return "{" + ",".join(escaped) + "}"


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


@dataclass
class HistogramSnapshot:
    """One histogram series: fixed bucket boundaries plus count/sum."""

    buckets: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)
    total_count: int = 0
    total_sum: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.total_count += 1
        self.total_sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[int]:
        """Cumulative per-bucket counts, Prometheus ``le`` semantics."""
        running = 0
        out = []
        for count in self.counts[:-1]:
            running += count
            out.append(running)
        return out

    def merge(self, other: "HistogramSnapshot") -> None:
        if other.buckets != self.buckets:
            raise ConfigurationError(
                "cannot merge histograms with different bucket boundaries"
            )
        self.total_count += other.total_count
        self.total_sum += other.total_sum
        for index, count in enumerate(other.counts):
            self.counts[index] += count


class MetricsRegistry:
    """Thread-safe counters/gauges/histograms with deterministic snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelKey, float]] = {}
        self._gauges: Dict[str, Dict[LabelKey, float]] = {}
        self._histograms: Dict[str, Dict[LabelKey, HistogramSnapshot]] = {}
        self._histogram_buckets: Dict[str, Tuple[float, ...]] = {}
        self._help: Dict[str, str] = {}

    # -- declaration -------------------------------------------------------------------

    def declare_histogram(
        self, name: str, buckets: Iterable[float], help: str = ""  # noqa: A002
    ) -> None:
        """Fix ``name``'s bucket boundaries (must be sorted, non-empty)."""
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} needs sorted, non-empty bucket boundaries"
            )
        with self._lock:
            existing = self._histogram_buckets.get(name)
            if existing is not None and existing != bounds:
                raise ConfigurationError(
                    f"histogram {name!r} already declared with different buckets"
                )
            self._histogram_buckets[name] = bounds
            self._histograms.setdefault(name, {})
            if help:
                self._help[name] = help

    def describe(self, name: str, help: str) -> None:  # noqa: A002
        with self._lock:
            self._help[name] = help

    # -- recording ---------------------------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = _label_key(labels)
        with self._lock:
            buckets = self._histogram_buckets.get(name)
            if buckets is None:
                buckets = DEFAULT_TIME_BUCKETS
                self._histogram_buckets[name] = buckets
            series = self._histograms.setdefault(name, {})
            histogram = series.get(key)
            if histogram is None:
                histogram = series[key] = HistogramSnapshot(buckets=buckets)
            histogram.observe(float(value))

    def observe_many(self, name: str, values: Iterable[float], **labels: Any) -> None:
        """Record a batch of observations under one lock acquisition.

        Hot instrumentation sites (per-domain routing stats recorded once per
        query) use this so a 100-domain query pays one registry round-trip,
        not one hundred.
        """
        key = _label_key(labels)
        with self._lock:
            buckets = self._histogram_buckets.get(name)
            if buckets is None:
                buckets = DEFAULT_TIME_BUCKETS
                self._histogram_buckets[name] = buckets
            series = self._histograms.setdefault(name, {})
            histogram = series.get(key)
            if histogram is None:
                histogram = series[key] = HistogramSnapshot(buckets=buckets)
            observe = histogram.observe
            for value in values:
                observe(float(value))

    # -- reading -----------------------------------------------------------------------

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter (0 if never incremented)."""
        key = _label_key(labels)
        with self._lock:
            value = self._counters.get(name, {}).get(key, 0)
        return value

    def gauge_value(self, name: str, **labels: Any) -> Optional[float]:
        key = _label_key(labels)
        with self._lock:
            return self._gauges.get(name, {}).get(key)

    def histogram(self, name: str, **labels: Any) -> Optional[HistogramSnapshot]:
        key = _label_key(labels)
        with self._lock:
            found = self._histograms.get(name, {}).get(key)
            if found is None:
                return None
            return HistogramSnapshot(
                buckets=found.buckets,
                counts=list(found.counts),
                total_count=found.total_count,
                total_sum=found.total_sum,
            )

    def counter_series(self, name: str) -> Dict[LabelKey, float]:
        with self._lock:
            return dict(self._counters.get(name, {}))

    def series_names(self) -> List[str]:
        """Sorted names of every metric with at least one recorded series."""
        with self._lock:
            names = set()
            for table in (self._counters, self._gauges, self._histograms):
                for name, series in table.items():
                    if series:
                        names.add(name)
            return sorted(names)

    # -- snapshot / merge --------------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-compatible, deterministic dump of every series."""
        with self._lock:
            return {
                "counters": {
                    name: [[list(map(list, key)), value] for key, value in sorted(series.items())]
                    for name, series in sorted(self._counters.items())
                    if series
                },
                "gauges": {
                    name: [[list(map(list, key)), value] for key, value in sorted(series.items())]
                    for name, series in sorted(self._gauges.items())
                    if series
                },
                "histograms": {
                    name: [
                        [
                            list(map(list, key)),
                            {
                                "buckets": list(h.buckets),
                                "counts": list(h.counts),
                                "count": h.total_count,
                                "sum": h.total_sum,
                            },
                        ]
                        for key, h in sorted(series.items())
                    ]
                    for name, series in sorted(self._histograms.items())
                    if series
                },
            }

    def merge_snapshot(self, payload: Mapping[str, Any]) -> None:
        """Fold a :meth:`snapshot` payload into this registry."""
        for name, series in payload.get("counters", {}).items():
            for key, value in series:
                self.inc(name, value, **dict((k, v) for k, v in key))
        for name, series in payload.get("gauges", {}).items():
            for key, value in series:
                self.set_gauge(name, value, **dict((k, v) for k, v in key))
        for name, series in payload.get("histograms", {}).items():
            for key, data in series:
                buckets = tuple(float(b) for b in data["buckets"])
                self.declare_histogram(name, buckets)
                incoming = HistogramSnapshot(
                    buckets=buckets,
                    counts=[int(c) for c in data["counts"]],
                    total_count=int(data["count"]),
                    total_sum=float(data["sum"]),
                )
                label_key = tuple((k, v) for k, v in map(tuple, key))
                with self._lock:
                    table = self._histograms.setdefault(name, {})
                    existing = table.get(label_key)
                    if existing is None:
                        table[label_key] = incoming
                    else:
                        existing.merge(incoming)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- prometheus exposition ---------------------------------------------------------

    def render_prometheus(self) -> str:
        """The text exposition format (one ``# TYPE`` block per metric)."""
        lines: List[str] = []
        with self._lock:
            counters = {n: dict(s) for n, s in self._counters.items() if s}
            gauges = {n: dict(s) for n, s in self._gauges.items() if s}
            histograms = {n: dict(s) for n, s in self._histograms.items() if s}
            helps = dict(self._help)
        for name in sorted(counters):
            if name in helps:
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} counter")
            for key, value in sorted(counters[name].items()):
                lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        for name in sorted(gauges):
            if name in helps:
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} gauge")
            for key, value in sorted(gauges[name].items()):
                lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        for name in sorted(histograms):
            if name in helps:
                lines.append(f"# HELP {name} {helps[name]}")
            lines.append(f"# TYPE {name} histogram")
            for key, histogram in sorted(histograms[name].items()):
                cumulative = histogram.cumulative()
                for bound, count in zip(histogram.buckets, cumulative):
                    extra = ("le", _format_value(bound))
                    lines.append(f"{name}_bucket{_render_labels(key, extra)} {count}")
                lines.append(
                    f'{name}_bucket{_render_labels(key, ("le", "+Inf"))} '
                    f"{histogram.total_count}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(key)} {_format_value(histogram.total_sum)}"
                )
                lines.append(f"{name}_count{_render_labels(key)} {histogram.total_count}")
        return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse a text exposition back into ``{metric: {labelled-series: value}}``.

    A deliberately small parser — enough for the CI smoke job and tests to
    assert that ``/metrics`` output is well-formed and count distinct series.
    Raises :class:`~repro.exceptions.ConfigurationError` on malformed lines.
    """
    out: Dict[str, Dict[str, float]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            series, raw_value = line.rsplit(" ", 1)
            value = float(raw_value)
        except ValueError as exc:
            raise ConfigurationError(
                f"malformed exposition line {lineno}: {line!r}"
            ) from exc
        name = series.split("{", 1)[0]
        if not name or not all(c.isalnum() or c in "_:" for c in name):
            raise ConfigurationError(f"malformed metric name on line {lineno}: {line!r}")
        if "{" in series and not series.endswith("}"):
            raise ConfigurationError(f"unbalanced labels on line {lineno}: {line!r}")
        out.setdefault(name, {})[series] = value
    return out
