"""``repro.obs`` — metrics registry, structured tracing, live profiling.

The observability substrate every layer reports through.  One
:class:`Observability` object bundles a :class:`MetricsRegistry` (counters,
gauges, fixed-bucket histograms) with a :class:`Tracer` (span trees on the
simulator *and* wall clocks, emitted to a pluggable :class:`TraceSink`).

Instrumented components — the protocol engine, query router, fault injector,
message bus, snapshot store, lazy hierarchy source, and the serve daemon —
each hold an ``Observability`` hook that is ``None`` by default.  With the
hook unset every instrumentation site is a single pointer test, so the
uninstrumented path is byte-identical (answers, message counters, RNG state)
to a build without observability at all; the identity suite in
``tests/obs/test_identity.py`` pins that.

Enable it per session::

    session = (
        SystemBuilder()
        .topology(peer_count=60, seed=7)
        .observability()           # or .observability(trace_path="run.jsonl")
        .build()
    )
    session.run_until(1800.0)
    print(session.observability.metrics.render_prometheus())

or on a live daemon via ``repro serve`` (enabled there by default) and read it
back with ``curl /metrics`` (Prometheus text format), ``curl /trace`` (span
tail), or the ``repro metrics`` / ``repro trace`` CLI commands.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.obs.registry import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    HistogramSnapshot,
    MetricsRegistry,
    parse_prometheus,
)
from repro.obs.trace import (
    JsonlSink,
    NullSink,
    RingBufferSink,
    Span,
    TraceSink,
    Tracer,
    connected_trace,
    span_tree,
)

__all__ = [
    "DEFAULT_COUNT_BUCKETS",
    "DEFAULT_TIME_BUCKETS",
    "HistogramSnapshot",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "Observability",
    "RingBufferSink",
    "Span",
    "TraceSink",
    "Tracer",
    "connected_trace",
    "parse_prometheus",
    "span_tree",
]

#: Histograms whose boundaries are fixed up front so snapshots from different
#: runs and processes merge bucket-for-bucket.  Time histograms are seconds.
_COUNT_HISTOGRAMS = (
    ("repro_query_domains_visited", "domains visited per query"),
    ("repro_routing_messages_per_domain", "query messages spent in one domain"),
    ("repro_push_retries_per_delta", "retransmissions per delta push"),
)
_TIME_HISTOGRAMS = (
    ("repro_serve_request_seconds", "wall-clock time serving one HTTP request"),
    ("repro_session_lock_wait_seconds", "wall-clock wait to acquire the session lock"),
    ("repro_session_lock_hold_seconds", "wall-clock time holding the session lock"),
)


class Observability:
    """One registry + one tracer, shared by every instrumented layer."""

    def __init__(
        self,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        trace_sink: Optional[TraceSink] = None,
        detail: bool = False,
    ) -> None:
        if tracer is not None and trace_sink is not None:
            raise ValueError("pass either tracer or trace_sink, not both")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer(sink=trace_sink)
        #: Fine-grained spans (per-domain routing, hierarchy selection) are
        #: gated on this: coarse spans and every metric are always recorded,
        #: but the inner routing loop runs thousands of times per simulated
        #: query batch, and per-iteration spans there would swamp the
        #: memoized query path.  The serve daemon and artifact recording
        #: enable detail — their traffic is request-scale, not batch-scale.
        self.detail = detail

    # -- construction helpers ----------------------------------------------------------

    @classmethod
    def with_ring(cls, capacity: int = 2048, detail: bool = False) -> "Observability":
        """Metrics plus an in-memory span ring (the serve daemon's default)."""
        return cls(trace_sink=RingBufferSink(capacity), detail=detail)

    @classmethod
    def with_jsonl(cls, path: str, detail: bool = True) -> "Observability":
        """Metrics plus a JSONL trace file at ``path`` (full detail: the
        artifact is for offline analysis, not a guarded hot path)."""
        return cls(trace_sink=JsonlSink(path), detail=detail)

    # -- convenience passthroughs ------------------------------------------------------

    def inc(self, name: str, amount: float = 1, **labels: Any) -> None:
        self.metrics.inc(name, amount, **labels)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.observe(name, value, **labels)

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self.metrics.set_gauge(name, value, **labels)

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None, **kwargs: Any):
        return self.tracer.span(name, attrs=attrs, **kwargs)

    def bind_sim_clock(self, sim_clock: Callable[[], float]) -> None:
        """Point the tracer at a simulator clock (installed by the system)."""
        self.tracer.sim_clock = sim_clock

    @property
    def ring(self) -> Optional[RingBufferSink]:
        """The tracer's ring sink, when it has one (``/trace`` reads this)."""
        sink = self.tracer.sink
        return sink if isinstance(sink, RingBufferSink) else None

    def close(self) -> None:
        self.tracer.sink.close()
