"""Structured, span-style tracing for protocol and serve hot paths.

A :class:`Span` is one timed operation: it carries a ``trace_id`` shared by
every span of one logical request, a ``span_id``, its ``parent_id`` (``None``
for a root), a name, free-form attributes, and start/end times on *two*
clocks — the deterministic simulator clock (``start_sim``/``end_sim``) and the
wall clock (``start_wall``/``end_wall``).  Only the wall-clock fields vary
between identically-seeded runs; :meth:`Span.deterministic_payload` strips
them, which is what the trace-determinism property suite compares.

Span and trace ids are **derived from counters, never from randomness or the
clock**: a tracer mints ``<origin>-t<N>`` / ``<origin>-s<N>`` ids in arrival
order, so a single-threaded scenario run produces the same span tree every
time and tracing never perturbs the protocol's seeded RNG streams.

Parenting is implicit per thread: :meth:`Tracer.span` pushes onto a
thread-local stack, so a query span opened by the serve worker automatically
becomes the parent of the routing spans the protocol opens underneath it.
Cross-process traces (``ServeClient`` → daemon) link explicitly: the client
sends its ``trace_id``/``span_id`` in HTTP headers and the server adopts them
as the root's ``trace_id``/``parent_id``.

Finished spans are emitted to a :class:`TraceSink`:

* :class:`NullSink` — drop everything (tracing structurally on, output off),
* :class:`RingBufferSink` — keep the last N spans in memory (the daemon's
  ``/trace`` tail endpoint reads this),
* :class:`JsonlSink` — append one JSON object per span to a file.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

from contextlib import contextmanager

#: Attribute keys a span payload is ordered by; attrs stay a plain dict.
_WALL_FIELDS = ("start_wall", "end_wall")


@dataclass
class Span:
    """One timed operation in a trace tree."""

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    attrs: Dict[str, Any] = field(default_factory=dict)
    start_sim: Optional[float] = None
    end_sim: Optional[float] = None
    start_wall: float = 0.0
    end_wall: float = 0.0

    @property
    def duration_wall(self) -> float:
        return self.end_wall - self.start_wall

    def to_payload(self) -> Dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": dict(self.attrs),
            "start_sim": self.start_sim,
            "end_sim": self.end_sim,
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
        }

    def deterministic_payload(self) -> Dict[str, Any]:
        """The payload minus wall-clock fields — identical across same-seed runs."""
        payload = self.to_payload()
        for fieldname in _WALL_FIELDS:
            payload.pop(fieldname)
        return payload

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "Span":
        return cls(
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            name=payload["name"],
            attrs=dict(payload.get("attrs", {})),
            start_sim=payload.get("start_sim"),
            end_sim=payload.get("end_sim"),
            start_wall=payload.get("start_wall", 0.0),
            end_wall=payload.get("end_wall", 0.0),
        )


class TraceSink:
    """Destination for finished spans.  Subclasses override :meth:`emit`."""

    def emit(self, span: Span) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - default is a no-op
        pass


class NullSink(TraceSink):
    """Discard every span."""

    def emit(self, span: Span) -> None:
        pass


class RingBufferSink(TraceSink):
    """Keep the most recent ``capacity`` spans in memory (thread-safe)."""

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._emitted = 0

    def emit(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)
            self._emitted += 1

    @property
    def emitted(self) -> int:
        """Total spans ever emitted (including ones the ring has dropped)."""
        return self._emitted

    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def tail(self, limit: Optional[int] = None) -> List[Span]:
        spans = self.spans()
        if limit is None or limit >= len(spans):
            return spans
        return spans[-limit:]

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class JsonlSink(TraceSink):
    """Append one JSON object per finished span to ``path``."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def emit(self, span: Span) -> None:
        line = json.dumps(span.to_payload(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.flush()
                self._handle.close()

    @staticmethod
    def read(path: str) -> List[Span]:
        """Load spans back from a JSONL trace file."""
        spans = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    spans.append(Span.from_payload(json.loads(line)))
        return spans


class Tracer:
    """Mints spans with deterministic ids and a per-thread parent stack."""

    def __init__(
        self,
        sink: Optional[TraceSink] = None,
        sim_clock: Optional[Callable[[], float]] = None,
        origin: str = "main",
    ) -> None:
        self.sink = sink if sink is not None else RingBufferSink()
        self.sim_clock = sim_clock
        self.origin = origin
        self._lock = threading.Lock()
        self._next_trace = 0
        self._next_span = 0
        self._local = threading.local()

    # -- id minting --------------------------------------------------------------------

    def _mint_trace_id(self) -> str:
        with self._lock:
            self._next_trace += 1
            return f"{self.origin}-t{self._next_trace:06d}"

    def _mint_span_id(self) -> str:
        with self._lock:
            self._next_span += 1
            return f"{self.origin}-s{self._next_span:06d}"

    # -- stack -------------------------------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- span lifecycle ----------------------------------------------------------------

    def start(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> Span:
        """Open a span; it parents under the thread's current span by default.

        Pass ``trace_id``/``parent_id`` to adopt remote context (a client's
        ids arriving in HTTP headers) — they win over the implicit stack.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        if trace_id is None:
            trace_id = parent.trace_id if parent is not None else self._mint_trace_id()
        if parent_id is None and parent is not None:
            parent_id = parent.span_id
        span = Span(
            trace_id=trace_id,
            span_id=self._mint_span_id(),
            parent_id=parent_id,
            name=name,
            attrs=dict(attrs or {}),
            start_sim=None if self.sim_clock is None else self.sim_clock(),
            start_wall=time.time(),
        )
        stack.append(span)
        return span

    def finish(self, span: Span, **attrs: Any) -> Span:
        """Close ``span``, pop it off the stack, and emit it to the sink."""
        if attrs:
            span.attrs.update(attrs)
        span.end_sim = None if self.sim_clock is None else self.sim_clock()
        span.end_wall = time.time()
        stack = self._stack()
        # Identity, not equality: dataclass __eq__ would compare attr dicts,
        # and a span must only ever pop itself (and anything left above it).
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is span:
                del stack[index:]
                break
        self.sink.emit(span)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> Iterator[Span]:
        opened = self.start(name, attrs=attrs, trace_id=trace_id, parent_id=parent_id)
        try:
            yield opened
        finally:
            self.finish(opened)


def span_tree(spans: List[Span]) -> Dict[Optional[str], List[Span]]:
    """Index spans by ``parent_id`` — a cheap adjacency map for assertions."""
    tree: Dict[Optional[str], List[Span]] = {}
    for span in spans:
        tree.setdefault(span.parent_id, []).append(span)
    return tree


def connected_trace(spans: List[Span], trace_id: str) -> bool:
    """True when every span of ``trace_id`` reaches a root via parent links."""
    members = [s for s in spans if s.trace_id == trace_id]
    if not members:
        return False
    by_id = {s.span_id: s for s in members}
    for span in members:
        seen = set()
        node: Optional[Span] = span
        while node is not None and node.parent_id is not None:
            if node.span_id in seen:
                return False
            seen.add(node.span_id)
            node = by_id.get(node.parent_id)
        # A dangling parent_id is allowed only for the adopted remote root:
        # its parent lives in another process's sink.
        if node is None:
            continue
    return True
