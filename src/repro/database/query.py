"""Selection queries: crisp predicates and descriptor (flexible) predicates.

The paper processes simple selection queries of the form::

    select age from Patient
    where sex = 'female' and bmi < 19 and disease = 'anorexia'

A query is *reformulated* by replacing crisp predicates over summarized
attributes by sets of Background-Knowledge descriptors (e.g. ``bmi < 19``
becomes ``bmi in {underweight, normal}``), yielding a *flexible query* that
can be evaluated both against raw records and against summaries.
"""

from __future__ import annotations

import abc
import operator
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.exceptions import QueryError
from repro.fuzzy.linguistic import Descriptor

_COMPARATORS: Dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class Predicate(abc.ABC):
    """A boolean condition over a single record."""

    @abc.abstractmethod
    def matches(self, record: Mapping[str, object]) -> bool:
        """Whether ``record`` satisfies the predicate."""

    @property
    @abc.abstractmethod
    def attribute(self) -> str:
        """The attribute this predicate constrains."""


@dataclass(frozen=True)
class Comparison(Predicate):
    """A crisp comparison ``attribute <op> value``."""

    attr: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise QueryError(
                f"unsupported comparison operator {self.op!r} "
                f"(supported: {sorted(_COMPARATORS)})"
            )

    @property
    def attribute(self) -> str:
        return self.attr

    def matches(self, record: Mapping[str, object]) -> bool:
        if self.attr not in record:
            return False
        actual = record[self.attr]
        if actual is None:
            return False
        try:
            return _COMPARATORS[self.op](actual, self.value)
        except TypeError:
            return False

    def __str__(self) -> str:
        return f"{self.attr} {self.op} {self.value!r}"


@dataclass(frozen=True)
class AttributeIn(Predicate):
    """A crisp set-membership predicate ``attribute in {v1, v2, ...}``."""

    attr: str
    values: FrozenSet[object]

    def __init__(self, attr: str, values: Iterable[object]) -> None:
        object.__setattr__(self, "attr", attr)
        object.__setattr__(self, "values", frozenset(values))
        if not self.values:
            raise QueryError(f"empty IN-list for attribute {attr!r}")

    @property
    def attribute(self) -> str:
        return self.attr

    def matches(self, record: Mapping[str, object]) -> bool:
        return self.attr in record and record[self.attr] in self.values

    def __str__(self) -> str:
        rendered = ", ".join(sorted(map(repr, self.values)))
        return f"{self.attr} in {{{rendered}}}"


@dataclass(frozen=True)
class DescriptorPredicate(Predicate):
    """A flexible predicate: the attribute must match one of the descriptors.

    Against raw records the predicate holds when at least one descriptor gives
    the record's value a membership grade above ``alpha_cut``.  Against
    summaries it becomes one clause of the conjunctive proposition (Section
    5.2 of the paper).
    """

    attr: str
    descriptors: Tuple[Descriptor, ...]
    alpha_cut: float = 0.0

    def __init__(
        self,
        attr: str,
        descriptors: Iterable[Descriptor],
        alpha_cut: float = 0.0,
    ) -> None:
        descriptors = tuple(descriptors)
        if not descriptors:
            raise QueryError(f"empty descriptor set for attribute {attr!r}")
        mismatched = [d for d in descriptors if d.attribute != attr]
        if mismatched:
            raise QueryError(
                f"descriptors {mismatched} do not belong to attribute {attr!r}"
            )
        object.__setattr__(self, "attr", attr)
        object.__setattr__(self, "descriptors", descriptors)
        object.__setattr__(self, "alpha_cut", alpha_cut)

    @property
    def attribute(self) -> str:
        return self.attr

    @property
    def labels(self) -> List[str]:
        return [descriptor.label for descriptor in self.descriptors]

    def matches(self, record: Mapping[str, object]) -> bool:
        # Raw-record evaluation needs the BK; the engine injects it by calling
        # :meth:`matches_with_background`.  Without a BK, fall back to a crisp
        # label comparison which works for categorical attributes whose labels
        # equal their raw values.
        if self.attr not in record:
            return False
        return record[self.attr] in set(self.labels)

    def matches_with_background(
        self, record: Mapping[str, object], background: "BackgroundKnowledgeLike"
    ) -> bool:
        if self.attr not in record:
            return False
        value = record[self.attr]
        for descriptor in self.descriptors:
            if background.grade(descriptor, value) > self.alpha_cut:
                return True
        return False

    def __str__(self) -> str:
        labels = ", ".join(self.labels)
        return f"{self.attr} in {{{labels}}}"


class BackgroundKnowledgeLike(abc.ABC):
    """Protocol-like ABC: anything exposing ``grade(descriptor, value)``."""

    @abc.abstractmethod
    def grade(self, descriptor: Descriptor, value: object) -> float:
        ...


@dataclass(frozen=True)
class SelectionQuery:
    """A conjunctive selection query with a projection list.

    ``predicates`` are implicitly AND-ed; the projection ``select`` lists the
    attributes returned (empty means ``select *``).
    """

    relation: str
    predicates: Tuple[Predicate, ...] = field(default_factory=tuple)
    select: Tuple[str, ...] = field(default_factory=tuple)

    def __init__(
        self,
        relation: str,
        predicates: Sequence[Predicate] = (),
        select: Sequence[str] = (),
    ) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "predicates", tuple(predicates))
        object.__setattr__(self, "select", tuple(select))

    @property
    def constrained_attributes(self) -> List[str]:
        return [predicate.attribute for predicate in self.predicates]

    def is_flexible(self) -> bool:
        """True when every predicate is already a descriptor predicate."""
        return all(
            isinstance(predicate, DescriptorPredicate)
            for predicate in self.predicates
        )

    def descriptor_predicates(self) -> List[DescriptorPredicate]:
        return [
            predicate
            for predicate in self.predicates
            if isinstance(predicate, DescriptorPredicate)
        ]

    def matches(self, record: Mapping[str, object]) -> bool:
        return all(predicate.matches(record) for predicate in self.predicates)

    def __str__(self) -> str:
        projection = ", ".join(self.select) if self.select else "*"
        conditions = " and ".join(str(p) for p in self.predicates) or "true"
        return f"select {projection} from {self.relation} where {conditions}"
