"""Relations (tables) and records."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional

from repro.database.schema import Schema
from repro.exceptions import SchemaError


class Record(Mapping[str, object]):
    """An immutable, schema-validated tuple of a relation."""

    __slots__ = ("_values",)

    def __init__(self, schema: Schema, values: Mapping[str, object]) -> None:
        self._values: Dict[str, object] = schema.validate_record(values)

    def __getitem__(self, key: str) -> object:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def as_dict(self) -> Dict[str, object]:
        return dict(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Record({self._values})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Record):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, repr(v)) for k, v in self._values.items())))


class Relation:
    """A named, in-memory relation: a schema plus a list of records.

    The relation keeps a monotonically increasing *version* counter so that
    observers (e.g. the local summary service) can detect modifications — the
    push phase of summary maintenance is triggered by local-summary drift,
    which itself starts from database modifications.
    """

    def __init__(
        self,
        name: str,
        schema: Schema,
        records: Optional[Iterable[Mapping[str, object]]] = None,
    ) -> None:
        self._name = name
        self._schema = schema
        self._records: List[Record] = []
        self._version = 0
        for values in records or []:
            self.insert(values)

    @property
    def name(self) -> str:
        return self._name

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def version(self) -> int:
        """Number of mutations applied to this relation since creation."""
        return self._version

    @property
    def records(self) -> List[Record]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    # -- mutations -----------------------------------------------------------

    def insert(self, values: Mapping[str, object]) -> Record:
        record = values if isinstance(values, Record) else Record(self._schema, values)
        if isinstance(values, Record):
            # Re-validate against *this* relation's schema.
            record = Record(self._schema, values.as_dict())
        self._records.append(record)
        self._version += 1
        return record

    def insert_many(self, rows: Iterable[Mapping[str, object]]) -> int:
        count = 0
        for values in rows:
            self.insert(values)
            count += 1
        return count

    def delete(self, predicate: Callable[[Record], bool]) -> int:
        """Delete records matching ``predicate``; returns the number removed."""
        kept = [record for record in self._records if not predicate(record)]
        removed = len(self._records) - len(kept)
        if removed:
            self._records = kept
            self._version += 1
        return removed

    def update(
        self,
        predicate: Callable[[Record], bool],
        changes: Mapping[str, object],
    ) -> int:
        """Update matching records in place; returns the number updated."""
        unknown = set(changes) - set(self._schema.attribute_names)
        if unknown:
            raise SchemaError(
                f"update references unknown attributes: {sorted(unknown)}"
            )
        updated = 0
        new_records: List[Record] = []
        for record in self._records:
            if predicate(record):
                values = record.as_dict()
                values.update(changes)
                new_records.append(Record(self._schema, values))
                updated += 1
            else:
                new_records.append(record)
        if updated:
            self._records = new_records
            self._version += 1
        return updated

    # -- queries -------------------------------------------------------------

    def select(self, predicate: Callable[[Record], bool]) -> List[Record]:
        return [record for record in self._records if predicate(record)]

    def project(self, attributes: List[str]) -> List[Dict[str, object]]:
        for attribute in attributes:
            if attribute not in self._schema:
                raise SchemaError(
                    f"projection on unknown attribute {attribute!r}"
                )
        return [
            {attribute: record[attribute] for attribute in attributes}
            for record in self._records
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Relation({self._name!r}, {len(self._records)} records)"
