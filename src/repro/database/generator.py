"""Synthetic relational data generation.

The experiments need per-peer databases whose content can be controlled so
that a target fraction of peers matches each query (the paper uses 10 %).
The :class:`PatientGenerator` produces Patient relations matching the paper's
running example (Table 1); its parameters control the distributions of age,
BMI, sex and disease so that workloads can dial peer selectivity precisely.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.database.engine import LocalDatabase
from repro.database.schema import patient_schema
from repro.database.table import Relation
from repro.fuzzy.background import BackgroundKnowledge
from repro.fuzzy.vocabularies import DEFAULT_DISEASES, medical_background_knowledge


@dataclass
class PatientProfile:
    """Sampling profile for one peer's patient population.

    The age and BMI values are drawn from uniform ranges so that a profile can
    be positioned inside (or outside) the support of specific BK descriptors,
    which lets workload code construct peers that do or do not match a query.
    """

    age_range: Sequence[float] = (1.0, 95.0)
    bmi_range: Sequence[float] = (14.0, 40.0)
    sexes: Sequence[str] = ("female", "male")
    diseases: Sequence[str] = tuple(DEFAULT_DISEASES)
    weights: Optional[Mapping[str, float]] = None

    def sample(self, rng: random.Random, identifier: str) -> Dict[str, object]:
        age_low, age_high = self.age_range
        bmi_low, bmi_high = self.bmi_range
        diseases = list(self.diseases)
        if self.weights:
            weights = [self.weights.get(d, 1.0) for d in diseases]
        else:
            weights = [1.0] * len(diseases)
        return {
            "id": identifier,
            "age": round(rng.uniform(age_low, age_high), 1),
            "sex": rng.choice(list(self.sexes)),
            "bmi": round(rng.uniform(bmi_low, bmi_high), 1),
            "disease": rng.choices(diseases, weights=weights, k=1)[0],
        }


class PatientGenerator:
    """Generates Patient relations and whole peer databases."""

    def __init__(
        self,
        seed: int = 0,
        background: Optional[BackgroundKnowledge] = None,
    ) -> None:
        self._rng = random.Random(seed)
        self._background = background or medical_background_knowledge()
        self._counter = 0

    @property
    def background(self) -> BackgroundKnowledge:
        return self._background

    def _next_id(self, prefix: str = "t") -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def records(
        self,
        count: int,
        profile: Optional[PatientProfile] = None,
        id_prefix: str = "t",
    ) -> List[Dict[str, object]]:
        """Generate ``count`` patient records following ``profile``."""
        profile = profile or PatientProfile()
        return [
            profile.sample(self._rng, self._next_id(id_prefix))
            for _ in range(count)
        ]

    def relation(
        self,
        count: int,
        name: str = "patient",
        profile: Optional[PatientProfile] = None,
    ) -> Relation:
        relation = Relation(name, patient_schema())
        relation.insert_many(self.records(count, profile=profile))
        return relation

    def database(
        self,
        count: int,
        relation_name: str = "patient",
        profile: Optional[PatientProfile] = None,
    ) -> LocalDatabase:
        """A single-relation peer database with ``count`` patients."""
        database = LocalDatabase(background=self._background)
        database.create_relation(
            relation_name,
            patient_schema(),
            self.records(count, profile=profile),
        )
        return database

    def paper_example_relation(self) -> Relation:
        """The exact 3-tuple Patient relation of the paper's Table 1."""
        relation = Relation("patient", patient_schema())
        relation.insert_many(
            [
                {"id": "t1", "age": 15, "sex": "female", "bmi": 17, "disease": "anorexia"},
                {"id": "t2", "age": 20, "sex": "male", "bmi": 20, "disease": "malaria"},
                {"id": "t3", "age": 18, "sex": "female", "bmi": 16.5, "disease": "anorexia"},
            ]
        )
        return relation


@dataclass
class MatchingPlanEntry:
    """Whether one peer should match the workload query, and how."""

    peer_index: int
    matches: bool


def plan_matching_peers(
    peer_count: int,
    matching_fraction: float,
    rng: random.Random,
) -> List[MatchingPlanEntry]:
    """Choose which peers should hold data matching a workload query.

    The paper fixes the query hit rate at 10 % of the total number of peers;
    this helper picks exactly ``round(matching_fraction * peer_count)`` peers
    uniformly at random (at least one when the fraction is positive).
    """
    if not 0.0 <= matching_fraction <= 1.0:
        raise ValueError("matching_fraction must lie in [0, 1]")
    target = round(matching_fraction * peer_count)
    if matching_fraction > 0.0:
        target = max(1, target)
    target = min(target, peer_count)
    chosen = set(rng.sample(range(peer_count), target)) if target else set()
    return [
        MatchingPlanEntry(peer_index=index, matches=index in chosen)
        for index in range(peer_count)
    ]
