"""In-memory relational substrate: the "peer DBMS" of the paper.

Each peer of the P2P system owns a small relational database.  This package
provides the minimal but complete machinery the reproduction needs:

* schemas and typed relations (:mod:`repro.database.schema`,
  :mod:`repro.database.table`),
* a selection-query AST with crisp and descriptor predicates
  (:mod:`repro.database.query`),
* a local evaluation engine (:mod:`repro.database.engine`),
* synthetic data generation for the experiments
  (:mod:`repro.database.generator`).
"""

from repro.database.engine import LocalDatabase
from repro.database.generator import PatientGenerator
from repro.database.query import (
    AttributeIn,
    Comparison,
    DescriptorPredicate,
    Predicate,
    SelectionQuery,
)
from repro.database.schema import Attribute, AttributeType, Schema
from repro.database.table import Record, Relation

__all__ = [
    "Attribute",
    "AttributeType",
    "Schema",
    "Record",
    "Relation",
    "Predicate",
    "Comparison",
    "AttributeIn",
    "DescriptorPredicate",
    "SelectionQuery",
    "LocalDatabase",
    "PatientGenerator",
]
