"""Relation schemas: attribute names, types and validation."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.exceptions import SchemaError


class AttributeType(enum.Enum):
    """Supported attribute types for the in-memory relational engine."""

    INTEGER = "integer"
    FLOAT = "float"
    TEXT = "text"
    BOOLEAN = "boolean"

    def validates(self, value: object) -> bool:
        """Whether ``value`` conforms to this type (``None`` is always valid)."""
        if value is None:
            return True
        if self is AttributeType.INTEGER:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttributeType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self is AttributeType.TEXT:
            return isinstance(value, str)
        return isinstance(value, bool)

    def coerce(self, value: object) -> object:
        """Best-effort coercion of ``value`` into this type.

        Raises :class:`SchemaError` when the value cannot be represented.
        """
        if value is None:
            return None
        try:
            if self is AttributeType.INTEGER:
                return int(value)  # type: ignore[arg-type]
            if self is AttributeType.FLOAT:
                return float(value)  # type: ignore[arg-type]
            if self is AttributeType.TEXT:
                return str(value)
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in {"true", "1", "yes"}:
                    return True
                if lowered in {"false", "0", "no"}:
                    return False
                raise ValueError(value)
            return bool(value)
        except (TypeError, ValueError) as exc:
            raise SchemaError(
                f"cannot coerce {value!r} into attribute type {self.value}"
            ) from exc


@dataclass(frozen=True)
class Attribute:
    """A named, typed column of a relation."""

    name: str
    type: AttributeType
    nullable: bool = True

    def validate(self, value: object) -> None:
        if value is None and not self.nullable:
            raise SchemaError(f"attribute {self.name!r} is not nullable")
        if not self.type.validates(value):
            raise SchemaError(
                f"value {value!r} does not match type {self.type.value} of "
                f"attribute {self.name!r}"
            )


class Schema:
    """An ordered collection of attributes describing a relation."""

    def __init__(self, attributes: Sequence[Attribute]) -> None:
        if not attributes:
            raise SchemaError("a schema needs at least one attribute")
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._attributes: Dict[str, Attribute] = {
            attribute.name: attribute for attribute in attributes
        }

    @property
    def attribute_names(self) -> List[str]:
        return list(self._attributes)

    @property
    def attributes(self) -> List[Attribute]:
        return list(self._attributes.values())

    def attribute(self, name: str) -> Attribute:
        try:
            return self._attributes[name]
        except KeyError as exc:
            raise SchemaError(
                f"unknown attribute {name!r} (schema has {self.attribute_names})"
            ) from exc

    def __contains__(self, name: object) -> bool:
        return name in self._attributes

    def __len__(self) -> int:
        return len(self._attributes)

    def validate_record(self, values: Mapping[str, object]) -> Dict[str, object]:
        """Validate and normalise a record against this schema.

        Unknown attributes raise; missing nullable attributes default to None.
        Returns a plain dict keyed in schema order.
        """
        unknown = set(values) - set(self._attributes)
        if unknown:
            raise SchemaError(
                f"record carries attributes not in the schema: {sorted(unknown)}"
            )
        normalised: Dict[str, object] = {}
        for name, attribute in self._attributes.items():
            value = values.get(name)
            attribute.validate(value)
            normalised[name] = value
        return normalised

    def project(self, names: Sequence[str]) -> "Schema":
        """A new schema restricted to ``names`` (order follows ``names``)."""
        return Schema([self.attribute(name) for name in names])

    @classmethod
    def from_types(
        cls, types: Mapping[str, AttributeType], non_nullable: Optional[Sequence[str]] = None
    ) -> "Schema":
        """Convenience constructor from a name→type mapping."""
        required = set(non_nullable or [])
        return cls(
            [
                Attribute(name, attribute_type, nullable=name not in required)
                for name, attribute_type in types.items()
            ]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Schema({self.attribute_names})"


def patient_schema() -> Schema:
    """The Patient relation schema of the paper's Table 1."""
    return Schema(
        [
            Attribute("id", AttributeType.TEXT, nullable=False),
            Attribute("age", AttributeType.FLOAT),
            Attribute("sex", AttributeType.TEXT),
            Attribute("bmi", AttributeType.FLOAT),
            Attribute("disease", AttributeType.TEXT),
        ]
    )
