"""Local query evaluation: the per-peer DBMS facade.

A :class:`LocalDatabase` groups the relations a peer shares and evaluates
selection queries locally.  It is the ground truth against which routing
precision/recall (false positives and false negatives) is measured by the
experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.database.query import DescriptorPredicate, SelectionQuery
from repro.database.schema import Schema
from repro.database.table import Record, Relation
from repro.exceptions import QueryError, SchemaError
from repro.fuzzy.background import BackgroundKnowledge


class LocalDatabase:
    """A named collection of relations owned by one peer."""

    def __init__(self, background: Optional[BackgroundKnowledge] = None) -> None:
        self._relations: Dict[str, Relation] = {}
        self._background = background

    @property
    def background(self) -> Optional[BackgroundKnowledge]:
        return self._background

    @property
    def relation_names(self) -> List[str]:
        return list(self._relations)

    # -- DDL -----------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        schema: Schema,
        records: Optional[Iterable[Mapping[str, object]]] = None,
    ) -> Relation:
        if name in self._relations:
            raise SchemaError(f"relation {name!r} already exists")
        relation = Relation(name, schema, records)
        self._relations[name] = relation
        return relation

    def drop_relation(self, name: str) -> None:
        if name not in self._relations:
            raise SchemaError(f"relation {name!r} does not exist")
        del self._relations[name]

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise SchemaError(f"relation {name!r} does not exist") from exc

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    # -- state ---------------------------------------------------------------

    def version(self) -> int:
        """Sum of relation versions: a cheap global modification counter."""
        return sum(relation.version for relation in self._relations.values())

    def total_records(self) -> int:
        return sum(len(relation) for relation in self._relations.values())

    # -- DML / query ---------------------------------------------------------

    def insert(self, relation_name: str, values: Mapping[str, object]) -> Record:
        return self.relation(relation_name).insert(values)

    def insert_many(
        self, relation_name: str, rows: Iterable[Mapping[str, object]]
    ) -> int:
        return self.relation(relation_name).insert_many(rows)

    def execute(self, query: SelectionQuery) -> List[Dict[str, object]]:
        """Evaluate a selection query against the local data.

        Descriptor predicates are evaluated through the background knowledge
        when one is attached (proper fuzzy matching); otherwise they fall back
        to crisp label comparison.
        """
        relation = self.relation(query.relation)
        matching: List[Record] = []
        for record in relation:
            if self._record_matches(record, query):
                matching.append(record)
        if not query.select:
            return [record.as_dict() for record in matching]
        for attribute in query.select:
            if attribute not in relation.schema:
                raise QueryError(
                    f"projection attribute {attribute!r} not in relation "
                    f"{query.relation!r}"
                )
        return [
            {attribute: record[attribute] for attribute in query.select}
            for record in matching
        ]

    def count_matches(self, query: SelectionQuery) -> int:
        relation = self.relation(query.relation)
        return sum(
            1 for record in relation if self._record_matches(record, query)
        )

    def has_match(self, query: SelectionQuery) -> bool:
        """True when at least one local record satisfies the query.

        This is the peer-level ground truth for the query-scope set QS used by
        the false-positive / false-negative definitions in Section 5.2.1.
        """
        relation_name = query.relation
        if relation_name not in self._relations:
            return False
        relation = self._relations[relation_name]
        return any(self._record_matches(record, query) for record in relation)

    def _record_matches(self, record: Record, query: SelectionQuery) -> bool:
        for predicate in query.predicates:
            if isinstance(predicate, DescriptorPredicate) and self._background:
                if not predicate.matches_with_background(record, self._background):
                    return False
            elif not predicate.matches(record):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"LocalDatabase(relations={self.relation_names})"
