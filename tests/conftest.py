"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import ProtocolConfig
from repro.database.generator import PatientGenerator
from repro.fuzzy.vocabularies import medical_background_knowledge
from repro.network.overlay import Overlay
from repro.network.topology import TopologyConfig
from repro.saintetiq.hierarchy import SummaryHierarchy
from repro.saintetiq.mapping import MappingService


@pytest.fixture
def background():
    """The full medical background knowledge (age, bmi, sex, disease)."""
    return medical_background_knowledge()


@pytest.fixture
def numeric_background():
    """The age/bmi-only background knowledge of the paper's running example."""
    return medical_background_knowledge(include_categorical=False)


@pytest.fixture
def paper_relation():
    """The exact three-tuple Patient relation of Table 1."""
    return PatientGenerator(seed=0).paper_example_relation()


@pytest.fixture
def paper_records(paper_relation):
    return [record.as_dict() for record in paper_relation]


@pytest.fixture
def mapping_service(numeric_background):
    return MappingService(numeric_background, attributes=["age", "bmi"])


@pytest.fixture
def paper_cells(mapping_service, paper_records):
    """The grid cells of Table 2."""
    return mapping_service.map_records(paper_records, peer="peer-a")


@pytest.fixture
def example_hierarchy(numeric_background, paper_records):
    hierarchy = SummaryHierarchy(
        numeric_background, attributes=["age", "bmi"], owner="peer-a"
    )
    hierarchy.add_records(paper_records)
    return hierarchy


@pytest.fixture
def small_overlay():
    """A reproducible 32-peer power-law overlay."""
    return Overlay.generate(TopologyConfig(peer_count=32, seed=7))


@pytest.fixture
def medium_overlay():
    """A reproducible 120-peer power-law overlay."""
    return Overlay.generate(TopologyConfig(peer_count=120, seed=11))


@pytest.fixture
def protocol_config():
    return ProtocolConfig()


@pytest.fixture
def rng():
    return random.Random(1234)
